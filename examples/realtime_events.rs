//! The real-time events case study (§3.3, §6.4) at small scale: 140 weak
//! supervision sources over non-servable features train a DNN over
//! servable real-time features; compared against the Logical-OR baseline,
//! with Figure 6's score histograms.
//!
//! ```bash
//! cargo run --release --example realtime_events
//! ```

use drybell::ml::metrics::render_histogram;
use drybell_bench::harness::run_events;
use drybell_datagen::events::EventTaskConfig;

fn main() {
    let cfg = EventTaskConfig {
        num_unlabeled: 20_000,
        num_test: 10_000,
        ..EventTaskConfig::paper()
    };
    println!(
        "running events app: {} unlabeled events, {} weak supervision sources...",
        cfg.num_unlabeled, cfg.num_lfs
    );
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let report = run_events(&cfg, workers, 2500);

    println!(
        "\nevents of interest found in a fixed review budget:\n  \
         Snorkel DryBell: {}    Logical-OR: {}    ({:+.0}%)",
        report.drybell_tp_at_k,
        report.or_tp_at_k,
        report.more_events_frac() * 100.0
    );
    println!(
        "quality (precision@budget): DryBell {:.3} vs OR {:.3} ({:+.1}%)",
        report.drybell_quality,
        report.or_quality,
        report.quality_improvement() * 100.0
    );
    println!("\nLogical-OR score distribution (piles up at the extremes):");
    print!("{}", render_histogram(&report.or_hist, 36));
    println!("\nSnorkel DryBell score distribution (smooth, usable):");
    print!("{}", render_histogram(&report.drybell_hist, 36));
}
