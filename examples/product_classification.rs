//! The product-classification case study (§3.2) end to end at small
//! scale, highlighting the multilingual Knowledge-Graph labeling
//! functions and the depreciated legacy classifier.
//!
//! ```bash
//! cargo run --release --example product_classification
//! ```

use drybell::core::vote::Label;
use drybell_bench::harness::ContentTask;

fn main() {
    let scale = 0.01; // ~65K unlabeled docs; try 1.0 for the paper's 6.5M
    println!("building product task at scale {scale}...");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let task = ContentTask::product(scale, None, workers);

    // Show what the KG translations buy: a few non-English positives.
    println!("\nsample non-English positive documents:");
    let mut shown = 0;
    for (doc, gold) in task.unlabeled.iter().zip(&task.unlabeled_gold) {
        if *gold == Label::Positive && doc.lang != "en" && shown < 3 {
            let preview: String = doc
                .text
                .split_whitespace()
                .take(10)
                .collect::<Vec<_>>()
                .join(" ");
            println!("  [{}] {preview} ...", doc.lang);
            shown += 1;
        }
    }

    let report = task.run_full();
    let (gen_rel, db_rel) = report.table2_rows();
    println!("\nrelative to the dev-set-trained baseline (P / R / F1):");
    println!("  generative model only : {}", gen_rel.row());
    println!("  Snorkel DryBell       : {}", db_rel.row());
    println!(
        "\nDryBell matched the expanded product category with zero new hand labels\n\
         ({:+.1}% F1 over the {}-example dev baseline).",
        db_rel.lift() * 100.0,
        task.dev.len()
    );
}
