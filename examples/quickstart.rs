//! Quickstart: the whole Snorkel DryBell pipeline in one file.
//!
//! 1. Define labeling functions over your own example type, wrapping
//!    whatever organizational resources you have (here: a keyword rule,
//!    the NLP model server's NER output, and a tiny knowledge graph).
//! 2. Execute them over unlabeled data to get the label matrix `Λ`.
//! 3. Fit the sampling-free generative model — no ground truth involved.
//! 4. Use the posteriors as probabilistic labels to train a servable
//!    logistic regression with the noise-aware loss.
//! 5. Stage the model behind the servability-checking registry.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use drybell::core::{GenerativeModel, LfReport, TrainConfig, Vote};
use drybell::features::{FeatureHasher, FeatureSpace, SpaceRegistry};
use drybell::kg::{EdgeKind, KnowledgeGraph, NodeKind};
use drybell::lf::executor::{execute_in_memory, TextExtractor};
use drybell::lf::{Lf, LfCategory, LfSet};
use drybell::ml::{FtrlConfig, LogisticRegression};
use drybell::serving::{ExportedModel, ModelSpec, ScoreInput, ServingRegistry};
use std::sync::Arc;

/// Your data type — anything `Sync` works.
struct Post {
    text: String,
}

fn main() {
    // -- Some unlabeled posts. A real deployment streams millions from
    // -- shard files; for a readable demo we repeat eight archetypes so
    // -- the label model has enough rows to estimate accuracies from.
    let archetypes = [
        "Alice Johnson spotted with a new camera at the premiere",
        "the quarterly market report shows stock gains",
        "Maria Garcia reveals her favorite lens and tripod",
        "parliament passed the budget legislation today",
        "great deals on tripod and flash bundles this week",
        "the team won the championship game last night",
        "Dr Chen presented new vaccine results at the clinic",
        "Robert Smith stuns fans with surprise concert film",
    ];
    let corpus: Vec<Post> = (0..25)
        .flat_map(|_| archetypes.iter())
        .map(|t| Post {
            text: (*t).to_owned(),
        })
        .collect();

    // -- A miniature organizational knowledge graph. --------------------
    let mut kg = KnowledgeGraph::new();
    let gear = kg.add_entity("camera-gear", NodeKind::Category).unwrap();
    for product in ["camera", "lens", "tripod", "flash"] {
        let id = kg.add_entity(product, NodeKind::Product).unwrap();
        kg.add_edge(id, EdgeKind::InCategory, gear);
    }
    let kg = Arc::new(kg);

    // -- Three labeling functions for "is this post about celebrities?" --
    let lfs: LfSet<Post> = LfSet::new()
        .with_knowledge_graph(kg)
        .with(Lf::plain(
            "kw_gossip",
            LfCategory::ContentHeuristic,
            true,
            |p: &Post| {
                if ["spotted", "stuns", "reveals"]
                    .iter()
                    .any(|w| p.text.contains(w))
                {
                    Vote::Positive
                } else {
                    Vote::Abstain
                }
            },
        ))
        .with(Lf::nlp("nlp_no_person", |_p: &Post, nlp| {
            // §5.1's example: no person entities → not celebrity content.
            if nlp.people().is_empty() {
                Vote::Negative
            } else {
                Vote::Abstain
            }
        }))
        .with(Lf::graph("kg_gear_context", false, |p: &Post, kg| {
            // Bipolar graph heuristic: camera gear next to a proper name
            // is celebrity-with-gear coverage; gear with no names is a
            // product review. (Bipolar LFs anchor the label model — an
            // LF that votes both ways cannot be explained away as
            // always-wrong.)
            let gear_terms = p
                .text
                .split_whitespace()
                .filter(|w| kg.lookup(w).is_some())
                .count();
            let has_name = p
                .text
                .split_whitespace()
                .any(|w| w.chars().next().is_some_and(char::is_uppercase));
            match (gear_terms, has_name) {
                (0, _) => Vote::Abstain,
                (_, true) => Vote::Positive,
                (g, false) if g >= 2 => Vote::Negative,
                _ => Vote::Abstain,
            }
        }));

    // -- Execute LFs with a per-worker NLP model server. -----------------
    let text: TextExtractor<Post> = Arc::new(|p: &Post| p.text.clone());
    let (matrix, stats) = execute_in_memory(&lfs, Some(&text), &corpus, 2).expect("LF execution");
    println!(
        "executed {} LFs over {} posts ({} NLP calls)\n",
        lfs.len(),
        stats.examples,
        stats.nlp_calls
    );

    // -- Fit the sampling-free generative model. -------------------------
    let mut label_model = GenerativeModel::new(lfs.len(), 0.7);
    label_model
        .fit(
            &matrix,
            &TrainConfig {
                steps: 1500,
                batch_size: 32,
                ..TrainConfig::default()
            },
        )
        .expect("label model training");
    let report = LfReport::build(&matrix, &label_model, &lfs.names(), None).expect("report");
    println!("{}", report.to_table());

    // -- Probabilistic training labels. ----------------------------------
    let posteriors = label_model.predict_proba(&matrix);
    for (post, p) in corpus.iter().zip(&posteriors).take(archetypes.len()) {
        println!("  P(celebrity) = {p:.2}  {}", post.text);
    }

    // -- Train a servable model with the noise-aware loss. ---------------
    let hasher = FeatureHasher::new(1 << 14);
    let examples: Vec<_> = corpus
        .iter()
        .zip(&posteriors)
        .map(|(post, &p)| {
            let toks = drybell::nlp::tokenizer::lower_tokens(&post.text);
            (hasher.bag_of_words(&toks), p)
        })
        .collect();
    let mut clf = LogisticRegression::new(
        1 << 14,
        FtrlConfig {
            iterations: 300,
            batch_size: 32,
            ..FtrlConfig::default()
        },
    );
    clf.fit(&examples)
        .expect("quickstart training set is non-empty");

    // -- Stage it for serving (cross-feature transfer: the NLP model and
    // -- knowledge graph never leave the offline world). -----------------
    let mut spaces = SpaceRegistry::new();
    let hashed = spaces
        .register(FeatureSpace::servable("hashed-unigrams", 40))
        .unwrap();
    let registry = ServingRegistry::new(spaces, 10_000);
    registry
        .stage(ModelSpec {
            name: "celebrity-topic".into(),
            version: 1,
            feature_spaces: vec![hashed],
            model: ExportedModel::LogReg(clf),
        })
        .expect("servable");
    registry.promote("celebrity-topic", 1).expect("promote");

    let probe = "Nina Patel spotted filming with a drone crew";
    let toks = drybell::nlp::tokenizer::lower_tokens(probe);
    let score = registry
        .score(
            "celebrity-topic",
            ScoreInput::Sparse(&hasher.bag_of_words(&toks)),
        )
        .expect("score");
    println!("\nserving model v1 scored {probe:?}: {score:.2}");
}
