//! Cross-feature model serving (§4): transfer knowledge from
//! non-servable resources into a servable model, with the serving layer
//! *enforcing* the boundary.
//!
//! The example tries to stage two models for the topic task:
//!
//! * a "cheating" model whose spec declares it reads the NLP model server
//!   and the crawl table directly — rejected by the registry;
//! * the DryBell model, trained on labels *derived from* those resources
//!   but reading only hashed text features — accepted, promoted, served.
//!
//! ```bash
//! cargo run --release --example cross_feature_transfer
//! ```

use drybell::features::{FeatureHasher, FeatureSpace, SpaceRegistry};
use drybell::serving::{ExportedModel, ModelSpec, ScoreInput, ServingRegistry};
use drybell_bench::harness::ContentTask;
use drybell_datagen::topic;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let task = ContentTask::topic(0.01, None, workers);

    // Declare the application's feature spaces with their real costs.
    let mut spaces = SpaceRegistry::new();
    let hashed = spaces
        .register(FeatureSpace::servable("hashed-text", 40))
        .unwrap();
    let nlp = spaces
        .register(FeatureSpace::non_servable(
            "nlp-model-server",
            drybell::nlp::NlpServer::DEFAULT_COST_US,
        ))
        .unwrap();
    let crawl = spaces
        .register(FeatureSpace::private("crawl-reputation", 5))
        .unwrap();
    // Production budget: 10ms per example.
    let registry = ServingRegistry::new(spaces, 10_000);

    println!("training DryBell model (labels derived from NLP + crawl resources)...");
    let report = task.run_full();
    let model = task.train_drybell_lr(&report.posteriors);

    // Attempt 1: a spec that wants the non-servable resources at serving
    // time. The registry refuses — this is §4's constraint made physical.
    let cheating = ModelSpec {
        name: "topic".into(),
        version: 1,
        feature_spaces: vec![hashed, nlp, crawl],
        model: ExportedModel::LogReg(model.clone()),
    };
    match registry.stage(cheating) {
        Err(e) => println!("\nstaging the non-servable spec failed as it must:\n  {e}"),
        Ok(()) => unreachable!("the registry must reject non-servable specs"),
    }

    // Attempt 2: the same trained weights, served over servable features
    // only. The knowledge of the NLP models and crawl table now lives in
    // the weights — that is the cross-feature transfer.
    registry
        .stage(ModelSpec {
            name: "topic".into(),
            version: 2,
            feature_spaces: vec![hashed],
            model: ExportedModel::LogReg(model),
        })
        .expect("servable spec stages fine");
    registry.promote("topic", 2).expect("promote");
    println!("\nstaged + promoted v2 over servable features only");

    // Score a few test docs through the serving path.
    let hasher = FeatureHasher::new(task.hash_dims);
    println!("\nserving-path scores on test documents:");
    for doc in task.test.iter().take(5) {
        let x = topic::featurize(doc, &hasher);
        let p = registry
            .score("topic", ScoreInput::Sparse(&x))
            .expect("score");
        println!("  {p:.3}  {}", doc.title);
    }
    println!(
        "\nserving latency budget: {}us; hashed-text cost: 40us per example",
        registry.budget_us()
    );
}
