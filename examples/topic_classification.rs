//! The topic-classification case study (§3.1) end to end, at a small
//! scale: generate the corpus, run the ten LFs (URL heuristics, NER,
//! topic model, crawl table, related classifier), denoise, train, and
//! compare against the dev-set baseline.
//!
//! ```bash
//! cargo run --release --example topic_classification
//! ```

use drybell::core::LfReport;
use drybell_bench::harness::ContentTask;

fn main() {
    let scale = 0.02; // ~13.7K unlabeled docs; try 1.0 for the paper's 684K
    println!("building topic task at scale {scale}...");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let task = ContentTask::topic(scale, None, workers);

    let report = task.run_full();
    println!(
        "\nLF execution: {} docs in {:.1}s ({} NLP model-server calls)",
        report.lf_stats.examples, report.lf_stats.seconds, report.lf_stats.nlp_calls
    );

    let diag = LfReport::build(
        &report.matrix,
        &report.label_model,
        &task.lf_set.names(),
        None,
    )
    .expect("diagnostics");
    println!("\nLF diagnostics (learned from agreements alone — no labels):");
    print!("{}", diag.to_table());

    let (gen_rel, db_rel) = report.table2_rows();
    println!("\nrelative to the dev-set-trained baseline (P / R / F1):");
    println!("  generative model only : {}", gen_rel.row());
    println!("  Snorkel DryBell       : {}", db_rel.row());
    println!(
        "\nDryBell lift over hand-labeled baseline: {:+.1}% F1",
        db_rel.lift() * 100.0
    );
}
