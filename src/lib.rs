//! # drybell
//!
//! Umbrella crate for the Rust reproduction of **Snorkel DryBell**
//! (Bach et al., SIGMOD 2019): a weak-supervision management system that
//! turns diverse organizational resources into probabilistic training
//! labels and servable classifiers.
//!
//! This crate re-exports every subsystem under one namespace so examples
//! and downstream users need a single dependency:
//!
//! * [`core`] — vote types, label matrix, the sampling-free generative
//!   label model, the Gibbs baseline, and LF diagnostics.
//! * [`dataflow`] — the MapReduce-style execution substrate with sharded
//!   record files (the stand-in for Google's distributed environment).
//! * [`nlp`] — simulated organizational NLP services (NER, topic model,
//!   language ID) runnable as per-worker model servers.
//! * [`kg`] — the synthetic knowledge graph with multilingual aliases.
//! * [`features`] — sparse vectors, hashing featurizers, and the
//!   servable/non-servable feature-space registry.
//! * [`lf`] — the labeling-function template library and distributed
//!   executor.
//! * [`ml`] — discriminative models: logistic regression with
//!   FTRL-Proximal, an MLP, noise-aware losses, and evaluation metrics.
//! * [`serving`] — the TFX-analog model registry with servability
//!   enforcement.
//! * [`datagen`] — synthetic corpora and event streams matching the
//!   paper's three applications.
//! * [`obs`] — the telemetry layer: metrics (counters, gauges, latency
//!   histograms), hierarchical spans, and the structured JSONL run
//!   journal every stage reports into.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the complete pipeline: generate data,
//! run labeling functions, fit the generative model, train a noise-aware
//! discriminative classifier, and stage it for serving.

/// Convenience re-exports for the common pipeline: votes, label matrix,
/// label models, LF templates, executors, featurization, trainers,
/// metrics, and serving.
///
/// ```
/// use drybell::prelude::*;
///
/// let mut matrix = LabelMatrix::new(2);
/// for _ in 0..100 {
///     matrix.push_raw_row(&[1, 1]).unwrap();
///     matrix.push_raw_row(&[-1, -1]).unwrap();
/// }
/// let mut model = GenerativeModel::new(2, 0.7);
/// model
///     .fit(&matrix, &TrainConfig { steps: 200, batch_size: 16, ..TrainConfig::default() })
///     .unwrap();
/// assert!(model.predict_proba(&matrix)[0] > 0.9);
/// ```
pub mod prelude {
    pub use drybell_core::baselines::{equal_weight_labels, logical_or_labels, majority_vote};
    pub use drybell_core::generative::{GenerativeModel, TrainConfig};
    pub use drybell_core::vote::{Label, Vote};
    pub use drybell_core::{
        CcTrainConfig, ClassConditionalModel, DependencyReport, LabelMatrix, LfReport,
    };
    pub use drybell_dataflow::{JobConfig, Pipeline, ShardSpec};
    pub use drybell_features::{FeatureHasher, FeatureSpace, SpaceRegistry, SparseVector};
    pub use drybell_lf::executor::{execute_in_memory, execute_sharded, TextExtractor};
    pub use drybell_lf::{Lf, LfCategory, LfSet};
    pub use drybell_ml::metrics::{BinaryMetrics, RelativeMetrics};
    pub use drybell_ml::{FtrlConfig, LogisticRegression, Mlp, MlpConfig};
    pub use drybell_nlp::{CachedNlpServer, NlpResult, NlpServer};
    pub use drybell_obs::{Event, RunJournal, Telemetry};
    pub use drybell_serving::{ExportedModel, ModelSpec, ScoreInput, ServingRegistry, ShadowEval};
}

pub use drybell_core as core;
pub use drybell_dataflow as dataflow;
pub use drybell_datagen as datagen;
pub use drybell_features as features;
pub use drybell_kg as kg;
pub use drybell_lf as lf;
pub use drybell_ml as ml;
pub use drybell_nlp as nlp;
pub use drybell_obs as obs;
pub use drybell_serving as serving;
