//! Offline stand-in for `serde`.
//!
//! Real `serde` streams through visitor-based (de)serializers; this
//! stand-in goes through an owned [`Value`] tree instead, which is all
//! the workspace needs (model export/import JSON in `drybell-serving`).
//! The `#[derive(Serialize, Deserialize)]` macros come from the sibling
//! `serde_derive` crate, hand-written against `proc_macro` because `syn`
//! is not available offline.
//!
//! Determinism note: maps serialize with **sorted keys**, so serialized
//! artifacts are byte-identical across runs even when built from a
//! `HashMap` (see the repo's `determinism` lint rule).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced while converting a [`Value`] into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Construct from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitives -----------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if i128::from(i64::MIN) <= wide && wide <= i128::from(i64::MAX) {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let (got, err): (Option<$t>, &str) = match v {
                    Value::Int(i) => (<$t>::try_from(*i).ok(), "out of range"),
                    Value::UInt(u) => (<$t>::try_from(*u).ok(), "out of range"),
                    Value::Float(f) if f.fract() == 0.0 => {
                        // Integral floats round-trip (JSON has one number type).
                        (Some(*f as $t), "out of range")
                    }
                    _ => (None, "expected an integer"),
                };
                got.ok_or_else(|| {
                    Error(format!("{err} for {}: {v:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(Error(format!("expected a number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error(format!("expected a bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected a string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error(format!("expected an array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<($($name,)+), Error> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Arr(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error(format!(
                        "expected an array of length {ARITY}, got {v:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // Sorted for run-to-run byte-identical output.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error(format!("expected an object, got {v:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error(format!("expected an object, got {v:?}"))),
        }
    }
}

/// Support machinery for `serde_derive`-generated code. Not a public
/// API; code outside the generated impls should not call these.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Deserialize the named field of an object value.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(inner) => T::from_value(inner).map_err(|e| Error(format!("field `{name}`: {e}"))),
            None => Err(Error(format!("missing field `{name}` in {v:?}"))),
        }
    }

    /// Error for an unrecognized enum variant tag.
    pub fn unknown_variant(enum_name: &str, tag: &str) -> Error {
        Error(format!("unknown variant `{tag}` for enum {enum_name}"))
    }

    /// Error for a value whose shape doesn't match the enum repr.
    pub fn bad_enum_shape(enum_name: &str, v: &Value) -> Error {
        Error(format!("cannot deserialize enum {enum_name} from {v:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_round_trip_through_values() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 1.5f64), (2, -2.5)];
        let val = v.to_value();
        assert_eq!(Vec::<(u32, f64)>::from_value(&val), Ok(v));
        let m: HashMap<String, u32> = [("b".to_string(), 2u32), ("a".to_string(), 1)]
            .into_iter()
            .collect();
        match m.to_value() {
            Value::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["a", "b"], "map keys must serialize sorted");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Int(1)), Ok(Some(1)));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }
}
