//! Offline stand-in for `criterion`.
//!
//! Keeps the upstream API shape used by `drybell-bench` (groups,
//! throughput, `bench_with_input`, the `criterion_group!` /
//! `criterion_main!` macros) but replaces the statistical machinery
//! with a simple warmup + timed-mean loop and a plain-text report.
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), each benchmark body runs exactly
//! once for a smoke check and nothing is timed.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, self.test_mode, f);
        print_report(name, None, &report);
        self
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self.criterion.sample_size, self.criterion.test_mode, f);
        print_report(&format!("{}/{}", self.name, id.0), self.throughput, &report);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (report output is incremental, so this only
    /// exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter as the name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Work performed per iteration, for deriving rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warmup: one untimed call so lazy init and cold caches don't
        // land in the first sample.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
    ran: bool,
}

fn run_bench<F: FnMut(&mut Bencher)>(sample_size: usize, test_mode: bool, mut f: F) -> Report {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut b);
    if b.samples.is_empty() {
        return Report {
            mean: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
            ran: false,
        };
    }
    let total: Duration = b.samples.iter().sum();
    Report {
        mean: total / b.samples.len() as u32,
        min: b.samples.iter().min().copied().unwrap_or_default(),
        max: b.samples.iter().max().copied().unwrap_or_default(),
        ran: true,
    }
}

fn print_report(name: &str, throughput: Option<Throughput>, report: &Report) {
    if !report.ran {
        println!("{name:<48} ok (test mode)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / report.mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / report.mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!(
        "{name:<48} mean {:>12?}  [{:?} .. {:?}]{rate}",
        report.mean, report.min, report.max
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let report = run_bench(3, false, |b| b.iter(|| 1 + 1));
        assert!(report.ran);
        assert!(report.min <= report.mean && report.mean <= report.max);
    }

    #[test]
    fn test_mode_runs_once_without_timing() {
        let mut calls = 0;
        let report = run_bench(5, true, |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(!report.ran);
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).0, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
