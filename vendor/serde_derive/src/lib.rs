//! Offline stand-in for `serde_derive`.
//!
//! The real crate parses items with `syn`; neither `syn` nor `quote`
//! is available offline, so this macro walks the raw
//! [`proc_macro::TokenStream`] by hand. That is enough because the
//! derive only needs *shape* — struct vs. enum, field names, variant
//! kinds — never field types: generated deserialization code infers
//! each field's type from the struct-literal position it is written
//! into.
//!
//! Supported input shapes (everything this workspace derives):
//! - structs with named fields
//! - tuple structs (arity 1 serializes transparently, like real serde's
//!   newtype structs; higher arity serializes as an array)
//! - enums whose variants are unit or newtype (`V` / `V(T)`)
//!
//! Unsupported shapes (generics, struct variants, unions) produce a
//! `compile_error!` naming the limitation rather than misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Enum variants: `(name, has_payload)`.
    Enum(Vec<(String, bool)>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, which)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde_derive generated invalid code: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error! literal")
}

// --- parsing --------------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut toks = input.into_iter().peekable();

    // Outer attributes (`#[...]`, including expanded doc comments) and
    // visibility precede the item keyword.
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                if s == "union" {
                    return Err("serde derive: unions are not supported".into());
                }
                // e.g. `r#struct` never occurs here; anything else is
                // an unexpected modifier we don't know.
                return Err(format!("serde derive: unexpected token `{s}`"));
            }
            other => {
                return Err(format!("serde derive: unexpected input {other:?}"));
            }
        }
    };

    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected item name, got {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive: generic type `{name}` is not supported by the offline stand-in"
            ));
        }
    }

    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok((name, Shape::Named(parse_named_fields(g.stream())?)))
            } else {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde derive: malformed enum body".into());
            }
            Ok((name, Shape::Tuple(count_tuple_fields(g.stream()))))
        }
        other => Err(format!("serde derive: expected item body, got {other:?}")),
    }
}

/// Field names of a `{ ... }` struct body, in order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        let field = loop {
            match toks.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!("serde derive: unexpected field token {other:?}"));
                }
            }
        };
        fields.push(field);
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde derive: expected `:`, got {other:?}")),
        }
        // Skip the type up to the next top-level comma. Generic
        // argument lists (`HashMap<String, u32>`) contain commas, so
        // track `<`/`>` depth; bracketed/parenthesized types arrive as
        // single groups and need no handling.
        let mut angle_depth = 0usize;
        loop {
            match toks.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Arity of a `( ... )` tuple-struct body (top-level comma count + 1).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0usize;
    for tok in body {
        saw_any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        arity + 1
    } else {
        0
    }
}

/// Variants of an enum body as `(name, has_payload)`.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        let name = loop {
            match toks.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!("serde derive: unexpected variant token {other:?}"));
                }
            }
        };
        let mut has_payload = false;
        // What follows the name: `(T)`, `{...}`, `= disc`, `,`, or end.
        loop {
            match toks.next() {
                None => {
                    variants.push((name, has_payload));
                    return Ok(variants);
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    if count_tuple_fields(g.stream()) != 1 {
                        return Err(format!(
                            "serde derive: variant `{name}` must be unit or single-payload"
                        ));
                    }
                    has_payload = true;
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    return Err(format!(
                        "serde derive: struct variant `{name}` is not supported"
                    ));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {} // discriminant tokens after `=`
            }
        }
        variants.push((name, has_payload));
    }
}

// --- code generation ------------------------------------------------------

fn generate(name: &str, shape: &Shape, which: Which) -> String {
    match which {
        Which::Serialize => generate_serialize(name, shape),
        Which::Deserialize => generate_deserialize(name, shape),
    }
}

fn generate_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(__x) => ::serde::Value::Obj(vec![({v:?}.to_string(), \
                             ::serde::Serialize::to_value(__x))]),"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__v, {f:?})?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 \x20   ::serde::Value::Arr(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({inits})),\n\
                 \x20   __other => ::std::result::Result::Err(\
                 ::serde::__private::bad_enum_shape({name:?}, __other)),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, has_payload)| !has_payload)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|(_, has_payload)| *has_payload)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(&__fields[0].1)?)),"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                 \x20   ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 \x20       {unit}\n\
                 \x20       __t => ::std::result::Result::Err(\
                 ::serde::__private::unknown_variant({name:?}, __t)),\n\
                 \x20   }},\n\
                 \x20   ::serde::Value::Obj(__fields) if __fields.len() == 1 => \
                 match __fields[0].0.as_str() {{\n\
                 \x20       {payload}\n\
                 \x20       __t => ::std::result::Result::Err(\
                 ::serde::__private::unknown_variant({name:?}, __t)),\n\
                 \x20   }},\n\
                 \x20   __other => ::std::result::Result::Err(\
                 ::serde::__private::bad_enum_shape({name:?}, __other)),\n\
                 }}",
                unit = unit_arms.join("\n        "),
                payload = payload_arms.join("\n        "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \x20   fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::Error> {{\n\
         \x20       {body}\n\
         \x20   }}\n\
         }}"
    )
}
