//! Offline stand-in for `tempfile`.
//!
//! Provides [`tempdir`] / [`TempDir`]: a uniquely named directory under
//! [`std::env::temp_dir`] that is removed (best-effort) on drop. Unique
//! names come from the process id plus a process-wide counter, so
//! parallel tests in one process and concurrent test processes cannot
//! collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A temporary directory deleted when the handle drops.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Keep the directory, returning its path without deleting it.
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }

    /// Delete the directory now, reporting any I/O error (drop swallows
    /// them).
    pub fn close(mut self) -> std::io::Result<()> {
        let path = std::mem::take(&mut self.path);
        std::fs::remove_dir_all(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// Create a fresh temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("drybell-tmp-{}-{}", std::process::id(), id));
    std::fs::create_dir_all(&path)?;
    Ok(TempDir { path })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdirs_are_unique_and_cleaned_up() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }

    #[test]
    fn close_reports_success() {
        let d = tempdir().unwrap();
        let p = d.path().to_path_buf();
        d.close().unwrap();
        assert!(!p.exists());
    }
}
