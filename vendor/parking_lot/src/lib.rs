//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! `lock()` returns a guard directly, and a poisoned std mutex is
//! recovered with [`std::sync::PoisonError::into_inner`] rather than
//! propagated (matching `parking_lot`, which has no poisoning at all).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
