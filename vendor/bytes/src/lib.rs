//! Offline stand-in for the `bytes` crate.
//!
//! Only the [`Buf`] / [`BufMut`] trait subset used by
//! `drybell-dataflow`'s codec is provided, implemented for the same
//! types the codec applies them to: `&[u8]` as the reader and `Vec<u8>`
//! as the writer. Getters panic when the buffer is short, exactly like
//! upstream `bytes`; the codec guards every call with `remaining()`.

/// Sequential reader over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Sequential writer into a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(u64::MAX - 1);
        out.put_f64_le(-1.5);
        let mut r: &[u8] = &out;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.chunk(), &[3, 4]);
    }
}
