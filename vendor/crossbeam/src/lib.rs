//! Offline stand-in for `crossbeam`.
//!
//! Implements the one surface this workspace uses: an unbounded MPMC
//! channel (`crossbeam::channel::unbounded`) with blocking `recv` that
//! disconnects when every `Sender` is dropped. Built on a
//! `Mutex<VecDeque>` + `Condvar`; adequate for the work-queue fan-out in
//! `drybell-dataflow`, where each message is a whole shard of work and
//! channel overhead is noise.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message. Fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking while the channel is empty
        /// and at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeue without blocking (`None` when currently empty).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_sender() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_disconnects_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn workers_drain_the_queue_exactly_once() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    let total = &total;
                    s.spawn(move || {
                        while let Ok(v) = rx.recv() {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(
                total.load(std::sync::atomic::Ordering::Relaxed),
                (0..1000).sum::<usize>()
            );
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(9).unwrap();
            assert_eq!(h.join().unwrap(), Ok(9));
        }
    }
}
