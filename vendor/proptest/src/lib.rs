//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` bindings, `prop_assert!`/
//! `prop_assert_eq!`, [`any`], numeric range strategies, `&str` regex-
//! pattern strategies, tuples of strategies, and
//! [`collection::vec`]. Differences from upstream:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   verbatim; rerunning reproduces it exactly (seeds are derived from
//!   the test's module path + name, not wall-clock entropy).
//! - Pattern strategies implement just enough regex: literal chars,
//!   `.`, `[a-z 0-9]` classes, and `{m}` / `{m,n}` / `*` / `+` / `?`
//!   quantifiers.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the offline suite quick
        // while still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property inside a generated case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// --- deterministic RNG ----------------------------------------------------

/// SplitMix64 generator seeded from the test's identity, so every run
/// of a given test explores the identical input sequence.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test's `module_path!::name` string (FNV-1a).
    pub fn for_test(identity: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in identity.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (Lemire widening multiply).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// --- strategies -----------------------------------------------------------

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix raw values with boundary cases, which catch more
                // off-by-one and overflow bugs than uniform draws alone.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MIN_POSITIVE,
            _ => {
                // Sign * mantissa * 2^exp over a wide dynamic range.
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                let exp = rng.below(129) as i32 - 64;
                sign * rng.unit_f64() * (exp as f64).exp2()
            }
        }
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // widened; never overflows
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Occasionally pin the endpoints, which [lo, hi) sampling
        // would otherwise (almost) never produce.
        match rng.below(32) {
            0 => *self.start(),
            1 => *self.end(),
            _ => self.start() + rng.unit_f64() * (self.end() - self.start()),
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// --- pattern (regex-subset) string strategy -------------------------------

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0usize, 32usize)
                }
                '+' => {
                    i += 1;
                    (1, 32)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or(chars.len());
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().unwrap_or(0),
                            b.trim().parse().unwrap_or(32),
                        ),
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(atom_char(&atom, rng));
        }
    }
    out
}

fn atom_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) if !ranges.is_empty() => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = (hi as u32).saturating_sub(lo as u32) + 1;
            char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32).unwrap_or(lo)
        }
        Atom::Class(_) => '?',
        Atom::AnyChar => {
            // Mostly printable ASCII, with control and multi-byte
            // characters mixed in so byte-level code gets exercised.
            match rng.below(10) {
                0 => char::from_u32(rng.below(0x20) as u32).unwrap_or('\n'),
                1 | 2 => {
                    const POOL: [char; 8] = [
                        'é',
                        'ß',
                        'Ω',
                        '雪',
                        'д',
                        '\u{2603}',
                        '\u{1F600}',
                        '\u{10FFFF}',
                    ];
                    POOL[rng.below(POOL.len() as u64) as usize]
                }
                _ => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' '),
            }
        }
    }
}

// --- collections ----------------------------------------------------------

/// `proptest::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A length bound for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.min < self.size.max_exclusive,
                "empty size range for vec strategy"
            );
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --- macros ---------------------------------------------------------------

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Rendered before the body runs: the body may move the
                // bindings, and on failure we still want to print them.
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!("\n  ", stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}", $arg));
                    )+
                    __s
                };
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e,
                        __inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(-1i8..=1), &mut rng);
            assert!((-1..=1).contains(&w));
            let f = Strategy::generate(&(-2.0..3.0f64), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn patterns_match_shape() {
        let mut rng = crate::TestRng::for_test("patterns_match_shape");
        for _ in 0..200 {
            let s = Strategy::generate("[a-c ]{0,10}", &mut rng);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
            let t = Strategy::generate("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&t.chars().count()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |label: &str| {
            let mut rng = crate::TestRng::for_test(label);
            (0..20)
                .map(|_| Strategy::generate(&(0u64..1_000_000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen("same"), gen("same"));
        assert_ne!(gen("same"), gen("different"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(
            n in 1usize..5,
            xs in crate::collection::vec((any::<u64>(), "[ab]{0,4}"), 0..10),
        ) {
            prop_assert!(n >= 1);
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(n, n);
        }
    }
}
