//! Offline stand-in for the `rand` crate.
//!
//! The development environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic generator, but **not** bit-compatible with
//! upstream `StdRng` (ChaCha12). Seeded runs are reproducible against
//! this crate, not against upstream `rand`.

/// The core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (the only constructor this workspace
    /// uses; every RNG in the repo is explicitly seeded for determinism).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Not bit-compatible with upstream
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }
}
