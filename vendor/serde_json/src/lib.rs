//! Offline stand-in for `serde_json`.
//!
//! Works over the workspace `serde` crate's owned [`Value`] tree:
//! [`to_string`] / [`to_string_pretty`] render it, [`from_str`] parses
//! JSON text back into it and then into the target type. Floats render
//! via Rust's shortest-round-trip `Display`, so `f64` values survive a
//! serialize → parse cycle bit-exactly (the serving tests assert
//! score equality to 1e-12 across export/import).

use serde::{Deserialize, Serialize, Value};

/// JSON serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

// --- rendering ------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => render_f64(*f, out),
        Value::Str(s) => render_str(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn render_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // JSON has no distinct integer type; keep a fractional marker so
        // a parse → re-render cycle stays stable for float fields.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Match upstream serde_json's lossy default for non-finite floats.
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut s)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, s: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{8}'),
            b'f' => s.push('\u{c}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a following \uXXXX low half.
                    if !self.eat_keyword("\\u") {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                s.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn floats_round_trip_bit_exactly() {
        let xs = vec![0.1f64, -1.5e-7, 1.0 / 3.0, 12345.0, f64::MIN_POSITIVE];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn strings_round_trip_with_escapes() {
        let s = "quote:\" back:\\ nl:\n tab:\t nul:\u{0} snow:\u{2603} emoji:\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let back: String = from_str(r#""😀☃""#).unwrap();
        assert_eq!(back, "\u{1F600}\u{2603}");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("a".to_string(), vec![1, 2]);
        m.insert("b".to_string(), vec![]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"));
        let back: BTreeMap<String, Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn integer_fields_accept_integral_floats() {
        let v: u32 = from_str("42").unwrap();
        assert_eq!(v, 42);
        let f: f64 = from_str("42").unwrap();
        assert_eq!(f, 42.0);
    }
}
