//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the label model, the codec'd document types, and the
//! vote-matrix algebra.

use drybell::core::generative::{GenerativeModel, TrainConfig};
use drybell::core::{LabelMatrix, Vote};
use drybell::dataflow::codec::{decode_record, encode_record};
use drybell::lf::executor::VoteRow;
use drybell_datagen::{product::ProductDoc, topic::TopicDoc};
use proptest::prelude::*;

/// Strategy for a small random label matrix.
fn matrix_strategy(max_rows: usize, lfs: usize) -> impl Strategy<Value = LabelMatrix> {
    proptest::collection::vec(proptest::collection::vec(-1i8..=1, lfs), 1..max_rows).prop_map(
        move |rows| {
            let mut m = LabelMatrix::with_capacity(lfs, rows.len());
            for row in rows {
                m.push_raw_row(&row).expect("valid votes");
            }
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Posteriors are probabilities, and the model's NLL is non-negative
    /// (it is a negative log of a discrete probability).
    #[test]
    fn label_model_outputs_are_well_formed(m in matrix_strategy(60, 4)) {
        let mut model = GenerativeModel::new(4, 0.7);
        let cfg = TrainConfig { steps: 60, batch_size: 16, ..TrainConfig::default() };
        model.fit(&m, &cfg).unwrap();
        let nll = model.nll(&m).unwrap();
        prop_assert!(nll >= -1e-9, "NLL {nll} must be non-negative");
        for p in model.predict_proba(&m) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        for a in model.learned_accuracies() {
            prop_assert!((0.0..=1.0).contains(&a));
        }
        for pr in model.learned_propensities() {
            prop_assert!((0.0..=1.0).contains(&pr));
        }
    }

    /// Flipping every vote in the matrix flips the posterior around 0.5
    /// for a model with a uniform prior and re-fit parameters: the label
    /// semantics are symmetric.
    #[test]
    fn posterior_is_label_symmetric(m in matrix_strategy(50, 3)) {
        let flipped_rows: Vec<Vec<i8>> = m.rows().map(|r| r.iter().map(|&v| -v).collect()).collect();
        let mut flipped = LabelMatrix::with_capacity(3, flipped_rows.len());
        for r in &flipped_rows {
            flipped.push_raw_row(r).unwrap();
        }
        let mut model = GenerativeModel::new(3, 0.7);
        model.fit(&m, &TrainConfig { steps: 120, batch_size: 16, ..TrainConfig::default() }).unwrap();
        // The *same parameters* applied to flipped votes must mirror the
        // posterior (per-row flip symmetry of the CI model).
        for (row, frow) in m.rows().zip(flipped.rows()) {
            let p = model.posterior(row);
            let q = model.posterior(frow);
            prop_assert!((p + q - 1.0).abs() < 1e-9, "{p} + {q} != 1");
        }
    }

    /// Column selection preserves the votes of the kept columns exactly.
    #[test]
    fn select_columns_is_a_projection(
        m in matrix_strategy(40, 5),
        keep in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let sub = m.select_columns(&keep).unwrap();
        let kept: Vec<usize> = keep.iter().enumerate().filter_map(|(j, &k)| k.then_some(j)).collect();
        prop_assert_eq!(sub.num_lfs(), kept.len());
        prop_assert_eq!(sub.num_examples(), m.num_examples());
        for (i, row) in sub.rows().enumerate() {
            for (jj, &j) in kept.iter().enumerate() {
                prop_assert_eq!(row[jj], m.get(i, j));
            }
        }
    }

    /// Application document types survive the shard codec bit-exactly.
    #[test]
    fn topic_doc_codec_roundtrip(
        id in any::<u64>(),
        title in ".{0,50}",
        body in ".{0,200}",
        url in "[a-z./:]{0,40}",
        score in 0.0..=1.0f64,
    ) {
        let doc = TopicDoc { id, title, body, url, related_model_score: score };
        let back: TopicDoc = decode_record(&encode_record(&doc)).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn product_doc_codec_roundtrip(
        id in any::<u64>(),
        text in ".{0,200}",
        lang in "[a-z]{2}",
        score in 0.0..=1.0f64,
    ) {
        let doc = ProductDoc { id, text, lang, legacy_score: score };
        let back: ProductDoc = decode_record(&encode_record(&doc)).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn vote_row_codec_roundtrip(
        id in any::<u64>(),
        votes in proptest::collection::vec(-1i8..=1, 0..200),
    ) {
        let row = VoteRow { id, votes };
        let back: VoteRow = decode_record(&encode_record(&row)).unwrap();
        prop_assert_eq!(back, row);
    }

    /// Vote encoding round-trips and flipping is an involution for any
    /// valid vote value.
    #[test]
    fn vote_algebra(v in -1i8..=1) {
        let vote = Vote::from_i8(v).unwrap();
        prop_assert_eq!(vote.as_i8(), v);
        prop_assert_eq!(vote.flipped().flipped(), vote);
        prop_assert_eq!(vote.flipped().as_i8(), -v);
    }
}
