//! Integration tests: the full content-classification pipelines
//! (§6.1's methodology) across every crate — datagen → LF execution →
//! generative model → noise-aware discriminative training → evaluation.

use drybell::core::vote::Label;
use drybell_bench::harness::ContentTask;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[test]
fn topic_drybell_beats_dev_baseline() {
    let mut task = ContentTask::topic(0.02, Some(1), workers());
    task.lr_iterations = 2_000;
    let report = task.run_full();
    assert!(
        report.drybell.f1() > report.baseline.f1(),
        "DryBell F1 {:.3} must beat baseline {:.3}",
        report.drybell.f1(),
        report.baseline.f1()
    );
    // The paper's recall story: weak supervision over a large pool finds
    // more positives than a small hand-labeled set.
    assert!(
        report.drybell.recall() > report.baseline.recall(),
        "recall {:.3} vs {:.3}",
        report.drybell.recall(),
        report.baseline.recall()
    );
}

#[test]
fn product_drybell_beats_dev_baseline() {
    let mut task = ContentTask::product(0.012, Some(2), workers());
    task.lr_iterations = 20_000;
    let report = task.run_full();
    assert!(
        report.drybell.f1() > report.baseline.f1(),
        "DryBell F1 {:.3} must beat baseline {:.3}",
        report.drybell.f1(),
        report.baseline.f1()
    );
}

#[test]
fn topic_label_model_recovers_lf_quality_without_gold() {
    let task = ContentTask::topic(0.02, Some(3), workers());
    let (matrix, _) = task.run_lfs();
    let model = task.fit_label_model(&matrix);
    let learned = model.learned_accuracies();
    let mut votes_per_lf = vec![0u64; matrix.num_lfs()];
    for row in matrix.rows() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0 {
                votes_per_lf[j] += 1;
            }
        }
    }
    for (j, name) in task.lf_set.names().iter().enumerate() {
        let emp = matrix
            .empirical_accuracy(j, &task.unlabeled_gold)
            .unwrap()
            .unwrap_or_else(|| panic!("{name} never voted"));
        // High-coverage LFs should be pinned tightly; rare LFs see so few
        // agreements that their estimate stays partly anchored to the
        // prior, so they get a looser band. Both tolerances still catch
        // inversions, which land near 1 - emp (a deviation of ~0.9 here).
        let tolerance = if votes_per_lf[j] >= 500 { 0.25 } else { 0.40 };
        assert!(
            (learned[j] - emp).abs() < tolerance,
            "{name}: learned {:.3} vs empirical {emp:.3} ({} votes)",
            learned[j],
            votes_per_lf[j]
        );
    }
}

#[test]
fn table3_shape_non_servable_resources_add_value() {
    let mut task = ContentTask::product(0.004, Some(4), workers());
    task.lr_iterations = 20_000;
    let servable_only = task.run_servable_only();
    let full = task.run_full().drybell;
    assert!(
        full.f1() > servable_only.f1(),
        "full {:.3} must beat servable-only {:.3}",
        full.f1(),
        servable_only.f1()
    );
}

#[test]
fn table4_shape_generative_weighting_beats_equal_weights() {
    let mut task = ContentTask::topic(0.015, Some(5), workers());
    task.lr_iterations = 2_000;
    let equal = task.run_equal_weights();
    let full = task.run_full().drybell;
    // Equal weights must not *beat* the generative model; (ties are
    // possible at small scale, the paper's lift is a few percent).
    assert!(
        full.f1() >= equal.f1() * 0.98,
        "generative {:.3} vs equal-weights {:.3}",
        full.f1(),
        equal.f1()
    );
}

#[test]
fn figure5_shape_more_hand_labels_help() {
    let mut task = ContentTask::topic(0.02, Some(6), workers());
    task.lr_iterations = 1_500;
    let small = task.supervised_with_n_labels(1_000);
    let large = task.supervised_with_n_labels(13_000);
    assert!(
        large.f1() > small.f1(),
        "13K labels {:.3} must beat 1K labels {:.3}",
        large.f1(),
        small.f1()
    );
}

#[test]
fn pipelines_are_deterministic_given_seed() {
    let run = || {
        let mut task = ContentTask::topic(0.005, Some(7), workers());
        task.lr_iterations = 300;
        let report = task.run_full();
        (
            report.posteriors.clone(),
            report.drybell.tp,
            report.drybell.fp,
        )
    };
    let (p1, tp1, fp1) = run();
    let (p2, tp2, fp2) = run();
    assert_eq!(p1, p2, "posteriors must be bit-identical across runs");
    assert_eq!((tp1, fp1), (tp2, fp2));
}

#[test]
fn dev_and_test_splits_have_expected_positive_rates() {
    let task = ContentTask::topic(0.01, Some(8), workers());
    let rate = |gold: &[Label]| {
        gold.iter().filter(|&&l| l == Label::Positive).count() as f64 / gold.len() as f64
    };
    // 11K-example splits at 0.86%: expect within ±0.4pp.
    assert!((rate(&task.dev_gold) - 0.0086).abs() < 0.004);
    assert!((rate(&task.test_gold) - 0.0086).abs() < 0.004);
}
