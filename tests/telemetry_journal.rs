//! Integration test: a pipeline run writes a structured JSONL run
//! journal to disk, and the file is valid — every line parses, sequence
//! numbers are dense, and the per-phase accounting of the sharded LF
//! job and the label-model fit is all present.

use drybell::core::generative::{GenerativeModel, TrainConfig};
use drybell::dataflow::{write_all, JobConfig, ShardSpec};
use drybell::lf::executor::{execute_sharded_observed, ExecOptions};
use drybell::obs::{parse_json, Json, RunJournal, Telemetry};
use drybell_datagen::topic::{self, TopicTaskConfig};

#[test]
fn pipeline_run_writes_a_valid_jsonl_journal() {
    let cfg = TopicTaskConfig {
        num_unlabeled: 800,
        num_dev: 10,
        num_test: 10,
        pos_rate: 0.05,
        seed: 17,
    };
    let ds = topic::generate(&cfg);
    let set = topic::lf_set(ds.crawl_table.clone());
    let ext = topic::text_extractor();

    let dir = tempfile::tempdir().unwrap();
    let journal_path = dir.path().join("run.jsonl");
    let telemetry = Telemetry::with_journal(RunJournal::to_path(&journal_path).unwrap());

    // Stage 0: the run header — schema version, run id, and config
    // fingerprint — so cross-run tooling can pair comparable journals.
    let fingerprint = drybell::obs::config_fingerprint(["topic", "seed=17", "scale=test"]);
    telemetry
        .journal()
        .unwrap()
        .emit_header("journal-test", &fingerprint);

    // Stage 1: sharded LF execution, instrumented.
    let input = ShardSpec::new(dir.path(), "docs", 4);
    write_all(&input, &ds.unlabeled).unwrap();
    let output = input.derive("votes");
    let job = JobConfig::new("topic-lfs").with_workers(2);
    let opts = ExecOptions::new().with_telemetry(telemetry.clone());
    let (matrix, stats) =
        execute_sharded_observed(&set, Some(&ext), &input, &output, &job, |d| d.id, &opts).unwrap();
    assert_eq!(stats.records_in, 800);

    // Stage 2: label-model training, instrumented.
    let mut model = GenerativeModel::new(matrix.num_lfs(), 0.7);
    model
        .fit_observed(
            &matrix,
            &TrainConfig {
                steps: 300,
                batch_size: 64,
                seed: cfg.seed,
                ..TrainConfig::default()
            },
            Some(&telemetry),
        )
        .unwrap();

    telemetry.journal().unwrap().flush().unwrap();

    // The journal is on disk as JSONL: every non-empty line parses on its
    // own with the crate's own parser.
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let events: Vec<Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_json(l).unwrap())
        .collect();
    assert!(
        events.len() >= 5,
        "expected a full journal, got {}",
        events.len()
    );

    // Dense monotonic sequence numbers and non-negative timestamps: the
    // lines order even when emitted from many threads.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.get("seq").and_then(|v| v.as_i64()), Some(i as i64));
        assert!(e.get("t").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        assert!(e.get("kind").and_then(|v| v.as_str()).is_some());
    }

    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e.get("kind").and_then(|k| k.as_str()).unwrap())
        .collect();

    // The header is the first event and carries the run's identity.
    let header = &events[0];
    assert_eq!(
        header.get("kind").and_then(|k| k.as_str()),
        Some("run_header")
    );
    assert_eq!(
        header.get("schema_version").and_then(|v| v.as_i64()),
        Some(i64::from(drybell::obs::SCHEMA_VERSION))
    );
    assert_eq!(
        header.get("run_id").and_then(|v| v.as_str()),
        Some("journal-test")
    );
    assert_eq!(
        header.get("config_fingerprint").and_then(|v| v.as_str()),
        Some(fingerprint.as_str())
    );

    // The sharded job reports each MapReduce phase, then its summary.
    let phases: Vec<&str> = events
        .iter()
        .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some("phase"))
        .map(|e| e.get("name").and_then(|v| v.as_str()).unwrap())
        .collect();
    assert!(phases.contains(&"map"), "phases: {phases:?}");
    let job_event = events
        .iter()
        .find(|e| e.get("kind").and_then(|k| k.as_str()) == Some("job"))
        .expect("job event");
    assert_eq!(
        job_event.get("name").and_then(|v| v.as_str()),
        Some("topic-lfs")
    );
    assert_eq!(
        job_event.get("records_in").and_then(|v| v.as_i64()),
        Some(800)
    );
    assert_eq!(job_event.get("workers").and_then(|v| v.as_i64()), Some(2));
    assert_eq!(
        job_event.get("worker_busy").map(|v| v.items().len()),
        Some(2),
        "per-worker busy seconds"
    );
    assert_eq!(
        job_event.get("counters/nlp_calls").and_then(|v| v.as_i64()),
        Some(800)
    );

    // Training closes the journal: per-epoch lines then the summary.
    assert!(kinds.contains(&"train_epoch"), "kinds: {kinds:?}");
    let train = events.last().unwrap();
    assert_eq!(train.get("kind").and_then(|k| k.as_str()), Some("train"));
    assert_eq!(train.get("steps").and_then(|v| v.as_i64()), Some(300));

    // The metrics side of the same bundle saw the run too.
    let snap = telemetry.metrics().snapshot();
    assert!(snap.histogram("obs/train/step_us").map(|h| h.count()) == Some(300));
    for name in set.names() {
        assert_eq!(
            snap.histogram(&format!("obs/lf/{name}/eval_us"))
                .map(|h| h.count()),
            Some(800)
        );
    }
    let spans = telemetry.spans().snapshot();
    assert!(spans.entries().iter().any(|(p, _)| p == "lf_exec/sharded"));
    assert!(spans.entries().iter().any(|(p, _)| p == "train/fit"));
}
