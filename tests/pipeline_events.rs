//! Integration tests: the real-time events pipeline (§6.4, Figure 6).

use drybell::ml::metrics::histogram_entropy;
use drybell_bench::harness::run_events;
use drybell_datagen::events::EventTaskConfig;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn small_cfg(seed: u64) -> EventTaskConfig {
    EventTaskConfig {
        num_unlabeled: 6_000,
        num_test: 3_000,
        pos_rate: 0.05,
        num_lfs: 140,
        seed,
    }
}

#[test]
fn drybell_finds_more_events_than_logical_or() {
    let report = run_events(&small_cfg(1), workers(), 1_500);
    assert!(
        report.drybell_tp_at_k > report.or_tp_at_k,
        "DryBell {} must beat OR {} within the review budget",
        report.drybell_tp_at_k,
        report.or_tp_at_k
    );
    assert!(report.quality_improvement() > 0.0);
}

#[test]
fn figure6_shape_or_scores_pile_at_extremes() {
    // 3000 DNN steps: the over-estimation claim below compares top-bin
    // mass against the absolute number of true events, which requires the
    // OR-trained net to have converged to saturated scores.
    let report = run_events(&small_cfg(5), workers(), 3_000);
    // The OR model piles mass into the top bins; DryBell's distribution
    // is smoother. Entropy is the scalar summary of Figure 6.
    let or_top: u64 = report.or_hist.iter().rev().take(2).sum();
    let db_top: u64 = report.drybell_hist.iter().rev().take(2).sum();
    assert!(
        or_top > db_top,
        "OR should put more mass in the top bins: {or_top} vs {db_top}"
    );
    // "Greatly over-estimating the score of events": the OR model's
    // top-bin mass far exceeds the number of events that are actually of
    // interest, while DryBell's stays in its vicinity.
    let true_events = (3_000.0 * 0.05) as u64;
    assert!(
        or_top > true_events,
        "OR top bins {or_top} should exceed the {true_events} true events"
    );
    // Both histograms account for every test event.
    assert_eq!(report.or_hist.iter().sum::<u64>(), 3_000);
    assert!(histogram_entropy(&report.or_hist) > 0.0);
}

#[test]
fn or_baseline_overpredicts_positives() {
    let report = run_events(&small_cfg(3), workers(), 1_500);
    assert!(
        report.logical_or.predicted_positives() > report.drybell.predicted_positives(),
        "OR-trained net predicts positive too often: {} vs {}",
        report.logical_or.predicted_positives(),
        report.drybell.predicted_positives()
    );
    // And its precision suffers for it.
    assert!(report.drybell.precision() > report.logical_or.precision());
}
