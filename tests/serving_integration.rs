//! Integration tests: training → export → reload → serving parity, and
//! the §4 servability guarantees on a real trained pipeline.

use drybell::features::{FeatureHasher, FeatureSpace, SpaceRegistry};
use drybell::serving::{ExportedModel, ModelSpec, ScoreInput, ServingError, ServingRegistry};
use drybell_bench::harness::ContentTask;
use drybell_datagen::topic;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn spaces() -> SpaceRegistry {
    let mut r = SpaceRegistry::new();
    r.register(FeatureSpace::servable("hashed-text", 40))
        .unwrap();
    r.register(FeatureSpace::non_servable(
        "nlp-model-server",
        drybell::nlp::NlpServer::DEFAULT_COST_US,
    ))
    .unwrap();
    r.register(FeatureSpace::private("crawl-reputation", 5))
        .unwrap();
    r
}

#[test]
fn trained_pipeline_exports_and_serves_identically() {
    let mut task = ContentTask::topic(0.005, Some(9), workers());
    task.lr_iterations = 500;
    let report = task.run_full();
    let model = task.train_drybell_lr(&report.posteriors);

    let spaces = spaces();
    let hashed = spaces.lookup("hashed-text").unwrap();
    let registry = ServingRegistry::new(spaces.clone(), 10_000);
    registry
        .stage(ModelSpec {
            name: "topic".into(),
            version: 1,
            feature_spaces: vec![hashed],
            model: ExportedModel::LogReg(model),
        })
        .unwrap();
    registry.promote("topic", 1).unwrap();

    let dir = tempfile::tempdir().unwrap();
    registry.export_to_dir(dir.path()).unwrap();
    let reloaded = ServingRegistry::load_from_dir(spaces, 10_000, dir.path()).unwrap();
    assert_eq!(reloaded.serving_version("topic"), Some(1));

    let hasher = FeatureHasher::new(task.hash_dims);
    for doc in task.test.iter().take(50) {
        let x = topic::featurize(doc, &hasher);
        let a = registry.score("topic", ScoreInput::Sparse(&x)).unwrap();
        let b = reloaded.score("topic", ScoreInput::Sparse(&x)).unwrap();
        assert!(
            (a - b).abs() < 1e-12,
            "export/reload must not change scores"
        );
    }
}

#[test]
fn non_servable_resources_cannot_reach_production() {
    let mut task = ContentTask::topic(0.003, Some(10), workers());
    task.lr_iterations = 200;
    let report = task.run_full();
    let model = task.train_drybell_lr(&report.posteriors);

    let spaces = spaces();
    let hashed = spaces.lookup("hashed-text").unwrap();
    let nlp = spaces.lookup("nlp-model-server").unwrap();
    let crawl = spaces.lookup("crawl-reputation").unwrap();
    let registry = ServingRegistry::new(spaces, 10_000);

    // Declaring the NLP model server as a serving dependency fails.
    let err = registry
        .stage(ModelSpec {
            name: "cheat".into(),
            version: 1,
            feature_spaces: vec![hashed, nlp],
            model: ExportedModel::LogReg(model.clone()),
        })
        .unwrap_err();
    assert!(matches!(err, ServingError::NotServable { .. }));

    // Private aggregate data is blocked regardless of cost.
    let err = registry
        .stage(ModelSpec {
            name: "cheat".into(),
            version: 1,
            feature_spaces: vec![hashed, crawl],
            model: ExportedModel::LogReg(model.clone()),
        })
        .unwrap_err();
    assert!(matches!(err, ServingError::NotServable { .. }));

    // The cross-feature transfer path works.
    assert!(registry
        .stage(ModelSpec {
            name: "topic".into(),
            version: 1,
            feature_spaces: vec![hashed],
            model: ExportedModel::LogReg(model),
        })
        .is_ok());
}
