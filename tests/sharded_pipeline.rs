//! Integration tests: the faithful sharded pipeline — documents written
//! to shard files, LFs executed shard-to-shard through the dataflow
//! engine with per-worker NLP model servers, and the label matrix
//! assembled from the output dataset. Verifies it agrees exactly with the
//! in-memory path.

use drybell::dataflow::{read_all, write_all, JobConfig, ShardSpec};
use drybell::lf::executor::{execute_in_memory, execute_sharded, VoteRow};
use drybell_datagen::topic::{self, TopicTaskConfig};

#[test]
fn sharded_execution_matches_in_memory() {
    let cfg = TopicTaskConfig {
        num_unlabeled: 2_000,
        num_dev: 10,
        num_test: 10,
        pos_rate: 0.05,
        seed: 31,
    };
    let ds = topic::generate(&cfg);
    let set = topic::lf_set(ds.crawl_table.clone());
    let ext = topic::text_extractor();

    let (mem_matrix, _) = execute_in_memory(&set, Some(&ext), &ds.unlabeled, 4).unwrap();

    let dir = tempfile::tempdir().unwrap();
    let input = ShardSpec::new(dir.path(), "docs", 6);
    write_all(&input, &ds.unlabeled).unwrap();
    let output = input.derive("votes");
    let job = JobConfig::new("topic-lfs").with_workers(3);
    let (shard_matrix, stats) =
        execute_sharded(&set, Some(&ext), &input, &output, &job, |d| d.id).unwrap();

    assert_eq!(shard_matrix, mem_matrix, "sharded and in-memory must agree");
    assert_eq!(stats.records_in, 2_000);
    assert_eq!(stats.counters.get("nlp_calls"), 2_000);

    // The vote shards are a durable artifact downstream stages can read.
    let rows: Vec<VoteRow> = read_all(&output).unwrap();
    assert_eq!(rows.len(), 2_000);
}

#[test]
fn sharded_corpus_roundtrips() {
    let cfg = TopicTaskConfig {
        num_unlabeled: 500,
        num_dev: 10,
        num_test: 10,
        pos_rate: 0.1,
        seed: 5,
    };
    let ds = topic::generate(&cfg);
    let dir = tempfile::tempdir().unwrap();
    let spec = ShardSpec::new(dir.path(), "docs", 4);
    write_all(&spec, &ds.unlabeled).unwrap();
    let mut back: Vec<topic::TopicDoc> = read_all(&spec).unwrap();
    back.sort_by_key(|d| d.id);
    assert_eq!(back, ds.unlabeled);
}

#[test]
fn worker_count_does_not_change_sharded_results() {
    let cfg = TopicTaskConfig {
        num_unlabeled: 600,
        num_dev: 10,
        num_test: 10,
        pos_rate: 0.05,
        seed: 8,
    };
    let ds = topic::generate(&cfg);
    let set = topic::lf_set(ds.crawl_table.clone());
    let ext = topic::text_extractor();
    let mut matrices = Vec::new();
    for workers in [1usize, 2, 6] {
        let dir = tempfile::tempdir().unwrap();
        let input = ShardSpec::new(dir.path(), "docs", 4);
        write_all(&input, &ds.unlabeled).unwrap();
        let output = input.derive("votes");
        let job = JobConfig::new("wc").with_workers(workers);
        let (m, _) = execute_sharded(&set, Some(&ext), &input, &output, &job, |d| d.id).unwrap();
        matrices.push(m);
    }
    assert_eq!(matrices[0], matrices[1]);
    assert_eq!(matrices[1], matrices[2]);
}
