//! Cross-thread determinism suite for the parallel label-model hot path.
//!
//! The contract (DESIGN.md §Parallel training): `fit`, `predict_proba`,
//! and `nll` are **byte-identical** at any `num_threads` because chunk
//! boundaries depend only on input length and partial results are
//! combined with a fixed-order tree reduction. These tests compare raw
//! `f64::to_bits` patterns — not epsilons — across thread counts, and a
//! property test pins the sparse (active-index) gradient path to the
//! dense scan bit-for-bit.

use drybell_core::{GenerativeModel, LabelMatrix, TrainConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Planted two-class matrix: per-LF accuracy and propensity drawn once,
/// rows sampled i.i.d. — the same generator the benches use.
fn planted(examples: usize, lfs: usize, seed: u64) -> LabelMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let accs: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.6..0.95)).collect();
    let props: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.3..0.9)).collect();
    let mut m = LabelMatrix::with_capacity(lfs, examples);
    for _ in 0..examples {
        let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let row: Vec<i8> = (0..lfs)
            .map(|j| {
                if !rng.gen_bool(props[j]) {
                    0
                } else if rng.gen_bool(accs[j]) {
                    y
                } else {
                    -y
                }
            })
            .collect();
        m.push_raw_row(&row).unwrap();
    }
    m
}

/// Exact bit patterns of a float slice, for byte-identity assertions.
fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// All learned parameters of a model as bit patterns.
fn param_bits(model: &GenerativeModel) -> (Vec<u64>, Vec<u64>, u64) {
    (
        bits(model.alphas()),
        bits(model.betas()),
        model.eta().to_bits(),
    )
}

fn fit_with_threads(m: &LabelMatrix, batch_size: usize, num_threads: usize) -> GenerativeModel {
    let mut model = GenerativeModel::new(m.num_lfs(), 0.7);
    model
        .fit(
            m,
            &TrainConfig {
                steps: 25,
                batch_size,
                num_threads,
                seed: 9,
                ..TrainConfig::default()
            },
        )
        .unwrap();
    model
}

#[test]
fn fit_is_byte_identical_across_thread_counts() {
    // Multi-chunk batches (2048 rows = 2 chunks) so the parallel
    // gradient reduction actually runs.
    let m = planted(6_000, 8, 42);
    let baseline = param_bits(&fit_with_threads(&m, 2_048, 1));
    for threads in [2usize, 4, 8] {
        let got = param_bits(&fit_with_threads(&m, 2_048, threads));
        assert_eq!(
            got, baseline,
            "fit diverged at num_threads = {threads} (batch 2048)"
        );
    }
}

#[test]
fn small_batches_stay_on_the_inline_path_and_agree() {
    // Batches below one chunk (64 < 1024) never spawn workers; results
    // must still match any requested width.
    let m = planted(3_000, 6, 7);
    let baseline = param_bits(&fit_with_threads(&m, 64, 1));
    for threads in [2usize, 8] {
        let got = param_bits(&fit_with_threads(&m, 64, threads));
        assert_eq!(got, baseline, "small-batch fit diverged at {threads}");
    }
}

#[test]
fn predict_proba_and_nll_are_byte_identical_across_thread_counts() {
    let m = planted(5_000, 8, 11);
    let model = fit_with_threads(&m, 1_024, 1);
    let base_posteriors = bits(&model.predict_proba_threads(&m, 1));
    let base_nll = model.nll_threads(&m, 1).unwrap().to_bits();
    for threads in [2usize, 4, 8] {
        assert_eq!(
            bits(&model.predict_proba_threads(&m, threads)),
            base_posteriors,
            "predict_proba diverged at num_threads = {threads}"
        );
        assert_eq!(
            model.nll_threads(&m, threads).unwrap().to_bits(),
            base_nll,
            "nll diverged at num_threads = {threads}"
        );
    }
    // The convenience single-thread entry points agree too.
    assert_eq!(bits(&model.predict_proba(&m)), base_posteriors);
    assert_eq!(model.nll(&m).unwrap().to_bits(), base_nll);
}

#[test]
fn thread_counts_beyond_chunk_count_are_harmless() {
    // 1500 rows = 2 chunks; asking for 64 workers must clamp, not hang
    // or diverge.
    let m = planted(1_500, 5, 3);
    let model = fit_with_threads(&m, 1_500, 1);
    assert_eq!(
        bits(&model.predict_proba_threads(&m, 64)),
        bits(&model.predict_proba_threads(&m, 1)),
    );
    let wide = param_bits(&fit_with_threads(&m, 1_500, 64));
    assert_eq!(wide, param_bits(&model));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The active-index (sparse) gradient path performs the same
    /// floating-point operations in the same order as the dense scan,
    /// so the two must agree bit-for-bit — on any matrix, dense or
    /// abstention-heavy, at any thread count.
    #[test]
    fn prop_active_and_dense_gradients_are_bitwise_equal(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1i8..=1, 4usize..=4),
            1..120,
        ),
        alphas in proptest::collection::vec(-1.5..1.5f64, 4usize..=4),
        betas in proptest::collection::vec(-1.5..1.5f64, 4usize..=4),
        eta in -1.0..1.0f64,
        l2 in 0.0..0.1f64,
    ) {
        let mut m = LabelMatrix::new(4);
        for row in &rows {
            m.push_raw_row(row).unwrap();
        }
        let mut model = GenerativeModel::new(4, 0.7);
        model.set_params(alphas, betas, eta);

        let dense = model.full_gradient_path(&m, l2, false, 1).unwrap();
        let active = model.full_gradient_path(&m, l2, true, 1).unwrap();
        prop_assert_eq!(bits(&dense), bits(&active));

        // And both paths are thread-count invariant.
        let dense4 = model.full_gradient_path(&m, l2, false, 4).unwrap();
        let active4 = model.full_gradient_path(&m, l2, true, 4).unwrap();
        prop_assert_eq!(bits(&dense), bits(&dense4));
        prop_assert_eq!(bits(&active), bits(&active4));
    }
}
