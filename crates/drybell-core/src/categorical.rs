//! Categorical extension of the generative model.
//!
//! §2 notes that DryBell "can handle arbitrary categorical targets as well,
//! e.g. `Y_i ∈ {1, ..., k}`". This module generalizes the binary model of
//! [`crate::generative`]: each LF still has one accuracy parameter `α_j`
//! (probability of voting the *true* class given it voted) and one
//! propensity parameter `β_j`, with the `k−1` wrong classes sharing the
//! error mass symmetrically. The per-LF normalizer becomes
//! `Z_j = log(e^{α+β} + (k−1)·e^{−α+β} + 1)` and training is the same
//! sampling-free analytic-gradient scheme.

// drybell-lint: allow-file(no-panic-index) — dense numeric kernel: loop bounds are derived from the matrix shape once and invariant; .get() in the inner loops would hide real shape bugs and cost the hot path

use crate::error::CoreError;
use crate::logsumexp;
use crate::optim::{OptimState, Optimizer};
use crate::vote::CatVote;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dense `m × n` matrix of categorical votes over `k` classes.
///
/// Entries are `0` (abstain) or a 1-based class id `1..=k`.
#[derive(Debug, Clone, PartialEq)]
pub struct CatLabelMatrix {
    data: Vec<u32>,
    num_lfs: usize,
    num_classes: u32,
}

impl CatLabelMatrix {
    /// Create an empty matrix for `num_lfs` LFs over `num_classes` classes.
    ///
    /// Returns an error unless `num_classes >= 2`.
    pub fn new(num_lfs: usize, num_classes: u32) -> Result<CatLabelMatrix, CoreError> {
        if num_classes < 2 {
            return Err(CoreError::BadConfig(
                "categorical model needs at least 2 classes".into(),
            ));
        }
        Ok(CatLabelMatrix {
            data: Vec::new(),
            num_lfs,
            num_classes,
        })
    }

    /// Append one example's votes.
    pub fn push_row(&mut self, votes: &[CatVote]) -> Result<(), CoreError> {
        if votes.len() != self.num_lfs {
            return Err(CoreError::RowArity {
                expected: self.num_lfs,
                got: votes.len(),
            });
        }
        for v in votes {
            if v.0 > self.num_classes {
                return Err(CoreError::InvalidVote {
                    value: i64::from(v.0),
                    expected: "0 (abstain) or 1..=k",
                });
            }
        }
        self.data.extend(votes.iter().map(|v| v.0));
        Ok(())
    }

    /// Number of examples.
    pub fn num_examples(&self) -> usize {
        self.data.len().checked_div(self.num_lfs).unwrap_or(0)
    }

    /// Number of labeling functions.
    pub fn num_lfs(&self) -> usize {
        self.num_lfs
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as raw class ids.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.num_lfs..(i + 1) * self.num_lfs]
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.data.chunks_exact(self.num_lfs)
    }
}

/// Training hyperparameters for the categorical model.
#[derive(Debug, Clone)]
pub struct CatTrainConfig {
    /// Number of mini-batch gradient steps.
    pub steps: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Update rule.
    pub optimizer: Optimizer,
    /// L2 penalty on `α` and `β`.
    pub l2: f64,
    /// Initial accuracy parameter.
    pub init_alpha: f64,
    /// RNG seed for batch order.
    pub seed: u64,
}

impl Default for CatTrainConfig {
    fn default() -> CatTrainConfig {
        CatTrainConfig {
            steps: 1500,
            batch_size: 64,
            optimizer: Optimizer::adam(0.05),
            l2: 1e-3,
            init_alpha: 0.7,
            seed: 0,
        }
    }
}

/// The k-class conditionally-independent generative label model.
#[derive(Debug, Clone)]
pub struct CategoricalModel {
    alpha: Vec<f64>,
    beta: Vec<f64>,
    num_classes: u32,
}

impl CategoricalModel {
    /// Create a model for `num_lfs` LFs over `num_classes >= 2` classes.
    pub fn new(
        num_lfs: usize,
        num_classes: u32,
        init_alpha: f64,
    ) -> Result<CategoricalModel, CoreError> {
        if num_classes < 2 {
            return Err(CoreError::BadConfig(
                "categorical model needs at least 2 classes".into(),
            ));
        }
        Ok(CategoricalModel {
            alpha: vec![init_alpha; num_lfs],
            beta: vec![0.0; num_lfs],
            num_classes,
        })
    }

    /// Directly set parameters (tests).
    pub fn set_params(&mut self, alpha: Vec<f64>, beta: Vec<f64>) {
        assert_eq!(alpha.len(), beta.len());
        self.alpha = alpha;
        self.beta = beta;
    }

    /// Learned accuracy `P(λ_j = Y | λ_j ≠ 0) = A / (A + (k−1)B)`.
    pub fn learned_accuracies(&self) -> Vec<f64> {
        let km1 = f64::from(self.num_classes - 1);
        self.alpha
            .iter()
            .zip(&self.beta)
            .map(|(&a, &b)| {
                let big_a = (a + b).exp();
                let big_b = (-a + b).exp();
                big_a / (big_a + km1 * big_b)
            })
            .collect()
    }

    /// `(Z_j, ∂Z/∂α_j, ∂Z/∂β_j)` for all LFs.
    fn z_terms(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>, f64) {
        let km1 = f64::from(self.num_classes - 1);
        let n = self.alpha.len();
        let (mut z, mut da, mut db) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let mut sum_z = 0.0;
        for (&a, &b) in self.alpha.iter().zip(&self.beta) {
            let big_a = (a + b).exp();
            let big_b = (-a + b).exp();
            let d = big_a + km1 * big_b + 1.0;
            let zj = d.ln();
            sum_z += zj;
            z.push(zj);
            da.push((big_a - km1 * big_b) / d);
            db.push((big_a + km1 * big_b) / d);
        }
        (z, da, db, sum_z)
    }

    /// Posterior `P(Y_i = y | Λ_i)` for every class, for one row.
    pub fn posterior(&self, row: &[u32]) -> Vec<f64> {
        let k = self.num_classes as usize;
        // Scores relative to a base: s(y) = Σ_{j active} (±α_j) + const.
        // Only the α terms differ across y, so work with those.
        let mut scores = vec![0.0f64; k];
        for (j, &l) in row.iter().enumerate() {
            if l != 0 {
                for (y, s) in scores.iter_mut().enumerate() {
                    if (y + 1) as u32 == l {
                        *s += self.alpha[j];
                    } else {
                        *s -= self.alpha[j];
                    }
                }
            }
        }
        let lse = logsumexp(&scores);
        scores.iter().map(|s| (s - lse).exp()).collect()
    }

    /// Posteriors for every row: `m × k` row-major.
    pub fn predict_proba(&self, m: &CatLabelMatrix) -> Vec<Vec<f64>> {
        m.rows().map(|row| self.posterior(row)).collect()
    }

    /// Mean per-example negative marginal log-likelihood (uniform prior).
    pub fn nll(&self, m: &CatLabelMatrix) -> Result<f64, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        let k = self.num_classes as usize;
        let (_, _, _, sum_z) = self.z_terms();
        let log_prior = -(k as f64).ln();
        let mut total = 0.0;
        let mut scores = vec![0.0f64; k];
        for row in m.rows() {
            scores.iter_mut().for_each(|s| *s = log_prior - sum_z);
            let mut beta_sum = 0.0;
            for (j, &l) in row.iter().enumerate() {
                if l != 0 {
                    beta_sum += self.beta[j];
                    for (y, s) in scores.iter_mut().enumerate() {
                        if (y + 1) as u32 == l {
                            *s += self.alpha[j];
                        } else {
                            *s -= self.alpha[j];
                        }
                    }
                }
            }
            scores.iter_mut().for_each(|s| *s += beta_sum);
            total -= logsumexp(&scores);
        }
        Ok(total / m.num_examples() as f64)
    }

    /// Mean NLL gradient over the given row indices.
    /// Layout: `[∂α.., ∂β..]`.
    fn grad_batch(&self, m: &CatLabelMatrix, batch: &[usize], l2: f64, grad: &mut [f64]) {
        let n = self.alpha.len();
        grad.iter_mut().for_each(|g| *g = 0.0);
        let (_, dz_da, dz_db, _) = self.z_terms();
        for &i in batch {
            let row = m.row(i);
            let post = self.posterior(row);
            for (j, &l) in row.iter().enumerate() {
                if l != 0 {
                    let p_vote = post[(l - 1) as usize];
                    grad[j] -= 2.0 * p_vote - 1.0;
                    grad[n + j] -= 1.0;
                }
            }
        }
        let bsz = batch.len() as f64;
        for j in 0..n {
            grad[j] += bsz * dz_da[j];
            grad[n + j] += bsz * dz_db[j];
        }
        for g in grad.iter_mut() {
            *g /= bsz;
        }
        for j in 0..n {
            grad[j] += l2 * self.alpha[j];
            grad[n + j] += l2 * self.beta[j];
        }
    }

    /// Full-data mean gradient (for gradient checks).
    pub fn full_gradient(&self, m: &CatLabelMatrix, l2: f64) -> Vec<f64> {
        let idx: Vec<usize> = (0..m.num_examples()).collect();
        let mut grad = vec![0.0; 2 * self.alpha.len()];
        self.grad_batch(m, &idx, l2, &mut grad);
        grad
    }

    /// Fit by mini-batch gradient descent on the marginal NLL.
    pub fn fit(&mut self, m: &CatLabelMatrix, cfg: &CatTrainConfig) -> Result<f64, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        if m.num_lfs() != self.alpha.len() || m.num_classes() != self.num_classes {
            return Err(CoreError::LengthMismatch {
                left: m.num_lfs(),
                right: self.alpha.len(),
            });
        }
        if cfg.batch_size == 0 {
            return Err(CoreError::BadConfig("batch_size must be > 0".into()));
        }
        self.alpha.iter_mut().for_each(|a| *a = cfg.init_alpha);
        self.beta.iter_mut().for_each(|b| *b = 0.0);
        let n = self.alpha.len();
        let mut params = vec![0.0; 2 * n];
        let mut grad = vec![0.0; 2 * n];
        let mut opt = OptimState::new(cfg.optimizer, 2 * n);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..m.num_examples()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        for step in 0..cfg.steps {
            let mut batch = Vec::with_capacity(cfg.batch_size);
            for _ in 0..cfg.batch_size.min(order.len()) {
                if cursor == order.len() {
                    order.shuffle(&mut rng);
                    cursor = 0;
                }
                batch.push(order[cursor]);
                cursor += 1;
            }
            self.grad_batch(m, &batch, cfg.l2, &mut grad);
            params[..n].copy_from_slice(&self.alpha);
            params[n..].copy_from_slice(&self.beta);
            opt.step(&mut params, &grad);
            if params.iter().any(|p| !p.is_finite()) {
                return Err(CoreError::Diverged { step });
            }
            self.alpha.copy_from_slice(&params[..n]);
            self.beta.copy_from_slice(&params[n..]);
        }
        self.nll(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn brute_force_nll(m: &CatLabelMatrix, alpha: &[f64], beta: &[f64]) -> f64 {
        let k = m.num_classes();
        let km1 = f64::from(k - 1);
        let mut total = 0.0;
        for row in m.rows() {
            let mut marginal = 0.0;
            for y in 1..=k {
                let mut p = 1.0 / f64::from(k);
                for (j, &l) in row.iter().enumerate() {
                    let big_a = (alpha[j] + beta[j]).exp();
                    let big_b = (-alpha[j] + beta[j]).exp();
                    let d = big_a + km1 * big_b + 1.0;
                    p *= if l == 0 {
                        1.0 / d
                    } else if l == y {
                        big_a / d
                    } else {
                        big_b / d
                    };
                }
                marginal += p;
            }
            total -= marginal.ln();
        }
        total / m.num_examples() as f64
    }

    fn random_cat(mexamples: usize, n: usize, k: u32, seed: u64) -> CatLabelMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = CatLabelMatrix::new(n, k).unwrap();
        for _ in 0..mexamples {
            let row: Vec<CatVote> = (0..n).map(|_| CatVote(rng.gen_range(0..=k))).collect();
            m.push_row(&row).unwrap();
        }
        m
    }

    #[test]
    fn nll_matches_brute_force() {
        let m = random_cat(30, 4, 3, 5);
        let mut model = CategoricalModel::new(4, 3, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let alpha: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.5)).collect();
        let beta: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        model.set_params(alpha.clone(), beta.clone());
        let fast = model.nll(&m).unwrap();
        let slow = brute_force_nll(&m, &alpha, &beta);
        assert!((fast - slow).abs() < 1e-10, "{fast} vs {slow}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = random_cat(20, 3, 4, 8);
        let mut model = CategoricalModel::new(3, 4, 0.0).unwrap();
        let alpha = vec![0.6, -0.3, 0.2];
        let beta = vec![0.1, 0.4, -0.5];
        model.set_params(alpha.clone(), beta.clone());
        let l2 = 0.02;
        let grad = model.full_gradient(&m, l2);
        let h = 1e-6;
        let f = |al: &[f64], be: &[f64]| {
            let l2_term: f64 = al.iter().chain(be).map(|p| 0.5 * l2 * p * p).sum();
            brute_force_nll(&m, al, be) + l2_term
        };
        for j in 0..3 {
            let mut ap = alpha.clone();
            ap[j] += h;
            let mut am = alpha.clone();
            am[j] -= h;
            let fd = (f(&ap, &beta) - f(&am, &beta)) / (2.0 * h);
            assert!(
                (grad[j] - fd).abs() < 1e-5,
                "alpha[{j}]: {} vs {fd}",
                grad[j]
            );
            let mut bp = beta.clone();
            bp[j] += h;
            let mut bm = beta.clone();
            bm[j] -= h;
            let fd = (f(&alpha, &bp) - f(&alpha, &bm)) / (2.0 * h);
            assert!(
                (grad[3 + j] - fd).abs() < 1e-5,
                "beta[{j}]: {} vs {fd}",
                grad[3 + j]
            );
        }
    }

    #[test]
    fn recovers_planted_accuracies_k4() {
        let k = 4u32;
        let accs = [0.85, 0.7, 0.9];
        let props = [0.8, 0.9, 0.6];
        let mut rng = StdRng::seed_from_u64(33);
        let mut m = CatLabelMatrix::new(3, k).unwrap();
        let mut gold = Vec::new();
        for _ in 0..8000 {
            let y = rng.gen_range(1..=k);
            let row: Vec<CatVote> = accs
                .iter()
                .zip(&props)
                .map(|(&a, &p)| {
                    if !rng.gen_bool(p) {
                        CatVote::ABSTAIN
                    } else if rng.gen_bool(a) {
                        CatVote(y)
                    } else {
                        // Uniform over wrong classes.
                        let mut w = rng.gen_range(1..=k - 1);
                        if w >= y {
                            w += 1;
                        }
                        CatVote(w)
                    }
                })
                .collect();
            m.push_row(&row).unwrap();
            gold.push(y);
        }
        let mut model = CategoricalModel::new(3, k, 0.7).unwrap();
        let cfg = CatTrainConfig {
            steps: 3000,
            ..CatTrainConfig::default()
        };
        model.fit(&m, &cfg).unwrap();
        for (j, (&la, &ta)) in model.learned_accuracies().iter().zip(&accs).enumerate() {
            assert!((la - ta).abs() < 0.08, "LF {j}: {la:.3} vs {ta:.3}");
        }
        // Posterior argmax should predict gold well.
        let correct = m
            .rows()
            .zip(&gold)
            .filter(|(row, &y)| {
                let post = model.posterior(row);
                let argmax = post
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0 as u32
                    + 1;
                argmax == y
            })
            .count() as f64
            / gold.len() as f64;
        assert!(correct > 0.85, "posterior accuracy {correct:.3}");
    }

    #[test]
    fn k2_posterior_agrees_with_binary_model() {
        use crate::generative::GenerativeModel;
        let alpha = vec![0.8, 0.3];
        let beta = vec![0.2, -0.1];
        let mut cat = CategoricalModel::new(2, 2, 0.0).unwrap();
        cat.set_params(alpha.clone(), beta.clone());
        let mut bin = GenerativeModel::new(2, 0.0);
        bin.set_params(alpha, beta, 0.0);
        // Class 1 ↔ +1, class 2 ↔ −1.
        let cases: [([u32; 2], [i8; 2]); 4] = [
            ([1, 2], [1, -1]),
            ([1, 0], [1, 0]),
            ([2, 2], [-1, -1]),
            ([0, 0], [0, 0]),
        ];
        for (crow, brow) in cases {
            let pc = cat.posterior(&crow)[0];
            let pb = bin.posterior(&brow);
            assert!((pc - pb).abs() < 1e-10, "{pc} vs {pb}");
        }
    }

    #[test]
    fn matrix_validation() {
        assert!(CatLabelMatrix::new(2, 1).is_err());
        let mut m = CatLabelMatrix::new(2, 3).unwrap();
        assert!(m.push_row(&[CatVote(1)]).is_err());
        assert!(m.push_row(&[CatVote(4), CatVote(0)]).is_err());
        assert!(m.push_row(&[CatVote(3), CatVote(0)]).is_ok());
        assert_eq!(m.num_examples(), 1);
    }
}
