//! The observed label matrix `Λ`.
//!
//! `Λ[i][j] = λ_j(X_i)` holds the vote of labeling function `j` on example
//! `i`. The matrix is the *only* input to the generative model: per §2 of the
//! paper, accuracies are learned purely from the agreements and disagreements
//! recorded here, with the true labels marginalized out.
//!
//! Storage is dense row-major `i8` (`+1`/`-1`/`0`), which at the paper's
//! largest scale (6.5M examples × 8 LFs) is ~52 MB — comfortably in memory
//! and friendly to the sequential scans the trainer performs.

// drybell-lint: allow-file(no-panic-index) — dense numeric kernel: loop bounds are derived from the matrix shape once and invariant; .get() in the inner loops would hide real shape bugs and cost the hot path

use crate::error::CoreError;
use crate::vote::{Label, Vote};

/// A dense `m × n` matrix of binary LF votes (`m` examples, `n` LFs).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelMatrix {
    data: Vec<i8>,
    num_lfs: usize,
}

impl LabelMatrix {
    /// Create an empty matrix for `num_lfs` labeling functions.
    pub fn new(num_lfs: usize) -> LabelMatrix {
        LabelMatrix {
            data: Vec::new(),
            num_lfs,
        }
    }

    /// Create an empty matrix with capacity reserved for `rows` examples.
    pub fn with_capacity(num_lfs: usize, rows: usize) -> LabelMatrix {
        LabelMatrix {
            data: Vec::with_capacity(num_lfs * rows),
            num_lfs,
        }
    }

    /// Build a matrix from per-example vote rows.
    ///
    /// Every row must have exactly `num_lfs` entries.
    pub fn from_rows(num_lfs: usize, rows: &[Vec<Vote>]) -> Result<LabelMatrix, CoreError> {
        let mut m = LabelMatrix::with_capacity(num_lfs, rows.len());
        for row in rows {
            m.push_row(row)?;
        }
        Ok(m)
    }

    /// Build a matrix from raw `i8` votes in row-major order.
    ///
    /// Returns [`CoreError::ZeroLabelingFunctions`] for `num_lfs == 0`
    /// (previously misreported as a row-arity error with a meaningless
    /// `got` computed modulo 1), and an error if the data length is not a
    /// multiple of `num_lfs` or any value is outside `{-1, 0, +1}`.
    pub fn from_raw(num_lfs: usize, data: Vec<i8>) -> Result<LabelMatrix, CoreError> {
        if num_lfs == 0 {
            return Err(CoreError::ZeroLabelingFunctions);
        }
        if !data.len().is_multiple_of(num_lfs) {
            return Err(CoreError::RowArity {
                expected: num_lfs,
                got: data.len() % num_lfs,
            });
        }
        if let Some(&bad) = data.iter().find(|v| !(-1..=1).contains(*v)) {
            return Err(CoreError::InvalidVote {
                value: bad as i64,
                expected: "-1, 0, or +1",
            });
        }
        Ok(LabelMatrix { data, num_lfs })
    }

    /// Append one example's votes.
    pub fn push_row(&mut self, votes: &[Vote]) -> Result<(), CoreError> {
        if votes.len() != self.num_lfs {
            return Err(CoreError::RowArity {
                expected: self.num_lfs,
                got: votes.len(),
            });
        }
        self.data.extend(votes.iter().map(|v| v.as_i8()));
        Ok(())
    }

    /// Append one example's votes already encoded as `i8`.
    pub fn push_raw_row(&mut self, votes: &[i8]) -> Result<(), CoreError> {
        if votes.len() != self.num_lfs {
            return Err(CoreError::RowArity {
                expected: self.num_lfs,
                got: votes.len(),
            });
        }
        if let Some(&bad) = votes.iter().find(|v| !(-1..=1).contains(*v)) {
            return Err(CoreError::InvalidVote {
                value: bad as i64,
                expected: "-1, 0, or +1",
            });
        }
        self.data.extend_from_slice(votes);
        Ok(())
    }

    /// Number of examples (rows).
    #[inline]
    pub fn num_examples(&self) -> usize {
        self.data.len().checked_div(self.num_lfs).unwrap_or(0)
    }

    /// Number of labeling functions (columns).
    #[inline]
    pub fn num_lfs(&self) -> usize {
        self.num_lfs
    }

    /// `true` if the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The votes of row `i` as raw `i8` values.
    #[inline]
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.num_lfs..(i + 1) * self.num_lfs]
    }

    /// Vote of LF `j` on example `i`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i8 {
        self.data[i * self.num_lfs + j]
    }

    /// Iterate over rows as `&[i8]` slices.
    pub fn rows(&self) -> impl Iterator<Item = &[i8]> + '_ {
        self.data.chunks_exact(self.num_lfs)
    }

    /// A view of the underlying row-major data.
    pub fn raw(&self) -> &[i8] {
        &self.data
    }

    /// Project the matrix onto a subset of LF columns (for ablations such as
    /// Table 3's "servable LFs only"). `keep[j]` selects column `j`.
    pub fn select_columns(&self, keep: &[bool]) -> Result<LabelMatrix, CoreError> {
        if keep.len() != self.num_lfs {
            return Err(CoreError::LengthMismatch {
                left: keep.len(),
                right: self.num_lfs,
            });
        }
        let kept: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter_map(|(j, &k)| k.then_some(j))
            .collect();
        let mut out = LabelMatrix::with_capacity(kept.len(), self.num_examples());
        for row in self.rows() {
            for &j in &kept {
                out.data.push(row[j]);
            }
        }
        Ok(out)
    }

    /// Concatenate another matrix's rows below this one's.
    pub fn extend_rows(&mut self, other: &LabelMatrix) -> Result<(), CoreError> {
        if other.num_lfs != self.num_lfs {
            return Err(CoreError::RowArity {
                expected: self.num_lfs,
                got: other.num_lfs,
            });
        }
        self.data.extend_from_slice(&other.data);
        Ok(())
    }

    /// Fraction of examples on which LF `j` does not abstain.
    pub fn coverage(&self, j: usize) -> f64 {
        if self.num_examples() == 0 {
            return 0.0;
        }
        let active = self.rows().filter(|r| r[j] != 0).count();
        active as f64 / self.num_examples() as f64
    }

    /// Fraction of examples where LF `j` votes and at least one other LF also
    /// votes (Snorkel's "overlap" statistic).
    pub fn overlap(&self, j: usize) -> f64 {
        if self.num_examples() == 0 {
            return 0.0;
        }
        let n = self
            .rows()
            .filter(|r| r[j] != 0 && r.iter().enumerate().any(|(k, &v)| k != j && v != 0))
            .count();
        n as f64 / self.num_examples() as f64
    }

    /// Fraction of examples where LF `j` votes and at least one other LF
    /// votes *differently* (Snorkel's "conflict" statistic).
    pub fn conflict(&self, j: usize) -> f64 {
        if self.num_examples() == 0 {
            return 0.0;
        }
        let n = self
            .rows()
            .filter(|r| {
                r[j] != 0
                    && r.iter()
                        .enumerate()
                        .any(|(k, &v)| k != j && v != 0 && v != r[j])
            })
            .count();
        n as f64 / self.num_examples() as f64
    }

    /// Fraction of examples with at least one non-abstain vote.
    pub fn label_density(&self) -> f64 {
        if self.num_examples() == 0 {
            return 0.0;
        }
        let n = self.rows().filter(|r| r.iter().any(|&v| v != 0)).count();
        n as f64 / self.num_examples() as f64
    }

    /// Empirical accuracy of LF `j` against gold labels, over the examples
    /// where it does not abstain. Returns `None` if it always abstained.
    pub fn empirical_accuracy(&self, j: usize, gold: &[Label]) -> Result<Option<f64>, CoreError> {
        if gold.len() != self.num_examples() {
            return Err(CoreError::LengthMismatch {
                left: gold.len(),
                right: self.num_examples(),
            });
        }
        let mut active = 0usize;
        let mut correct = 0usize;
        for (row, y) in self.rows().zip(gold) {
            if row[j] != 0 {
                active += 1;
                if row[j] == y.as_i8() {
                    correct += 1;
                }
            }
        }
        Ok((active > 0).then(|| correct as f64 / active as f64))
    }

    /// Empirical non-abstain propensity of each LF.
    pub fn propensities(&self) -> Vec<f64> {
        (0..self.num_lfs).map(|j| self.coverage(j)).collect()
    }

    /// Fraction of matrix cells holding a non-abstain vote (`nnz / m·n`).
    ///
    /// Distinct from [`LabelMatrix::label_density`], which is the fraction
    /// of *rows* with at least one vote. The trainer uses cell density to
    /// decide whether the active-index gradient path pays off.
    pub fn vote_density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nnz = self.data.iter().filter(|&&v| v != 0).count();
        nnz as f64 / self.data.len() as f64
    }

    /// Build the compressed active (non-abstain) index of this matrix.
    pub fn active_index(&self) -> ActiveRows {
        let mut offsets = Vec::with_capacity(self.num_examples() + 1);
        let mut entries = Vec::new();
        offsets.push(0);
        for row in self.rows() {
            for (j, &l) in row.iter().enumerate() {
                if l != 0 {
                    // Columns fit in u32: a row with 2^32 i8 votes would
                    // already exceed 4 GB of matrix storage.
                    entries.push((j as u32, l));
                }
            }
            offsets.push(entries.len());
        }
        ActiveRows { offsets, entries }
    }
}

/// A compressed (CSR-style) index of the non-abstain entries of a
/// [`LabelMatrix`]: for each row, the `(column, vote)` pairs with a
/// non-zero vote, in column order.
///
/// The generative trainer builds this once per `fit` and iterates it in
/// the gradient inner loops, so high-abstention matrices skip their zero
/// cells entirely. Because the per-row entries preserve column order,
/// accumulating over them performs the *same floating-point operations
/// in the same order* as a dense scan that tests `!= 0` — the two paths
/// are bit-identical, which a proptest asserts.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveRows {
    /// `offsets[i]..offsets[i+1]` bounds row `i`'s slice of `entries`.
    offsets: Vec<usize>,
    /// `(column, vote)` pairs of every non-abstain cell, row-major.
    entries: Vec<(u32, i8)>,
}

impl ActiveRows {
    /// Non-abstain `(column, vote)` pairs of row `i`, in column order.
    #[inline]
    pub fn row(&self, i: usize) -> &[(u32, i8)] {
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of indexed rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total non-abstain entries across all rows.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabelMatrix {
        // 4 examples, 3 LFs.
        LabelMatrix::from_raw(3, vec![1, -1, 0, 1, 1, 1, 0, 0, -1, -1, 0, -1]).unwrap()
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.num_examples(), 4);
        assert_eq!(m.num_lfs(), 3);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(2, 2), -1);
        assert_eq!(m.row(1), &[1, 1, 1]);
    }

    #[test]
    fn push_row_checks_arity() {
        let mut m = LabelMatrix::new(2);
        assert!(m.push_row(&[Vote::Positive, Vote::Abstain]).is_ok());
        let err = m.push_row(&[Vote::Positive]).unwrap_err();
        assert_eq!(
            err,
            CoreError::RowArity {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn from_raw_rejects_bad_votes() {
        assert!(matches!(
            LabelMatrix::from_raw(2, vec![1, 2]),
            Err(CoreError::InvalidVote { value: 2, .. })
        ));
        assert!(matches!(
            LabelMatrix::from_raw(2, vec![1, 0, 1]),
            Err(CoreError::RowArity { .. })
        ));
    }

    #[test]
    fn from_raw_zero_lfs_is_a_dedicated_error() {
        // Regression: this used to surface as `RowArity { expected: 0,
        // got: data.len() % 1 }` — an arity "mismatch" of 0 vs 0.
        assert_eq!(
            LabelMatrix::from_raw(0, vec![]),
            Err(CoreError::ZeroLabelingFunctions)
        );
        assert_eq!(
            LabelMatrix::from_raw(0, vec![1, 0, -1]),
            Err(CoreError::ZeroLabelingFunctions)
        );
    }

    #[test]
    fn active_index_matches_dense_scan() {
        let m = sample();
        let ix = m.active_index();
        assert_eq!(ix.num_rows(), m.num_examples());
        let mut nnz = 0;
        for (i, row) in m.rows().enumerate() {
            let dense: Vec<(u32, i8)> = row
                .iter()
                .enumerate()
                .filter(|(_, &l)| l != 0)
                .map(|(j, &l)| (j as u32, l))
                .collect();
            assert_eq!(ix.row(i), dense.as_slice(), "row {i}");
            nnz += dense.len();
        }
        assert_eq!(ix.nnz(), nnz);
        // 4×3 sample has 8 non-abstain cells.
        assert!((m.vote_density() - 8.0 / 12.0).abs() < 1e-12);
        assert_eq!(LabelMatrix::new(3).vote_density(), 0.0);
    }

    #[test]
    fn coverage_overlap_conflict() {
        let m = sample();
        // LF 0 votes on rows 0,1,3 → coverage 3/4.
        assert!((m.coverage(0) - 0.75).abs() < 1e-12);
        // LF 2 votes on rows 1,2,3 → coverage 3/4.
        assert!((m.coverage(2) - 0.75).abs() < 1e-12);
        // LF 0 overlap: rows 0 (LF1 votes), 1 (both), 3 (LF2 votes) → 3/4.
        assert!((m.overlap(0) - 0.75).abs() < 1e-12);
        // LF 0 conflict: row 0 (LF1 = -1 vs +1) only → 1/4.
        assert!((m.conflict(0) - 0.25).abs() < 1e-12);
        // Density: every row has a vote.
        assert!((m.label_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_accuracy_against_gold() {
        let m = sample();
        let gold = vec![
            Label::Positive,
            Label::Positive,
            Label::Negative,
            Label::Negative,
        ];
        // LF0: votes +1,+1,-1 on rows 0,1,3 — all correct.
        assert_eq!(m.empirical_accuracy(0, &gold).unwrap(), Some(1.0));
        // LF1: votes -1 (row 0, wrong), +1 (row 1, right) → 0.5.
        assert_eq!(m.empirical_accuracy(1, &gold).unwrap(), Some(0.5));
        // Gold length mismatch is rejected.
        assert!(m.empirical_accuracy(0, &gold[..2]).is_err());
    }

    #[test]
    fn empirical_accuracy_all_abstain_is_none() {
        let m = LabelMatrix::from_raw(2, vec![0, 1, 0, -1]).unwrap();
        let gold = vec![Label::Positive, Label::Negative];
        assert_eq!(m.empirical_accuracy(0, &gold).unwrap(), None);
    }

    #[test]
    fn select_columns_projects() {
        let m = sample();
        let sub = m.select_columns(&[true, false, true]).unwrap();
        assert_eq!(sub.num_lfs(), 2);
        assert_eq!(sub.row(0), &[1, 0]);
        assert_eq!(sub.row(3), &[-1, -1]);
        assert!(m.select_columns(&[true]).is_err());
    }

    #[test]
    fn extend_rows_concatenates() {
        let mut a = sample();
        let b = sample();
        a.extend_rows(&b).unwrap();
        assert_eq!(a.num_examples(), 8);
        assert_eq!(a.row(4), b.row(0));
        let mut c = LabelMatrix::new(2);
        assert!(c.extend_rows(&b).is_err());
    }
}
