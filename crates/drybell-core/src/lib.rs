//! # drybell-core
//!
//! The core of the Snorkel DryBell weak-supervision pipeline: data types for
//! labeling-function (LF) votes, the observed label matrix `Λ`, and the
//! **sampling-free generative label model** of Bach et al. (SIGMOD 2019, §5.2)
//! that combines noisy LF votes into probabilistic training labels.
//!
//! The pipeline implemented here follows the three Snorkel stages:
//!
//! 1. labeling functions vote on unlabeled examples (see `drybell-lf` for the
//!    template library; this crate only defines the vote/matrix types),
//! 2. a generative model estimates per-LF accuracies from agreements and
//!    disagreements alone — no ground truth — by minimizing the negative
//!    marginal log-likelihood `-log P(Λ)` with analytic (sampling-free)
//!    gradients,
//! 3. the model's posteriors `P(Y_i | Λ_i)` become confidence-weighted
//!    training labels for a downstream discriminative model (`drybell-ml`).
//!
//! Two trainers are provided for the paper's §5.2 comparison:
//!
//! * [`generative::GenerativeModel`] — the DryBell approach: exact analytic
//!   gradients of the marginal likelihood (what the paper implements as a
//!   static TensorFlow graph), optimized with SGD or Adam.
//! * [`gibbs::GibbsTrainer`] — the open-source Snorkel baseline: a Gibbs
//!   sampler over the latent labels driving stochastic gradient steps.
//!
//! Baseline combiners the paper evaluates against (unweighted average,
//! logical OR, majority vote) live in [`baselines`].
//!
//! ## Example
//!
//! Denoise three noisy voters without any ground truth:
//!
//! ```
//! use drybell_core::{GenerativeModel, LabelMatrix, TrainConfig};
//!
//! // Rows are examples, columns are labeling functions (+1 / -1 / 0).
//! let mut matrix = LabelMatrix::new(3);
//! for _ in 0..200 {
//!     matrix.push_raw_row(&[1, 1, 0]).unwrap();   // positives: LFs agree
//!     matrix.push_raw_row(&[-1, -1, -1]).unwrap() // negatives
//! }
//! matrix.push_raw_row(&[1, -1, 0]).unwrap();      // a conflict
//!
//! let mut model = GenerativeModel::new(3, 0.7);
//! let cfg = TrainConfig { steps: 300, batch_size: 32, ..TrainConfig::default() };
//! model.fit(&matrix, &cfg).unwrap();
//!
//! // Accuracies are learned from agreement structure alone.
//! assert!(model.learned_accuracies().iter().all(|&a| a > 0.5));
//! // Posteriors become probabilistic training labels.
//! let labels = model.predict_proba(&matrix);
//! assert!(labels[0] > 0.9 && labels[1] < 0.1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod baselines;
pub mod categorical;
pub mod class_conditional;
pub mod dependencies;
pub mod error;
pub mod generative;
pub mod gibbs;
pub mod matrix;
pub mod optim;
pub mod parallel;
pub mod vote;

pub use analysis::{LfReport, LfSummary};
pub use class_conditional::{CcTrainConfig, ClassConditionalModel};
pub use dependencies::{DependencyReport, PairDependency};
pub use error::CoreError;
pub use generative::{EpochStat, GenerativeModel, IncrementalState, TrainConfig, TrainReport};
pub use matrix::{ActiveRows, LabelMatrix};
pub use vote::Vote;

/// Numerically stable `log(exp(a) + exp(b))`.
#[inline]
pub fn logsumexp2(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        f64::NEG_INFINITY
    } else {
        hi + (lo - hi).exp().ln_1p()
    }
}

/// Numerically stable `log Σ exp(xs)` over a slice.
#[inline]
pub fn logsumexp(xs: &[f64]) -> f64 {
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|x| (x - hi).exp()).sum();
    hi + sum.ln()
}

/// The logistic sigmoid `1 / (1 + e^{-x})`, stable for large `|x|`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logsumexp2_matches_naive() {
        let a = 0.3_f64;
        let b = -1.2_f64;
        let naive = (a.exp() + b.exp()).ln();
        assert!((logsumexp2(a, b) - naive).abs() < 1e-12);
    }

    #[test]
    fn logsumexp2_handles_extremes() {
        assert_eq!(
            logsumexp2(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
        assert!((logsumexp2(1000.0, 1000.0) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert!((logsumexp2(-1000.0, 0.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn logsumexp_slice_matches_pairwise() {
        let xs = [0.1, -0.5, 2.0, 1.0];
        let mut acc = f64::NEG_INFINITY;
        for &x in &xs {
            acc = logsumexp2(acc, x);
        }
        assert!((logsumexp(&xs) - acc).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-3);
        for x in [-3.0, -0.7, 0.0, 0.2, 5.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }
}
