//! Baseline vote combiners the paper evaluates against.
//!
//! * **Equal weights** (Table 4): the probabilistic label is the unweighted
//!   average of the non-abstain votes, i.e. the generative model with all
//!   accuracies tied.
//! * **Logical OR** (§6.4, Figure 6): an example is positive if *any* LF
//!   votes positive — the pre-DryBell combination used for the real-time
//!   events application, which over-estimates scores.
//! * **Majority vote**: the classic tie-broken baseline, included for
//!   completeness and used by tests as a sanity reference.

use crate::matrix::LabelMatrix;

/// Equal-weight soft labels: `(1 + mean(active votes)) / 2`, or the given
/// `prior` where every LF abstained (Table 4's "Equal Weights" ablation).
pub fn equal_weight_labels(m: &LabelMatrix, prior: f64) -> Vec<f64> {
    m.rows()
        .map(|row| {
            let mut sum = 0i64;
            let mut active = 0i64;
            for &v in row {
                if v != 0 {
                    sum += i64::from(v);
                    active += 1;
                }
            }
            if active == 0 {
                prior
            } else {
                (1.0 + sum as f64 / active as f64) / 2.0
            }
        })
        .collect()
}

/// Logical-OR labels: `1.0` if any LF votes positive, else `0.0`
/// (§6.4's baseline weak supervision for the real-time events task).
pub fn logical_or_labels(m: &LabelMatrix) -> Vec<f64> {
    m.rows()
        .map(|row| if row.contains(&1) { 1.0 } else { 0.0 })
        .collect()
}

/// Hard majority-vote labels in `{-1, 0, +1}`; `0` means tie or all-abstain.
pub fn majority_vote(m: &LabelMatrix) -> Vec<i8> {
    m.rows()
        .map(|row| {
            let s: i64 = row.iter().map(|&v| i64::from(v)).sum();
            match s.cmp(&0) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat() -> LabelMatrix {
        LabelMatrix::from_raw(
            3,
            vec![
                1, 1, -1, // mean 1/3 -> 2/3
                0, 0, 0, // all abstain
                -1, -1, 0, // mean -1 -> 0
                1, 0, 0, // mean 1 -> 1
            ],
        )
        .unwrap()
    }

    #[test]
    fn equal_weights_average_active_votes() {
        let labels = equal_weight_labels(&mat(), 0.25);
        assert!((labels[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((labels[1] - 0.25).abs() < 1e-12, "abstain row uses prior");
        assert!((labels[2] - 0.0).abs() < 1e-12);
        assert!((labels[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logical_or_fires_on_any_positive() {
        let labels = logical_or_labels(&mat());
        assert_eq!(labels, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn majority_vote_breaks_ties_to_zero() {
        let m = LabelMatrix::from_raw(2, vec![1, -1, 1, 0, -1, -1]).unwrap();
        assert_eq!(majority_vote(&m), vec![0, 1, -1]);
    }
}
