//! Gibbs-sampling trainer: the open-source Snorkel baseline (§5.2).
//!
//! The OSS Snorkel implementation estimates the gradient of the marginal
//! likelihood with a Gibbs sampler over the latent labels `Y`: for each
//! example in a mini-batch it runs a short chain re-sampling
//! `Y_i ~ P(Y_i | Λ_i, w)`, averages the sampled labels, and plugs the
//! average into the complete-data gradient. The paper's point is that this
//! is "relatively CPU intensive and complicated to distribute" compared to
//! the sampling-free analytic gradient of [`crate::generative`]; this module
//! exists so the §5.2 comparison (steps/s vs examples/s, reported by
//! `exp_speed` in `drybell-bench`) can be measured on equal footing.
//!
//! Both trainers share the same parameter family ([`GenerativeModel`]), so
//! their learned accuracies and posteriors are directly comparable.

// drybell-lint: allow-file(no-panic-index) — dense numeric kernel: loop bounds are derived from the matrix shape once and invariant; .get() in the inner loops would hide real shape bugs and cost the hot path

use crate::error::CoreError;
use crate::generative::GenerativeModel;
use crate::matrix::LabelMatrix;
use crate::optim::{OptimState, Optimizer};
use crate::sigmoid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Hyperparameters for [`GibbsTrainer::fit`].
#[derive(Debug, Clone)]
pub struct GibbsConfig {
    /// Number of gradient steps (mini-batches).
    pub steps: usize,
    /// Mini-batch size (the paper benchmarks with 64).
    pub batch_size: usize,
    /// Burn-in chain transitions discarded per example before collecting.
    pub burn_in: usize,
    /// Chain samples of `Y_i` collected and averaged per example. OSS
    /// Snorkel defaults to a handful; more samples means lower-variance
    /// gradients at proportionally more CPU.
    pub samples: usize,
    /// Update rule applied to the sampled gradient.
    pub optimizer: Optimizer,
    /// L2 penalty toward 0 on `α` and `β`.
    pub l2: f64,
    /// Fixed class prior `P(Y=+1)`.
    pub class_prior: f64,
    /// Initial accuracy parameter.
    pub init_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GibbsConfig {
    fn default() -> GibbsConfig {
        GibbsConfig {
            steps: 1000,
            batch_size: 64,
            burn_in: 5,
            samples: 10,
            optimizer: Optimizer::adam(0.05),
            l2: 1e-3,
            class_prior: 0.5,
            init_alpha: 0.7,
            seed: 0,
        }
    }
}

/// Outcome of a Gibbs training run, with the throughput numbers §5.2 quotes.
#[derive(Debug, Clone)]
pub struct GibbsReport {
    /// Gradient steps taken.
    pub steps: usize,
    /// Total examples processed (`steps × batch_size`).
    pub examples: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Examples per second — the unit the paper reports for the sampler.
    pub examples_per_sec: f64,
    /// Gradient steps per second, for apples-to-apples with the
    /// sampling-free trainer.
    pub steps_per_sec: f64,
    /// Mean per-example NLL on the full matrix after training.
    pub final_nll: f64,
}

/// Trains a [`GenerativeModel`] with Gibbs-sampled gradients.
#[derive(Debug)]
pub struct GibbsTrainer {
    model: GenerativeModel,
}

impl GibbsTrainer {
    /// Create a trainer for `num_lfs` labeling functions.
    pub fn new(num_lfs: usize) -> GibbsTrainer {
        GibbsTrainer {
            model: GenerativeModel::new(num_lfs, 0.7),
        }
    }

    /// The trained model (same family as the sampling-free trainer).
    pub fn model(&self) -> &GenerativeModel {
        &self.model
    }

    /// Consume the trainer, returning the trained model.
    pub fn into_model(self) -> GenerativeModel {
        self.model
    }

    /// Fit by stochastic gradient descent with Gibbs-sampled label
    /// expectations.
    pub fn fit(&mut self, m: &LabelMatrix, cfg: &GibbsConfig) -> Result<GibbsReport, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        if m.num_lfs() != self.model.num_lfs() {
            return Err(CoreError::LengthMismatch {
                left: m.num_lfs(),
                right: self.model.num_lfs(),
            });
        }
        if cfg.batch_size == 0 || cfg.samples == 0 {
            return Err(CoreError::BadConfig(
                "batch_size and samples must be > 0".into(),
            ));
        }
        let n = m.num_lfs();
        let eta = (cfg.class_prior / (1.0 - cfg.class_prior)).ln();
        self.model
            .set_params(vec![cfg.init_alpha; n], vec![0.0; n], eta);

        let dim = 2 * n;
        let mut opt = OptimState::new(cfg.optimizer, dim);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..m.num_examples()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        let mut params = vec![0.0; dim];
        let mut grad = vec![0.0; dim];
        // Persistent chain state per example (contrastive-divergence style).
        let mut chain: Vec<i8> = (0..m.num_examples())
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();

        let start = Instant::now();
        for step in 0..cfg.steps {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut batch_count = 0usize;
            for _ in 0..cfg.batch_size.min(order.len()) {
                if cursor == order.len() {
                    order.shuffle(&mut rng);
                    cursor = 0;
                }
                let i = order[cursor];
                cursor += 1;
                batch_count += 1;
                let row = m.row(i);
                // Conditional P(Y_i = +1 | Λ_i, w): depends only on the
                // active-vote margin and the prior (the Z terms cancel).
                let mut margin = eta;
                for (j, &l) in row.iter().enumerate() {
                    if l != 0 {
                        margin += 2.0 * f64::from(l) * self.model.alphas()[j];
                    }
                }
                let p = sigmoid(margin);
                // Run the chain: burn-in, then collect.
                let mut y = chain[i];
                for _ in 0..cfg.burn_in {
                    y = if rng.gen_bool(p) { 1 } else { -1 };
                }
                let mut y_sum = 0i64;
                for _ in 0..cfg.samples {
                    y = if rng.gen_bool(p) { 1 } else { -1 };
                    y_sum += i64::from(y);
                }
                chain[i] = y;
                let y_bar = y_sum as f64 / cfg.samples as f64;
                // Complete-data gradient with the sampled E[Y]:
                // ∂NLL/∂α_j = ∂Z/∂α − ȳ·λ_ij ; ∂NLL/∂β_j = ∂Z/∂β − 1[λ≠0].
                for (j, &l) in row.iter().enumerate() {
                    if l != 0 {
                        grad[j] -= y_bar * f64::from(l);
                        grad[n + j] -= 1.0;
                    }
                }
            }
            // Batch-constant ∂Z terms.
            let (dz_da, dz_db) = z_partials(self.model.alphas(), self.model.betas());
            let bsz = batch_count as f64;
            for j in 0..n {
                grad[j] += bsz * dz_da[j];
                grad[n + j] += bsz * dz_db[j];
            }
            for g in grad.iter_mut() {
                *g /= bsz;
            }
            for j in 0..n {
                grad[j] += cfg.l2 * self.model.alphas()[j];
                grad[n + j] += cfg.l2 * self.model.betas()[j];
            }
            params[..n].copy_from_slice(self.model.alphas());
            params[n..].copy_from_slice(self.model.betas());
            opt.step(&mut params, &grad);
            if params.iter().any(|p| !p.is_finite()) {
                return Err(CoreError::Diverged { step });
            }
            self.model
                .set_params(params[..n].to_vec(), params[n..].to_vec(), eta);
        }
        let seconds = start.elapsed().as_secs_f64();
        let examples = cfg.steps * cfg.batch_size;
        Ok(GibbsReport {
            steps: cfg.steps,
            examples,
            seconds,
            examples_per_sec: examples as f64 / seconds.max(1e-12),
            steps_per_sec: cfg.steps as f64 / seconds.max(1e-12),
            final_nll: self.model.nll(m)?,
        })
    }
}

/// `(∂Z_j/∂α_j, ∂Z_j/∂β_j)` for all LFs.
fn z_partials(alpha: &[f64], beta: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut da = Vec::with_capacity(alpha.len());
    let mut db = Vec::with_capacity(alpha.len());
    for (&a, &b) in alpha.iter().zip(beta) {
        let ea = (a + b).exp();
        let eb = (-a + b).exp();
        let d = ea + eb + 1.0;
        da.push((ea - eb) / d);
        db.push((ea + eb) / d);
    }
    (da, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::Label;

    fn planted(m: usize, accs: &[f64], props: &[f64], seed: u64) -> (LabelMatrix, Vec<Label>) {
        let n = accs.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mat = LabelMatrix::with_capacity(n, m);
        let mut gold = Vec::with_capacity(m);
        for _ in 0..m {
            let y = if rng.gen_bool(0.5) {
                Label::Positive
            } else {
                Label::Negative
            };
            let row: Vec<i8> = (0..n)
                .map(|j| {
                    if !rng.gen_bool(props[j]) {
                        0
                    } else if rng.gen_bool(accs[j]) {
                        y.as_i8()
                    } else {
                        -y.as_i8()
                    }
                })
                .collect();
            mat.push_raw_row(&row).unwrap();
            gold.push(y);
        }
        (mat, gold)
    }

    #[test]
    fn gibbs_recovers_planted_accuracies() {
        let accs = [0.9, 0.7, 0.8];
        let props = [0.8, 0.8, 0.8];
        let (mat, _) = planted(4000, &accs, &props, 17);
        let mut trainer = GibbsTrainer::new(3);
        let cfg = GibbsConfig {
            steps: 2500,
            samples: 10,
            ..GibbsConfig::default()
        };
        let report = trainer.fit(&mat, &cfg).unwrap();
        assert!(report.final_nll.is_finite());
        let learned = trainer.model().learned_accuracies();
        for (j, (&la, &ta)) in learned.iter().zip(&accs).enumerate() {
            assert!(
                (la - ta).abs() < 0.1,
                "LF {j}: learned {la:.3} vs planted {ta:.3}"
            );
        }
    }

    #[test]
    fn gibbs_and_sampling_free_agree() {
        use crate::generative::TrainConfig;
        let accs = [0.85, 0.65, 0.9, 0.75];
        let props = [0.7, 0.9, 0.5, 0.8];
        let (mat, _) = planted(5000, &accs, &props, 3);
        let mut gibbs = GibbsTrainer::new(4);
        gibbs
            .fit(
                &mat,
                &GibbsConfig {
                    steps: 3000,
                    ..GibbsConfig::default()
                },
            )
            .unwrap();
        let mut sf = GenerativeModel::new(4, 0.7);
        sf.fit(
            &mat,
            &TrainConfig {
                steps: 3000,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        for (j, (a, b)) in gibbs
            .model()
            .learned_accuracies()
            .iter()
            .zip(sf.learned_accuracies())
            .enumerate()
        {
            assert!((a - b).abs() < 0.08, "LF {j}: gibbs {a:.3} vs exact {b:.3}");
        }
    }

    #[test]
    fn gibbs_validates_inputs() {
        let mat = LabelMatrix::from_raw(2, vec![1, 0, 0, -1]).unwrap();
        let mut t = GibbsTrainer::new(3);
        assert!(matches!(
            t.fit(&mat, &GibbsConfig::default()),
            Err(CoreError::LengthMismatch { .. })
        ));
        let mut t = GibbsTrainer::new(2);
        let bad = GibbsConfig {
            samples: 0,
            ..GibbsConfig::default()
        };
        assert!(matches!(t.fit(&mat, &bad), Err(CoreError::BadConfig(_))));
        let empty = LabelMatrix::new(2);
        assert!(matches!(
            t.fit(&empty, &GibbsConfig::default()),
            Err(CoreError::EmptyMatrix)
        ));
    }

    #[test]
    fn throughput_fields_are_consistent() {
        let (mat, _) = planted(500, &[0.8, 0.8], &[0.9, 0.9], 1);
        let mut t = GibbsTrainer::new(2);
        let cfg = GibbsConfig {
            steps: 100,
            batch_size: 32,
            ..GibbsConfig::default()
        };
        let r = t.fit(&mat, &cfg).unwrap();
        assert_eq!(r.examples, 3200);
        assert!((r.examples_per_sec / r.steps_per_sec - 32.0).abs() < 1e-6);
    }
}
