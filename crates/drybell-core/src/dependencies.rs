//! Labeling-function dependency diagnostics.
//!
//! The Snorkel line of work (Bach et al., ICML 2017 — reference [3] of
//! the paper) learns the *structure* of the generative model: which LFs
//! are correlated beyond what the latent class explains. DryBell's
//! deployed model assumes conditional independence (§5.2), so knowing
//! when that assumption is badly violated is an operational necessity —
//! two copies of the same heuristic silently count as two independent
//! votes.
//!
//! The screening statistic is the classical *triplet method* (the
//! method-of-moments identity behind Snorkel MeTaL). Let
//! `q_jk = 2·P(λ_j = λ_k | both vote) − 1` be the pair's agreement
//! correlation. Under conditional independence, `q_jk ≈ c_j·c_k` where
//! `c_j = 2·accuracy_j − 1`, and for any third LF `l`
//!
//! ```text
//! c_j² ≈ q_jk · q_jl / q_kl
//! ```
//!
//! so each `c_j` is identified from triplets that *exclude the pair under
//! test*. The excess `q_jk − c_j·c_k` is then immune to the pair gaming
//! its own marginals: duplicated heuristics show a large positive excess,
//! genuinely independent LFs sit near zero.

// drybell-lint: allow-file(no-panic-index) — dense numeric kernel: loop bounds are derived from the matrix shape once and invariant; .get() in the inner loops would hide real shape bugs and cost the hot path

use crate::error::CoreError;
use crate::matrix::LabelMatrix;

/// Excess-agreement statistics for one LF pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairDependency {
    /// First LF (column index).
    pub j: usize,
    /// Second LF.
    pub k: usize,
    /// Examples where both voted.
    pub co_votes: u64,
    /// Observed `P(votes agree | both voted)`.
    pub observed_agreement: f64,
    /// Agreement rate implied by conditional independence and the
    /// triplet-estimated per-LF correlations: `(1 + c_j·c_k) / 2`.
    pub expected_agreement: f64,
}

impl PairDependency {
    /// Observed minus expected agreement — the screening score.
    pub fn excess(&self) -> f64 {
        self.observed_agreement - self.expected_agreement
    }
}

/// Dependency screening over all LF pairs.
#[derive(Debug, Clone)]
pub struct DependencyReport {
    /// One entry per pair with at least `min_co_votes` usable examples,
    /// sorted by descending excess agreement.
    pub pairs: Vec<PairDependency>,
}

impl DependencyReport {
    /// Screen every LF pair of `matrix`.
    ///
    /// Pairs with fewer than `min_co_votes` co-voting examples are
    /// omitted (their agreement estimate is noise).
    pub fn build(matrix: &LabelMatrix, min_co_votes: u64) -> Result<DependencyReport, CoreError> {
        let n = matrix.num_lfs();
        if matrix.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        let pair_idx = |j: usize, k: usize| j * n + k;
        let mut co = vec![0u64; n * n];
        let mut agree_jk = vec![0u64; n * n];
        for row in matrix.rows() {
            let active: Vec<usize> = (0..n).filter(|&j| row[j] != 0).collect();
            for (a, &j) in active.iter().enumerate() {
                for &k in &active[a + 1..] {
                    let id = pair_idx(j, k);
                    co[id] += 1;
                    if row[j] == row[k] {
                        agree_jk[id] += 1;
                    }
                }
            }
        }
        // Agreement correlations q_jk = 2·P(agree | both vote) − 1.
        let min_co = min_co_votes.max(1);
        let q = |j: usize, k: usize| -> Option<f64> {
            let id = if j < k {
                pair_idx(j, k)
            } else {
                pair_idx(k, j)
            };
            (co[id] >= min_co).then(|| 2.0 * agree_jk[id] as f64 / co[id] as f64 - 1.0)
        };
        // Triplet estimates of c_j² = q_jk·q_jl / q_kl, median over all
        // usable (k, l) with the denominator bounded away from zero.
        let mut c = vec![0.0f64; n];
        #[allow(clippy::needless_range_loop)] // j also drives the k/l skip logic
        for j in 0..n {
            let mut estimates = Vec::new();
            for k in 0..n {
                if k == j {
                    continue;
                }
                for l in k + 1..n {
                    if l == j {
                        continue;
                    }
                    if let (Some(qjk), Some(qjl), Some(qkl)) = (q(j, k), q(j, l), q(k, l)) {
                        if qkl.abs() > 0.05 {
                            estimates.push((qjk * qjl / qkl).clamp(0.0, 1.0));
                        }
                    }
                }
            }
            if estimates.is_empty() {
                continue;
            }
            estimates.sort_by(f64::total_cmp);
            c[j] = estimates[estimates.len() / 2].sqrt();
        }
        let mut pairs = Vec::new();
        for j in 0..n {
            for k in j + 1..n {
                let id = pair_idx(j, k);
                if co[id] >= min_co {
                    let observed = agree_jk[id] as f64 / co[id] as f64;
                    pairs.push(PairDependency {
                        j,
                        k,
                        co_votes: co[id],
                        observed_agreement: observed,
                        expected_agreement: (1.0 + c[j] * c[k]) / 2.0,
                    });
                }
            }
        }
        pairs.sort_by(|a, b| {
            b.excess()
                .partial_cmp(&a.excess())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(DependencyReport { pairs })
    }

    /// Pairs whose excess agreement exceeds `threshold` — dependency
    /// candidates for review (fix, merge, or model explicitly).
    pub fn candidates(&self, threshold: f64) -> Vec<&PairDependency> {
        self.pairs
            .iter()
            .filter(|p| p.excess() > threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Five independent LFs plus one near-duplicate of LF 0 (six total,
    /// so the leave-pair-out consensus always has enough voters).
    fn planted_with_duplicate(examples: usize, seed: u64) -> LabelMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = LabelMatrix::with_capacity(6, examples);
        for _ in 0..examples {
            let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
            fn vote(rng: &mut StdRng, y: i8, acc: f64, prop: f64) -> i8 {
                if !rng.gen_bool(prop) {
                    0
                } else if rng.gen_bool(acc) {
                    y
                } else {
                    -y
                }
            }
            let v0 = vote(&mut rng, y, 0.8, 0.7);
            let v1 = vote(&mut rng, y, 0.75, 0.7);
            let v2 = vote(&mut rng, y, 0.85, 0.7);
            let v3 = vote(&mut rng, y, 0.7, 0.7);
            let v4 = vote(&mut rng, y, 0.8, 0.7);
            // LF 5 copies LF 0's vote 95% of the time LF 0 voted.
            let v5 = if v0 != 0 && rng.gen_bool(0.95) {
                v0
            } else {
                vote(&mut rng, y, 0.8, 0.3)
            };
            m.push_raw_row(&[v0, v1, v2, v3, v4, v5]).unwrap();
        }
        m
    }

    #[test]
    fn duplicate_lf_is_the_top_candidate() {
        let m = planted_with_duplicate(10_000, 1);
        let report = DependencyReport::build(&m, 50).unwrap();
        let top = &report.pairs[0];
        assert_eq!((top.j, top.k), (0, 5), "the planted duplicate pair");
        assert!(top.excess() > 0.15, "excess {}", top.excess());
        // Independent pairs have much lower excess.
        for p in &report.pairs[1..] {
            assert!(
                p.excess() < top.excess() - 0.1,
                "pair ({}, {}) excess {} too close to duplicate's {}",
                p.j,
                p.k,
                p.excess(),
                top.excess()
            );
        }
        let cands = report.candidates(0.15);
        assert_eq!(cands.len(), 1);
        assert_eq!((cands[0].j, cands[0].k), (0, 5));
    }

    #[test]
    fn independent_lfs_have_small_excess() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = LabelMatrix::with_capacity(5, 10_000);
        for _ in 0..10_000 {
            let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
            let row: Vec<i8> = [0.8, 0.7, 0.85, 0.75, 0.8]
                .iter()
                .map(|&acc| {
                    if !rng.gen_bool(0.6) {
                        0
                    } else if rng.gen_bool(acc) {
                        y
                    } else {
                        -y
                    }
                })
                .collect();
            m.push_raw_row(&row).unwrap();
        }
        let report = DependencyReport::build(&m, 50).unwrap();
        for p in &report.pairs {
            assert!(
                p.excess().abs() < 0.06,
                "pair ({}, {}) excess {}",
                p.j,
                p.k,
                p.excess()
            );
        }
        assert!(report.candidates(0.1).is_empty());
    }

    #[test]
    fn min_co_votes_filters_sparse_pairs() {
        let m = planted_with_duplicate(300, 3);
        let all = DependencyReport::build(&m, 1).unwrap();
        let filtered = DependencyReport::build(&m, 1_000_000).unwrap();
        assert!(!all.pairs.is_empty());
        assert!(filtered.pairs.is_empty());
    }

    #[test]
    fn empty_matrix_rejected() {
        let empty = LabelMatrix::new(4);
        assert!(matches!(
            DependencyReport::build(&empty, 1),
            Err(CoreError::EmptyMatrix)
        ));
    }

    #[test]
    fn nested_threshold_rules_are_flagged() {
        // Two rules thresholding the same hidden score at nearby cut
        // points (the events-app failure mode): strongly dependent.
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = LabelMatrix::with_capacity(6, 10_000);
        for _ in 0..10_000 {
            let y = rng.gen_bool(0.5);
            // A shared noisy score: the class shifts it, but the noise is
            // common to both threshold rules — correlation beyond Y.
            let score: f64 = if y { 0.45 } else { 0.25 } + 0.3 * rng.gen::<f64>();
            let mut vote = |acc: f64| -> i8 {
                if !rng.gen_bool(0.7) {
                    0
                } else if rng.gen_bool(acc) {
                    if y {
                        1
                    } else {
                        -1
                    }
                } else if y {
                    -1
                } else {
                    1
                }
            };
            let row = [
                i8::from(score > 0.5),
                i8::from(score > 0.55),
                vote(0.8),
                vote(0.75),
                vote(0.85),
                vote(0.8),
            ];
            m.push_raw_row(&row).unwrap();
        }
        let report = DependencyReport::build(&m, 50).unwrap();
        let top = &report.pairs[0];
        assert_eq!((top.j, top.k), (0, 1), "nested thresholds must rank first");
        assert!(top.excess() > 0.1, "excess {}", top.excess());
    }
}
