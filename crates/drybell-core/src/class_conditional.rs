//! Class-conditional label model (the MeTaL-style extension).
//!
//! §5.2 closes by noting that "it is also possible to directly plug-in
//! matrix factorization models of the kind recently used for denoising
//! labeling functions [Ratner et al., AAAI 2019] as TensorFlow model
//! functions". This module implements that richer family with the same
//! sampling-free analytic-gradient machinery: instead of one accuracy
//! parameter per LF, each LF gets a full class-conditional vote
//! distribution
//!
//! ```text
//! P(λ_j = v | Y = y) = softmax over v ∈ {+1, −1, abstain} of θ_{j,y,v}
//! ```
//!
//! (four free parameters per LF; the abstain logit is fixed at 0).
//!
//! Why it matters: the conditionally-independent model of
//! [`crate::generative`] ties an LF's behaviour on both classes to a
//! single accuracy, which makes *unipolar* LFs (voting only one class)
//! degenerate — a set of disjoint positive-only and negative-only LFs
//! admits an "everything is one class, the other LFs are always wrong"
//! maximum. The class-conditional model measures each LF's firing rate
//! *per class*, so a positive-only LF that fires on 60% of positives and
//! 0.4% of negatives carries its true likelihood ratio. The
//! `exp_class_conditional` binary and `tests` below demonstrate exactly
//! this failure/repair pair.

// drybell-lint: allow-file(no-panic-index) — dense numeric kernel: loop bounds are derived from the matrix shape once and invariant; .get() in the inner loops would hide real shape bugs and cost the hot path

use crate::error::CoreError;
use crate::matrix::LabelMatrix;
use crate::optim::{OptimState, Optimizer};
use crate::{logsumexp2, sigmoid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index helpers into the flat parameter vector:
/// `theta[j][y][v]` with `y ∈ {0:+1, 1:−1}`, `v ∈ {0:+1, 1:−1}`.
#[inline]
fn idx(j: usize, y: usize, v: usize) -> usize {
    j * 4 + y * 2 + v
}

/// Training hyperparameters for [`ClassConditionalModel::fit`].
#[derive(Debug, Clone)]
pub struct CcTrainConfig {
    /// Mini-batch gradient steps.
    pub steps: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Update rule.
    pub optimizer: Optimizer,
    /// L2 penalty toward zero on all logits.
    pub l2: f64,
    /// Fixed class prior `P(Y = +1)`.
    pub class_prior: f64,
    /// Initial *accuracy tilt*: the matching-class vote logit starts at
    /// `+init_tilt` and the mismatching one at `−init_tilt`, breaking the
    /// label-permutation symmetry toward "LFs are accurate".
    pub init_tilt: f64,
    /// RNG seed for batch order.
    pub seed: u64,
}

impl Default for CcTrainConfig {
    fn default() -> CcTrainConfig {
        CcTrainConfig {
            steps: 6000,
            batch_size: 256,
            optimizer: Optimizer::adam(0.05),
            l2: 1e-3,
            class_prior: 0.5,
            init_tilt: 1.0,
            seed: 0,
        }
    }
}

/// The class-conditional generative label model.
#[derive(Debug, Clone)]
pub struct ClassConditionalModel {
    /// Flat `n × 2 × 2` logits; abstain logit fixed at 0.
    theta: Vec<f64>,
    num_lfs: usize,
    /// Class-prior log-odds (fixed during training).
    eta: f64,
}

impl ClassConditionalModel {
    /// Create a model for `num_lfs` labeling functions.
    pub fn new(num_lfs: usize) -> ClassConditionalModel {
        ClassConditionalModel {
            theta: vec![0.0; num_lfs * 4],
            num_lfs,
            eta: 0.0,
        }
    }

    /// Number of labeling functions.
    pub fn num_lfs(&self) -> usize {
        self.num_lfs
    }

    /// Raw logits (tests).
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Set logits directly (tests). Length must be `num_lfs * 4`.
    pub fn set_theta(&mut self, theta: Vec<f64>, eta: f64) {
        assert_eq!(theta.len(), self.num_lfs * 4);
        self.theta = theta;
        self.eta = eta;
    }

    /// The learned conditional vote table of LF `j`:
    /// `[ [P(+1|+1), P(−1|+1), P(0|+1)], [P(+1|−1), P(−1|−1), P(0|−1)] ]`.
    pub fn confusion(&self, j: usize) -> [[f64; 3]; 2] {
        let mut out = [[0.0; 3]; 2];
        for (y, row) in out.iter_mut().enumerate() {
            let tp = self.theta[idx(j, y, 0)];
            let tm = self.theta[idx(j, y, 1)];
            let z = logsumexp2(logsumexp2(tp, tm), 0.0);
            row[0] = (tp - z).exp();
            row[1] = (tm - z).exp();
            row[2] = (-z).exp();
        }
        out
    }

    /// `log P(λ_ij = l | Y = y)` for one LF.
    #[inline]
    fn log_cond(&self, j: usize, y: usize, l: i8) -> f64 {
        let tp = self.theta[idx(j, y, 0)];
        let tm = self.theta[idx(j, y, 1)];
        let z = logsumexp2(logsumexp2(tp, tm), 0.0);
        match l {
            1 => tp - z,
            -1 => tm - z,
            _ => -z,
        }
    }

    /// Joint log-scores `(log P(row, Y=+1), log P(row, Y=−1))`.
    fn joint_scores(&self, row: &[i8]) -> (f64, f64) {
        let mut sp = sigmoid(self.eta).ln();
        let mut sm = sigmoid(-self.eta).ln();
        for (j, &l) in row.iter().enumerate() {
            sp += self.log_cond(j, 0, l);
            sm += self.log_cond(j, 1, l);
        }
        (sp, sm)
    }

    /// Posterior `P(Y = +1 | row)`.
    pub fn posterior(&self, row: &[i8]) -> f64 {
        let (sp, sm) = self.joint_scores(row);
        sigmoid(sp - sm)
    }

    /// Posteriors for every row of the matrix.
    pub fn predict_proba(&self, m: &LabelMatrix) -> Vec<f64> {
        m.rows().map(|row| self.posterior(row)).collect()
    }

    /// Mean per-example negative marginal log-likelihood.
    pub fn nll(&self, m: &LabelMatrix) -> Result<f64, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        let total: f64 = m
            .rows()
            .map(|row| {
                let (sp, sm) = self.joint_scores(row);
                -logsumexp2(sp, sm)
            })
            .sum();
        Ok(total / m.num_examples() as f64)
    }

    /// Mean NLL gradient over `batch` rows plus L2.
    fn grad_batch(&self, m: &LabelMatrix, batch: &[usize], l2: f64, grad: &mut [f64]) {
        grad.iter_mut().for_each(|g| *g = 0.0);
        // Cache the per-(j, y) conditional vote probabilities.
        let mut probs = vec![[0.0f64; 2]; self.num_lfs * 2]; // [P(+1|y), P(-1|y)]
        for j in 0..self.num_lfs {
            for y in 0..2 {
                let tp = self.theta[idx(j, y, 0)];
                let tm = self.theta[idx(j, y, 1)];
                let z = logsumexp2(logsumexp2(tp, tm), 0.0);
                probs[j * 2 + y] = [(tp - z).exp(), (tm - z).exp()];
            }
        }
        for &i in batch {
            let row = m.row(i);
            let (sp, sm) = self.joint_scores(row);
            let p_pos = sigmoid(sp - sm);
            for (j, &l) in row.iter().enumerate() {
                for (y, &py) in [p_pos, 1.0 - p_pos].iter().enumerate() {
                    let pv = probs[j * 2 + y];
                    // ∂(−log P)/∂θ_{j,y,v} = −p(y)·(1[λ=v] − P(v|y))
                    let ind_p = f64::from(u8::from(l == 1));
                    let ind_m = f64::from(u8::from(l == -1));
                    grad[idx(j, y, 0)] -= py * (ind_p - pv[0]);
                    grad[idx(j, y, 1)] -= py * (ind_m - pv[1]);
                }
            }
        }
        let bsz = batch.len() as f64;
        for (g, &t) in grad.iter_mut().zip(&self.theta) {
            *g = *g / bsz + l2 * t;
        }
    }

    /// Full-data gradient (gradient checks).
    pub fn full_gradient(&self, m: &LabelMatrix, l2: f64) -> Vec<f64> {
        let idxs: Vec<usize> = (0..m.num_examples()).collect();
        let mut grad = vec![0.0; self.theta.len()];
        self.grad_batch(m, &idxs, l2, &mut grad);
        grad
    }

    /// Fit by mini-batch gradient descent on the marginal NLL.
    pub fn fit(&mut self, m: &LabelMatrix, cfg: &CcTrainConfig) -> Result<f64, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        if m.num_lfs() != self.num_lfs {
            return Err(CoreError::LengthMismatch {
                left: m.num_lfs(),
                right: self.num_lfs,
            });
        }
        if cfg.batch_size == 0 {
            return Err(CoreError::BadConfig("batch_size must be > 0".into()));
        }
        if !(cfg.class_prior > 0.0 && cfg.class_prior < 1.0) {
            return Err(CoreError::BadConfig("class_prior must be in (0, 1)".into()));
        }
        self.eta = (cfg.class_prior / (1.0 - cfg.class_prior)).ln();
        // Accuracy-tilted init: voting the true class starts favored.
        for j in 0..self.num_lfs {
            self.theta[idx(j, 0, 0)] = cfg.init_tilt; // P(+1|+1) up
            self.theta[idx(j, 0, 1)] = -cfg.init_tilt;
            self.theta[idx(j, 1, 0)] = -cfg.init_tilt;
            self.theta[idx(j, 1, 1)] = cfg.init_tilt; // P(−1|−1) up
        }
        let mut opt = OptimState::new(cfg.optimizer, self.theta.len());
        let mut grad = vec![0.0; self.theta.len()];
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..m.num_examples()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        for step in 0..cfg.steps {
            let mut batch = Vec::with_capacity(cfg.batch_size);
            for _ in 0..cfg.batch_size.min(order.len()) {
                if cursor == order.len() {
                    order.shuffle(&mut rng);
                    cursor = 0;
                }
                batch.push(order[cursor]);
                cursor += 1;
            }
            self.grad_batch(m, &batch, cfg.l2, &mut grad);
            let mut params = std::mem::take(&mut self.theta);
            opt.step(&mut params, &grad);
            if params.iter().any(|p| !p.is_finite()) {
                return Err(CoreError::Diverged { step });
            }
            self.theta = params;
        }
        self.nll(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generative::{GenerativeModel, TrainConfig};
    use crate::vote::Label;
    use rand::Rng;

    /// Brute-force NLL straight from the probabilistic definition.
    fn brute_force_nll(m: &LabelMatrix, model: &ClassConditionalModel, prior: f64) -> f64 {
        let mut total = 0.0;
        for row in m.rows() {
            let mut marginal = 0.0;
            for (y, pi) in [(0usize, prior), (1usize, 1.0 - prior)] {
                let mut p = pi;
                for (j, &l) in row.iter().enumerate() {
                    let conf = model.confusion(j);
                    p *= match l {
                        1 => conf[y][0],
                        -1 => conf[y][1],
                        _ => conf[y][2],
                    };
                }
                marginal += p;
            }
            total -= marginal.ln();
        }
        total / m.num_examples() as f64
    }

    fn random_matrix(examples: usize, lfs: usize, seed: u64) -> LabelMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(examples * lfs);
        for _ in 0..examples * lfs {
            data.push([-1i8, 0, 0, 1][rng.gen_range(0..4)]);
        }
        LabelMatrix::from_raw(lfs, data).unwrap()
    }

    #[test]
    fn nll_matches_brute_force() {
        let m = random_matrix(30, 4, 1);
        let mut model = ClassConditionalModel::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        let theta: Vec<f64> = (0..16).map(|_| rng.gen_range(-1.0..1.5)).collect();
        model.set_theta(theta, 0.4);
        let fast = model.nll(&m).unwrap();
        let slow = brute_force_nll(&m, &model, sigmoid(0.4));
        assert!((fast - slow).abs() < 1e-10, "{fast} vs {slow}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = random_matrix(20, 3, 3);
        let mut model = ClassConditionalModel::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let theta: Vec<f64> = (0..12).map(|_| rng.gen_range(-0.8..0.8)).collect();
        model.set_theta(theta.clone(), 0.0);
        let l2 = 0.01;
        let grad = model.full_gradient(&m, l2);
        let h = 1e-6;
        for k in 0..theta.len() {
            let mut up = theta.clone();
            up[k] += h;
            let mut down = theta.clone();
            down[k] -= h;
            let f = |t: Vec<f64>| {
                let mut mm = ClassConditionalModel::new(3);
                mm.set_theta(t.clone(), 0.0);
                let l2_term: f64 = t.iter().map(|p| 0.5 * l2 * p * p).sum();
                mm.nll(&m).unwrap() + l2_term
            };
            let fd = (f(up) - f(down)) / (2.0 * h);
            assert!(
                (grad[k] - fd).abs() < 1e-5,
                "theta[{k}]: {} vs {fd}",
                grad[k]
            );
        }
    }

    /// The headline: a FULLY UNIPOLAR LF set over a rare positive class.
    /// The conditionally-independent model collapses (its global optimum
    /// explains every positive LF as always-wrong); the class-conditional
    /// model recovers the truth.
    #[test]
    fn unipolar_lfs_work_where_ci_model_collapses() {
        let mut rng = StdRng::seed_from_u64(7);
        let pos_rate = 0.05;
        let mut matrix = LabelMatrix::with_capacity(4, 20_000);
        let mut gold = Vec::new();
        for _ in 0..20_000 {
            let y = rng.gen_bool(pos_rate);
            // Two positive-only LFs, two negative-only LFs; disjoint
            // polarities, no bipolar anchor.
            let row = [
                // fires on 70% of positives, 0.5% of negatives
                if y && rng.gen_bool(0.7) || !y && rng.gen_bool(0.005) {
                    1
                } else {
                    0
                },
                if y && rng.gen_bool(0.5) || !y && rng.gen_bool(0.003) {
                    1
                } else {
                    0
                },
                // fires on 60% of negatives, 2% of positives
                if !y && rng.gen_bool(0.6) || y && rng.gen_bool(0.02) {
                    -1
                } else {
                    0
                },
                if !y && rng.gen_bool(0.4) || y && rng.gen_bool(0.01) {
                    -1
                } else {
                    0
                },
            ];
            matrix.push_raw_row(&row).unwrap();
            gold.push(if y { Label::Positive } else { Label::Negative });
        }
        let accuracy = |post: &[f64]| {
            post.iter()
                .zip(&gold)
                .filter(|(p, y)| (**p > 0.5) == (**y == Label::Positive))
                .count() as f64
                / gold.len() as f64
        };
        let pos_recall = |post: &[f64]| {
            let hits = post
                .iter()
                .zip(&gold)
                .filter(|(p, y)| **y == Label::Positive && **p > 0.5)
                .count();
            hits as f64 / gold.iter().filter(|y| **y == Label::Positive).count() as f64
        };

        // MeTaL-style models take the class balance as known/estimated;
        // with a fixed 50/50 prior a 95/5 mixture would be distorted.
        let mut cc = ClassConditionalModel::new(4);
        cc.fit(
            &matrix,
            &CcTrainConfig {
                class_prior: pos_rate,
                ..CcTrainConfig::default()
            },
        )
        .unwrap();
        let cc_post = cc.predict_proba(&matrix);
        assert!(
            accuracy(&cc_post) > 0.95,
            "cc accuracy {}",
            accuracy(&cc_post)
        );
        assert!(
            pos_recall(&cc_post) > 0.5,
            "cc must find positives: recall {}",
            pos_recall(&cc_post)
        );

        let mut ci = GenerativeModel::new(4, 0.7);
        ci.fit(
            &matrix,
            &TrainConfig {
                steps: 6000,
                batch_size: 256,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let ci_post = ci.predict_proba(&matrix);
        // The CI model's degenerate optimum misses essentially all
        // positives on this structure.
        assert!(
            pos_recall(&ci_post) < pos_recall(&cc_post),
            "ci recall {} vs cc recall {}",
            pos_recall(&ci_post),
            pos_recall(&cc_post)
        );
    }

    #[test]
    fn recovers_planted_confusion_tables() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut matrix = LabelMatrix::with_capacity(3, 15_000);
        // Planted: LF0 bipolar accurate; LF1 positive-only; LF2 noisy.
        let plant = |y: bool, rng: &mut StdRng| -> [i8; 3] {
            [
                if rng.gen_bool(0.8) {
                    if y {
                        1
                    } else {
                        -1
                    }
                } else {
                    0
                },
                if y && rng.gen_bool(0.6) || !y && rng.gen_bool(0.01) {
                    1
                } else {
                    0
                },
                if rng.gen_bool(0.3) {
                    if rng.gen_bool(0.55) == y {
                        1
                    } else {
                        -1
                    }
                } else {
                    0
                },
            ]
        };
        for _ in 0..15_000 {
            let y = rng.gen_bool(0.5);
            matrix.push_raw_row(&plant(y, &mut rng)).unwrap();
        }
        let mut model = ClassConditionalModel::new(3);
        model.fit(&matrix, &CcTrainConfig::default()).unwrap();
        let c0 = model.confusion(0);
        assert!((c0[0][0] - 0.8).abs() < 0.08, "P(+1|+1) = {}", c0[0][0]);
        assert!((c0[1][1] - 0.8).abs() < 0.08, "P(-1|-1) = {}", c0[1][1]);
        let c1 = model.confusion(1);
        assert!((c1[0][0] - 0.6).abs() < 0.08, "P(+1|+1) = {}", c1[0][0]);
        assert!(c1[1][0] < 0.05, "P(+1|-1) = {}", c1[1][0]);
    }

    #[test]
    fn confusion_rows_are_distributions() {
        let mut model = ClassConditionalModel::new(2);
        let mut rng = StdRng::seed_from_u64(11);
        model.set_theta((0..8).map(|_| rng.gen_range(-2.0..2.0)).collect(), 0.3);
        for j in 0..2 {
            for row in model.confusion(j) {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12);
                assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn fit_validates_inputs() {
        let m = random_matrix(10, 3, 0);
        let mut model = ClassConditionalModel::new(4);
        assert!(matches!(
            model.fit(&m, &CcTrainConfig::default()),
            Err(CoreError::LengthMismatch { .. })
        ));
        let mut model = ClassConditionalModel::new(3);
        assert!(matches!(
            model.fit(
                &m,
                &CcTrainConfig {
                    class_prior: 0.0,
                    ..CcTrainConfig::default()
                }
            ),
            Err(CoreError::BadConfig(_))
        ));
        let empty = LabelMatrix::new(3);
        assert!(matches!(
            model.fit(&empty, &CcTrainConfig::default()),
            Err(CoreError::EmptyMatrix)
        ));
    }

    #[test]
    fn agrees_with_ci_model_on_bipolar_data() {
        // On well-behaved bipolar LFs the two families should produce
        // near-identical posteriors.
        let mut rng = StdRng::seed_from_u64(13);
        let mut matrix = LabelMatrix::with_capacity(4, 10_000);
        let mut gold = Vec::new();
        for _ in 0..10_000 {
            let y = rng.gen_bool(0.5);
            let row: Vec<i8> = (0..4)
                .map(|j| {
                    let acc = 0.65 + 0.08 * j as f64;
                    if !rng.gen_bool(0.7) {
                        0
                    } else if rng.gen_bool(acc) {
                        if y {
                            1
                        } else {
                            -1
                        }
                    } else if y {
                        -1
                    } else {
                        1
                    }
                })
                .collect();
            matrix.push_raw_row(&row).unwrap();
            gold.push(y);
        }
        let mut cc = ClassConditionalModel::new(4);
        cc.fit(&matrix, &CcTrainConfig::default()).unwrap();
        let mut ci = GenerativeModel::new(4, 0.7);
        ci.fit(
            &matrix,
            &TrainConfig {
                steps: 6000,
                batch_size: 256,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let cc_post = cc.predict_proba(&matrix);
        let ci_post = ci.predict_proba(&matrix);
        let disagreements = cc_post
            .iter()
            .zip(&ci_post)
            .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
            .count();
        assert!(
            (disagreements as f64) < 0.02 * gold.len() as f64,
            "families disagree on {disagreements} rows"
        );
    }
}
