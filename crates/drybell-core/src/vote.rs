//! Labeling-function votes.
//!
//! A labeling function maps an example to a [`Vote`]: a class label or an
//! explicit abstention. The paper focuses on binary classification
//! (`Y ∈ {-1, +1}`) with abstain encoded as `0`; DryBell also supports
//! arbitrary categorical targets, represented here by [`CatVote`].

use serde::{Deserialize, Serialize};

/// A binary labeling-function vote: positive, negative, or abstain.
///
/// Encoded on the wire and in [`crate::LabelMatrix`] as an `i8` in
/// `{+1, -1, 0}`, matching the paper's `λ_j : X → {-1, 0, 1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// The LF believes the example is in the positive class (`+1`).
    Positive,
    /// The LF believes the example is in the negative class (`-1`).
    Negative,
    /// The LF offers no opinion on this example (`0`).
    Abstain,
}

impl Vote {
    /// The paper's integer encoding: `+1`, `-1`, or `0`.
    #[inline]
    pub fn as_i8(self) -> i8 {
        match self {
            Vote::Positive => 1,
            Vote::Negative => -1,
            Vote::Abstain => 0,
        }
    }

    /// Decode from the integer encoding. Any value other than `+1`/`-1`/`0`
    /// is rejected.
    #[inline]
    pub fn from_i8(v: i8) -> Option<Vote> {
        match v {
            1 => Some(Vote::Positive),
            -1 => Some(Vote::Negative),
            0 => Some(Vote::Abstain),
            _ => None,
        }
    }

    /// `true` unless the vote is [`Vote::Abstain`].
    #[inline]
    pub fn is_active(self) -> bool {
        !matches!(self, Vote::Abstain)
    }

    /// Flip positive to negative and vice versa; abstain is unchanged.
    #[inline]
    pub fn flipped(self) -> Vote {
        match self {
            Vote::Positive => Vote::Negative,
            Vote::Negative => Vote::Positive,
            Vote::Abstain => Vote::Abstain,
        }
    }
}

impl From<bool> for Vote {
    /// `true` → positive, `false` → negative (never abstains).
    fn from(b: bool) -> Vote {
        if b {
            Vote::Positive
        } else {
            Vote::Negative
        }
    }
}

/// A categorical labeling-function vote over `k` classes.
///
/// Classes are `1..=k`; `0` means abstain, mirroring the binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CatVote(pub u32);

impl CatVote {
    /// The abstain vote.
    pub const ABSTAIN: CatVote = CatVote(0);

    /// Vote for class `c` (1-based). Panics if `c == 0`; use
    /// [`CatVote::ABSTAIN`] to abstain.
    #[inline]
    pub fn class(c: u32) -> CatVote {
        assert!(c > 0, "class labels are 1-based; 0 is reserved for abstain");
        CatVote(c)
    }

    /// `true` unless this is the abstain vote.
    #[inline]
    pub fn is_active(self) -> bool {
        self.0 != 0
    }
}

/// A ground-truth binary label, used only for evaluation and for the
/// hand-label trade-off experiments (Figure 5) — never by the generative
/// model, which learns from `Λ` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The positive class (`+1`).
    Positive,
    /// The negative class (`-1`).
    Negative,
}

impl Label {
    /// `+1.0` or `-1.0`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Label::Positive => 1.0,
            Label::Negative => -1.0,
        }
    }

    /// `+1` or `-1`.
    #[inline]
    pub fn as_i8(self) -> i8 {
        match self {
            Label::Positive => 1,
            Label::Negative => -1,
        }
    }

    /// Probability-style encoding: positive → `1.0`, negative → `0.0`.
    #[inline]
    pub fn as_prob(self) -> f64 {
        match self {
            Label::Positive => 1.0,
            Label::Negative => 0.0,
        }
    }

    /// The vote an oracle LF would emit.
    #[inline]
    pub fn as_vote(self) -> Vote {
        match self {
            Label::Positive => Vote::Positive,
            Label::Negative => Vote::Negative,
        }
    }

    /// Threshold a probability of the positive class at `0.5`.
    #[inline]
    pub fn from_prob(p: f64) -> Label {
        if p >= 0.5 {
            Label::Positive
        } else {
            Label::Negative
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_roundtrips_through_i8() {
        for v in [Vote::Positive, Vote::Negative, Vote::Abstain] {
            assert_eq!(Vote::from_i8(v.as_i8()), Some(v));
        }
        assert_eq!(Vote::from_i8(3), None);
        assert_eq!(Vote::from_i8(-2), None);
    }

    #[test]
    fn flip_is_involution() {
        for v in [Vote::Positive, Vote::Negative, Vote::Abstain] {
            assert_eq!(v.flipped().flipped(), v);
        }
        assert_eq!(Vote::Positive.flipped(), Vote::Negative);
        assert_eq!(Vote::Abstain.flipped(), Vote::Abstain);
    }

    #[test]
    fn activity_matches_abstain() {
        assert!(Vote::Positive.is_active());
        assert!(Vote::Negative.is_active());
        assert!(!Vote::Abstain.is_active());
        assert!(!CatVote::ABSTAIN.is_active());
        assert!(CatVote::class(3).is_active());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn cat_vote_class_zero_panics() {
        let _ = CatVote::class(0);
    }

    #[test]
    fn label_encodings_agree() {
        assert_eq!(Label::Positive.as_f64(), 1.0);
        assert_eq!(Label::Negative.as_f64(), -1.0);
        assert_eq!(Label::from_prob(0.7), Label::Positive);
        assert_eq!(Label::from_prob(0.2), Label::Negative);
        assert_eq!(Label::Positive.as_vote(), Vote::Positive);
        assert_eq!(Label::Negative.as_vote().as_i8(), -1);
    }
}
