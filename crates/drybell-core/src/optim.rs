//! First-order optimizers shared by the label-model trainers.
//!
//! The paper implements its sampling-free objective as a static TensorFlow
//! graph and lets TF's optimizers minimize it; here the gradients are
//! analytic and these small self-contained optimizers play TF's role.

/// Which update rule to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent with a fixed step size.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient in `[0, 1)`.
        beta: f64,
    },
    /// Adam (Kingma & Ba) with the usual bias correction.
    Adam {
        /// Learning rate.
        lr: f64,
        /// Exponential decay for the first moment.
        beta1: f64,
        /// Exponential decay for the second moment.
        beta2: f64,
        /// Denominator fuzz factor.
        eps: f64,
    },
}

impl Optimizer {
    /// Adam with the standard defaults and the given learning rate.
    pub fn adam(lr: f64) -> Optimizer {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD with the given learning rate.
    pub fn sgd(lr: f64) -> Optimizer {
        Optimizer::Sgd { lr }
    }
}

/// Mutable optimizer state for a flat parameter vector.
#[derive(Debug, Clone)]
pub struct OptimState {
    rule: Optimizer,
    /// First-moment / momentum buffer.
    m: Vec<f64>,
    /// Second-moment buffer (Adam only).
    v: Vec<f64>,
    /// Update count, for Adam bias correction.
    t: u64,
}

impl OptimState {
    /// Create state for `dim` parameters.
    pub fn new(rule: Optimizer, dim: usize) -> OptimState {
        OptimState {
            rule,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Apply one in-place update `params -= step(grad)`.
    ///
    /// Panics if `params` and `grad` are not the dimension given at
    /// construction.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter dimension changed");
        assert_eq!(params.len(), grad.len(), "gradient dimension mismatch");
        self.t += 1;
        match self.rule {
            Optimizer::Sgd { lr } => {
                for (p, g) in params.iter_mut().zip(grad) {
                    *p -= lr * g;
                }
            }
            Optimizer::Momentum { lr, beta } => {
                for ((p, g), m) in params.iter_mut().zip(grad).zip(self.m.iter_mut()) {
                    *m = beta * *m + g;
                    *p -= lr * *m;
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for (((p, g), m), v) in params
                    .iter_mut()
                    .zip(grad)
                    .zip(self.m.iter_mut())
                    .zip(self.v.iter_mut())
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let mhat = *m / bc1;
                    let vhat = *v / bc2;
                    *p -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The current update rule.
    pub fn rule(&self) -> Optimizer {
        self.rule
    }

    /// Swap the update rule in place, keeping the accumulated moments
    /// and step count. The intended use is learning-rate scheduling on
    /// a long-lived state (streaming training decays the rate as data
    /// accumulates); Adam/momentum moments are step-size-independent
    /// statistics of the gradient, so they stay valid across the swap.
    pub fn set_rule(&mut self, rule: Optimizer) {
        self.rule = rule;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = (x - 3)^2, gradient 2(x - 3).
    fn quad_grad(x: f64) -> f64 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut st = OptimState::new(Optimizer::sgd(0.1), 1);
        let mut p = [0.0];
        for _ in 0..200 {
            let g = [quad_grad(p[0])];
            st.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-6, "got {}", p[0]);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut st = OptimState::new(
            Optimizer::Momentum {
                lr: 0.05,
                beta: 0.8,
            },
            1,
        );
        let mut p = [0.0];
        for _ in 0..500 {
            let g = [quad_grad(p[0])];
            st.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-6, "got {}", p[0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut st = OptimState::new(Optimizer::adam(0.1), 1);
        let mut p = [0.0];
        for _ in 0..2000 {
            let g = [quad_grad(p[0])];
            st.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-4, "got {}", p[0]);
    }

    #[test]
    fn step_counts() {
        let mut st = OptimState::new(Optimizer::sgd(0.1), 2);
        assert_eq!(st.steps(), 0);
        st.step(&mut [0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(st.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn dimension_mismatch_panics() {
        let mut st = OptimState::new(Optimizer::sgd(0.1), 2);
        st.step(&mut [0.0], &[1.0]);
    }
}
