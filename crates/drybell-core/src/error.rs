//! Error types for the core label-modeling pipeline.

use std::fmt;

/// Errors raised while building label matrices or fitting label models.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A row with the wrong number of LF votes was appended to a matrix.
    RowArity {
        /// Number of labeling functions the matrix was created with.
        expected: usize,
        /// Number of votes in the offending row.
        got: usize,
    },
    /// An operation needed a non-empty matrix but got zero rows or zero LFs.
    EmptyMatrix,
    /// A matrix was requested with zero labeling functions (no columns).
    ZeroLabelingFunctions,
    /// Vote value outside `{-1, 0, +1}` (binary) or `0..=k` (categorical).
    InvalidVote {
        /// The raw encoded vote value.
        value: i64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// Training diverged (non-finite loss or parameters).
    Diverged {
        /// The optimization step at which divergence was detected.
        step: usize,
    },
    /// Mismatched lengths between parallel arrays (e.g. posteriors vs gold).
    LengthMismatch {
        /// Length of the first array.
        left: usize,
        /// Length of the second array.
        right: usize,
    },
    /// A configuration value was out of range.
    BadConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RowArity { expected, got } => {
                write!(f, "label row has {got} votes, matrix expects {expected}")
            }
            CoreError::EmptyMatrix => write!(f, "operation requires a non-empty label matrix"),
            CoreError::ZeroLabelingFunctions => {
                write!(f, "label matrix needs at least one labeling function")
            }
            CoreError::InvalidVote { value, expected } => {
                write!(f, "invalid vote value {value}, expected {expected}")
            }
            CoreError::Diverged { step } => {
                write!(f, "label model training diverged at step {step}")
            }
            CoreError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            CoreError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::RowArity {
            expected: 3,
            got: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = CoreError::Diverged { step: 42 };
        assert!(e.to_string().contains("42"));
    }
}
