//! The sampling-free generative label model (paper §5.2).
//!
//! DryBell models each labeling function `j` with two log-space parameters:
//!
//! * `α_j` — unnormalized log-probability that the LF is *correct* given
//!   that it did not abstain, and
//! * `β_j` — unnormalized log-probability that it did *not abstain*,
//!
//! under the conditionally independent model
//! `P_w(Λ, Y) = Π_i P(Y_i) Π_j P(λ_j(X_i) | Y_i)`.
//!
//! With `A_j = e^{α_j+β_j}`, `B_j = e^{-α_j+β_j}` and the per-LF log
//! normalizer `Z_j = log(A_j + B_j + 1)`, the per-example joint scores are
//! exactly the paper's:
//!
//! ```text
//! log P(Λ_i, Y=+1) = log π₊ + Σ_j ( λ_ij·α_j + 1[λ_ij≠0]·β_j − Z_j )
//! log P(Λ_i, Y=−1) = log π₋ + Σ_j ( −λ_ij·α_j + 1[λ_ij≠0]·β_j − Z_j )
//! ```
//!
//! and the training objective is the negative marginal log-likelihood
//! `−Σ_i logsumexp(s_i⁺, s_i⁻)`, with `Y` marginalized out — no ground
//! truth is ever consulted. Unlike the open-source Snorkel's Gibbs sampler
//! (see [`crate::gibbs`]), the gradient here is **analytic**:
//!
//! ```text
//! ∂NLL_i/∂α_j = ∂Z_j/∂α − (2p_i − 1)·λ_ij      ∂Z/∂α = (A−B)/(A+B+1)
//! ∂NLL_i/∂β_j = ∂Z_j/∂β − 1[λ_ij ≠ 0]          ∂Z/∂β = (A+B)/(A+B+1)
//! ∂NLL_i/∂η   = σ(η) − p_i                     (learned class prior)
//! ```
//!
//! where `p_i = σ(s_i⁺ − s_i⁻)` is the posterior — which doubles as the
//! probabilistic training label `Ỹ_i` once training finishes.
//!
//! Training and inference are data-parallel: gradient accumulation and
//! the full-matrix row scans (`predict_proba`, `nll`) shard over
//! [`TrainConfig::num_threads`] scoped workers with fixed chunk
//! boundaries and a fixed-order tree reduction (see [`crate::parallel`]),
//! so results are **byte-identical at any thread count**. Sparse
//! matrices additionally use an active-index ([`ActiveRows`]) inner loop
//! that skips abstain cells without changing a single floating-point
//! operation.

// drybell-lint: allow-file(no-panic-index) — dense numeric kernel: loop bounds are derived from the matrix shape once and invariant; .get() in the inner loops would hide real shape bugs and cost the hot path

use crate::error::CoreError;
use crate::matrix::{ActiveRows, LabelMatrix};
use crate::optim::{OptimState, Optimizer};
use crate::parallel;
use crate::{logsumexp2, sigmoid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Training hyperparameters for [`GenerativeModel::fit`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of gradient steps (mini-batches).
    pub steps: usize,
    /// Mini-batch size. The paper benchmarks with 64.
    pub batch_size: usize,
    /// Update rule; the paper's TF implementation uses first-order methods.
    pub optimizer: Optimizer,
    /// L2 penalty toward 0 on `α` and `β` (a weak prior keeping accuracies
    /// finite when LFs rarely overlap).
    pub l2: f64,
    /// Learn the class prior `P(Y)` (§5.2: "we assume that `P(Y_i)` is
    /// uniform, but we can also learn this distribution").
    pub learn_class_prior: bool,
    /// Fixed class prior `P(Y=+1)` used when `learn_class_prior` is false.
    pub class_prior: f64,
    /// Initial `α` (a mildly optimistic prior that LFs are better than
    /// chance, as in Snorkel).
    pub init_alpha: f64,
    /// RNG seed for batch shuffling.
    pub seed: u64,
    /// Record the full-data NLL every `record_every` steps (0 = never);
    /// recording costs a full pass, so keep it sparse for big matrices.
    pub record_every: usize,
    /// On observed runs, compute the full-data NLL at every
    /// `epoch_nll_every`-th epoch boundary (0 = never). Each sample
    /// costs a full pass over the matrix, so the default keeps
    /// telemetry overhead flat; the final epoch's NLL is always filled
    /// for free from the end-of-run pass. Unobserved runs never compute
    /// per-epoch NLL regardless of this setting.
    pub epoch_nll_every: usize,
    /// Worker threads for gradient accumulation and full-data row scans
    /// (0 is treated as 1). Results are **byte-identical at any value**:
    /// rows are chunked at fixed boundaries and partials are combined
    /// with a fixed-order tree reduction (see [`crate::parallel`]).
    /// Batches smaller than one chunk never spawn a thread, so the
    /// paper's batch-64 setting keeps its single-thread profile.
    pub num_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            steps: 1000,
            batch_size: 64,
            optimizer: Optimizer::adam(0.05),
            l2: 1e-3,
            learn_class_prior: false,
            class_prior: 0.5,
            init_alpha: 0.7,
            seed: 0,
            record_every: 0,
            epoch_nll_every: 0,
            num_threads: 1,
        }
    }
}

/// Per-epoch accounting from one training run (an epoch is one full pass
/// over the shuffled example order).
#[derive(Debug, Clone, Copy)]
pub struct EpochStat {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Gradient steps attributed to this epoch.
    pub steps: usize,
    /// Mean L2 norm of the mini-batch gradient over the epoch's steps.
    pub mean_grad_norm: f64,
    /// Mean L2 norm of the parameter update (the effective step size).
    pub mean_step_norm: f64,
    /// Wall-clock seconds spent in the epoch.
    pub seconds: f64,
    /// Full-data mean NLL at the epoch boundary. Only computed when the
    /// run is observed (it costs a full pass over the matrix).
    pub nll: Option<f64>,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Gradient steps actually taken.
    pub steps: usize,
    /// Mean per-example NLL on the full matrix after training.
    pub final_nll: f64,
    /// Wall-clock training time in seconds.
    pub seconds: f64,
    /// Gradient steps per second (the §5.2 headline metric).
    pub steps_per_sec: f64,
    /// Example rows consumed by gradient accumulation (steps × batch).
    pub rows: usize,
    /// Row throughput of training (`rows / seconds`) — the scaling metric
    /// `BENCH_label_model.json` tracks across thread counts.
    pub rows_per_sec: f64,
    /// `(step, mean NLL)` samples if `record_every > 0`.
    pub loss_history: Vec<(usize, f64)>,
    /// Per-epoch gradient/step-size/time accounting (always populated;
    /// the per-epoch `nll` field is only filled on observed runs — the
    /// final epoch from the free end-of-run pass, earlier epochs per
    /// [`TrainConfig::epoch_nll_every`]).
    pub epochs: Vec<EpochStat>,
}

impl TrainReport {
    /// Emit one `train_epoch` event per epoch and a closing `train` event
    /// to a run journal.
    pub fn emit_to(&self, journal: &drybell_obs::RunJournal) {
        for e in &self.epochs {
            let mut event = drybell_obs::Event::new("train_epoch")
                .field("epoch", e.epoch)
                .field("steps", e.steps)
                .field("mean_grad_norm", e.mean_grad_norm)
                .field("mean_step_norm", e.mean_step_norm)
                .field("seconds", e.seconds);
            if let Some(nll) = e.nll {
                event = event.field("nll", nll);
            }
            journal.emit(event);
        }
        journal.emit(
            drybell_obs::Event::new("train")
                .field("steps", self.steps)
                .field("epochs", self.epochs.len())
                .field("final_nll", self.final_nll)
                .field("seconds", self.seconds)
                .field("steps_per_sec", self.steps_per_sec)
                .field("rows", self.rows)
                .field("rows_per_sec", self.rows_per_sec),
        );
    }
}

/// Optimizer state carried across [`GenerativeModel::fit_incremental`]
/// calls — the streaming counterpart of one `fit` run's internals.
///
/// Created by [`GenerativeModel::begin_incremental`], which performs the
/// one-time initialization `fit` does at its top (prior, `α`/`β` reset,
/// fresh optimizer moments). Each subsequent `fit_incremental` call
/// *warm-starts* from wherever the parameters and moments currently are,
/// so a stream of arriving shards trains one continuous SGD trajectory
/// instead of refitting from scratch per shard.
///
/// Determinism contract: the trajectory is a pure function of the
/// initial configuration and the exact sequence of `(matrix, cfg)`
/// folds. There is no RNG anywhere on the incremental path (batches are
/// drawn in fixed row order), so replaying the same shard sequence
/// reproduces every parameter byte-for-byte.
#[derive(Debug, Clone)]
pub struct IncrementalState {
    opt: OptimState,
    /// Flat parameter dimension (`2·num_lfs + 1`) the optimizer was
    /// sized for; folds against a different LF count are rejected.
    dim: usize,
    steps: usize,
    rows: usize,
}

impl IncrementalState {
    /// Total gradient steps taken across all folds so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Total example rows consumed across all folds so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Swap the optimizer rule (typically to decay the learning rate as
    /// shards accumulate — a constant rate would keep chasing the most
    /// recent shard's sampling noise and forget earlier data). Moments
    /// and step count carry over; see [`OptimState::set_rule`].
    pub fn set_optimizer(&mut self, rule: Optimizer) {
        self.opt.set_rule(rule);
    }
}

/// The conditionally-independent generative label model with sampling-free
/// maximum-marginal-likelihood training.
#[derive(Debug, Clone)]
pub struct GenerativeModel {
    alpha: Vec<f64>,
    beta: Vec<f64>,
    /// Class-prior log-odds; `P(Y=+1) = σ(η)`.
    eta: f64,
    learn_prior: bool,
}

/// Per-parameter-setting cached quantities: per-LF normalizer gradients,
/// the summed log-normalizer, and the class-prior terms that used to be
/// recomputed (two `sigmoid` + `ln` calls) for **every row** inside
/// `joint_scores`.
struct LfCache {
    dz_da: Vec<f64>,
    dz_db: Vec<f64>,
    sum_z: f64,
    /// `log σ(η)` — log prior of the positive class.
    log_pi_pos: f64,
    /// `log σ(−η)` — log prior of the negative class.
    log_pi_neg: f64,
    /// `σ(η)` — the prior itself, used by the `∂η` gradient term.
    pi: f64,
}

/// Density threshold below which `fit` builds an [`ActiveRows`] index
/// and runs the sparse inner loops. At ≥ 50% non-abstain cells a dense
/// scan touches fewer bytes than the `(u32, i8)` entry list, so the
/// dense path stays the default for well-covered matrices. The choice
/// depends only on the matrix — never on the thread count — so it can't
/// perturb the determinism guarantee.
const ACTIVE_INDEX_MAX_DENSITY: f64 = 0.5;

impl GenerativeModel {
    /// Create a model for `num_lfs` labeling functions with the given
    /// initial accuracy parameter and a uniform class prior.
    pub fn new(num_lfs: usize, init_alpha: f64) -> GenerativeModel {
        GenerativeModel {
            alpha: vec![init_alpha; num_lfs],
            beta: vec![0.0; num_lfs],
            eta: 0.0,
            learn_prior: false,
        }
    }

    /// Number of labeling functions.
    pub fn num_lfs(&self) -> usize {
        self.alpha.len()
    }

    /// Raw accuracy parameters `α`.
    pub fn alphas(&self) -> &[f64] {
        &self.alpha
    }

    /// Raw propensity parameters `β`.
    pub fn betas(&self) -> &[f64] {
        &self.beta
    }

    /// Raw class-prior log-odds parameter `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Directly set the parameters (used by tests and by the Gibbs trainer
    /// which shares this model family).
    pub fn set_params(&mut self, alpha: Vec<f64>, beta: Vec<f64>, eta: f64) {
        assert_eq!(alpha.len(), beta.len());
        self.alpha = alpha;
        self.beta = beta;
        self.eta = eta;
    }

    /// Learned accuracy of each LF: `P(λ_j correct | λ_j ≠ 0) = σ(2α_j)`.
    ///
    /// §3.3 reports these estimates were "independently useful for
    /// identifying previously unknown low-quality sources".
    pub fn learned_accuracies(&self) -> Vec<f64> {
        self.alpha.iter().map(|&a| sigmoid(2.0 * a)).collect()
    }

    /// Learned non-abstain propensity of each LF:
    /// `P(λ_j ≠ 0) = (A + B) / (A + B + 1)`.
    pub fn learned_propensities(&self) -> Vec<f64> {
        self.alpha
            .iter()
            .zip(&self.beta)
            .map(|(&a, &b)| {
                let ab = (a + b).exp() + (-a + b).exp();
                ab / (ab + 1.0)
            })
            .collect()
    }

    /// The class prior `P(Y = +1)` currently in effect.
    pub fn class_prior(&self) -> f64 {
        sigmoid(self.eta)
    }

    fn cache(&self) -> LfCache {
        let n = self.alpha.len();
        let mut dz_da = Vec::with_capacity(n);
        let mut dz_db = Vec::with_capacity(n);
        let mut sum_z = 0.0;
        for j in 0..n {
            let a = (self.alpha[j] + self.beta[j]).exp();
            let b = (-self.alpha[j] + self.beta[j]).exp();
            let d = a + b + 1.0;
            dz_da.push((a - b) / d);
            dz_db.push((a + b) / d);
            sum_z += d.ln();
        }
        let pi = sigmoid(self.eta);
        LfCache {
            dz_da,
            dz_db,
            sum_z,
            log_pi_pos: pi.ln(),
            log_pi_neg: sigmoid(-self.eta).ln(),
            pi,
        }
    }

    /// Joint log-scores `(log P(Λ_i, Y=+1), log P(Λ_i, Y=−1))` for one row.
    fn joint_scores(&self, row: &[i8], cache: &LfCache) -> (f64, f64) {
        let mut margin = 0.0; // Σ_{active} λ·α
        let mut active_beta = 0.0; // Σ_{active} β
        for (j, &l) in row.iter().enumerate() {
            if l != 0 {
                margin += f64::from(l) * self.alpha[j];
                active_beta += self.beta[j];
            }
        }
        let base = active_beta - cache.sum_z;
        (
            cache.log_pi_pos + margin + base,
            cache.log_pi_neg - margin + base,
        )
    }

    /// [`GenerativeModel::joint_scores`] over an active-index row: the
    /// same accumulations in the same column order, visiting only the
    /// non-abstain entries — bit-identical to the dense scan.
    fn joint_scores_active(&self, entries: &[(u32, i8)], cache: &LfCache) -> (f64, f64) {
        let mut margin = 0.0;
        let mut active_beta = 0.0;
        for &(j, l) in entries {
            let j = j as usize;
            margin += f64::from(l) * self.alpha[j];
            active_beta += self.beta[j];
        }
        let base = active_beta - cache.sum_z;
        (
            cache.log_pi_pos + margin + base,
            cache.log_pi_neg - margin + base,
        )
    }

    /// Posterior `P(Y_i = +1 | Λ_i)` for one vote row.
    pub fn posterior(&self, row: &[i8]) -> f64 {
        let cache = self.cache();
        let (sp, sm) = self.joint_scores(row, &cache);
        sigmoid(sp - sm)
    }

    /// Posterior probabilities for every row of the matrix — these are the
    /// probabilistic training labels `Ỹ` handed to the discriminative model.
    pub fn predict_proba(&self, m: &LabelMatrix) -> Vec<f64> {
        self.predict_proba_threads(m, 1)
    }

    /// [`GenerativeModel::predict_proba`] sharded across `num_threads`
    /// scoped workers. Output is byte-identical at any thread count: each
    /// posterior depends only on its own row, and rows are emitted in
    /// fixed chunk order.
    pub fn predict_proba_threads(&self, m: &LabelMatrix, num_threads: usize) -> Vec<f64> {
        let cache = self.cache();
        let chunks = parallel::map_chunks(num_threads, m.num_examples(), |_, range| {
            range
                .map(|i| {
                    let (sp, sm) = self.joint_scores(m.row(i), &cache);
                    sigmoid(sp - sm)
                })
                .collect::<Vec<f64>>()
        });
        let mut out = Vec::with_capacity(m.num_examples());
        for chunk in chunks {
            out.extend_from_slice(&chunk);
        }
        out
    }

    /// [`GenerativeModel::predict_proba_threads`] with telemetry: records
    /// one `obs/train/predict_us` latency sample and adds the row count
    /// to the `obs/train/posterior_rows` throughput counter.
    pub fn predict_proba_observed(
        &self,
        m: &LabelMatrix,
        num_threads: usize,
        telemetry: Option<&drybell_obs::Telemetry>,
    ) -> Vec<f64> {
        let start = telemetry.map(|_| Instant::now());
        let out = self.predict_proba_threads(m, num_threads);
        if let (Some(t), Some(s)) = (telemetry, start) {
            t.metrics()
                .histogram("obs/train/predict_us")
                .record_duration(s.elapsed());
            t.metrics()
                .counter("obs/train/posterior_rows")
                .add(out.len() as u64);
        }
        out
    }

    /// Mean per-example negative marginal log-likelihood `−log P(Λ)/m`.
    pub fn nll(&self, m: &LabelMatrix) -> Result<f64, CoreError> {
        self.nll_threads(m, 1)
    }

    /// [`GenerativeModel::nll`] sharded across `num_threads` workers,
    /// byte-identical at any thread count (fixed chunking, fixed-order
    /// tree reduction of the per-chunk partial sums).
    pub fn nll_threads(&self, m: &LabelMatrix, num_threads: usize) -> Result<f64, CoreError> {
        self.nll_inner(m, None, num_threads)
    }

    /// Shared NLL kernel: scans the active index when one is available,
    /// the dense rows otherwise. Both paths perform identical
    /// floating-point operations.
    fn nll_inner(
        &self,
        m: &LabelMatrix,
        active: Option<&ActiveRows>,
        num_threads: usize,
    ) -> Result<f64, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        let cache = self.cache();
        let partials = parallel::map_chunks(num_threads, m.num_examples(), |_, range| {
            range
                .map(|i| {
                    let (sp, sm) = match active {
                        Some(ix) => self.joint_scores_active(ix.row(i), &cache),
                        None => self.joint_scores(m.row(i), &cache),
                    };
                    -logsumexp2(sp, sm)
                })
                .sum::<f64>()
        });
        let total = parallel::tree_reduce(partials, |a, b| a + b).unwrap_or(0.0);
        Ok(total / m.num_examples() as f64)
    }

    /// Accumulate the mean gradient of the NLL over the given row indices,
    /// sharding the accumulation over `num_threads` workers (fixed chunk
    /// boundaries over the batch positions, fixed-order tree reduction of
    /// the partial gradient vectors — byte-identical at any thread count).
    ///
    /// Layout of `grad`: `[∂α_0..∂α_n, ∂β_0..∂β_n, ∂η]`. An empty batch
    /// leaves `grad` all-zero instead of dividing by zero (which used to
    /// silently poison the optimizer state with NaNs).
    fn grad_batch(
        &self,
        m: &LabelMatrix,
        active: Option<&ActiveRows>,
        batch: &[usize],
        l2: f64,
        num_threads: usize,
        grad: &mut [f64],
    ) {
        let n = self.alpha.len();
        grad.iter_mut().for_each(|g| *g = 0.0);
        if batch.is_empty() {
            return;
        }
        let cache = self.cache();
        let partials = parallel::map_chunks(num_threads, batch.len(), |_, range| {
            let mut part = vec![0.0; 2 * n + 1];
            for &i in batch.get(range).unwrap_or(&[]) {
                match active {
                    Some(ix) => {
                        let entries = ix.row(i);
                        let (sp, sm) = self.joint_scores_active(entries, &cache);
                        let p = sigmoid(sp - sm);
                        for &(j, l) in entries {
                            let j = j as usize;
                            part[j] -= (2.0 * p - 1.0) * f64::from(l);
                            part[n + j] -= 1.0;
                        }
                        part[2 * n] += cache.pi - p;
                    }
                    None => {
                        let row = m.row(i);
                        let (sp, sm) = self.joint_scores(row, &cache);
                        let p = sigmoid(sp - sm);
                        for (j, &l) in row.iter().enumerate() {
                            if l != 0 {
                                part[j] -= (2.0 * p - 1.0) * f64::from(l);
                                part[n + j] -= 1.0;
                            }
                        }
                        part[2 * n] += cache.pi - p;
                    }
                }
            }
            part
        });
        let reduced = parallel::tree_reduce(partials, |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        if let Some(sum) = reduced {
            grad.copy_from_slice(&sum);
        }
        // Batch-constant ∂Z terms (every example contributes ∂Z_j regardless
        // of abstention).
        let bsz = batch.len() as f64;
        for j in 0..n {
            grad[j] += bsz * cache.dz_da[j];
            grad[n + j] += bsz * cache.dz_db[j];
        }
        // Mean over the batch plus L2 toward zero.
        for g in grad.iter_mut() {
            *g /= bsz;
        }
        for j in 0..n {
            grad[j] += l2 * self.alpha[j];
            grad[n + j] += l2 * self.beta[j];
        }
        if !self.learn_prior {
            grad[2 * n] = 0.0;
        }
    }

    /// Mean NLL gradient over the whole matrix (exposed for gradient checks
    /// and for full-batch training). Errors on an empty matrix — the
    /// former `Vec` return silently produced `0/0 = NaN` gradients.
    pub fn full_gradient(&self, m: &LabelMatrix, l2: f64) -> Result<Vec<f64>, CoreError> {
        self.full_gradient_path(m, l2, m.vote_density() < ACTIVE_INDEX_MAX_DENSITY, 1)
    }

    /// [`GenerativeModel::full_gradient`] with the sparse/dense inner
    /// loop forced and a worker count. Exposed so the equivalence
    /// proptest can assert both paths produce bit-identical gradients.
    pub fn full_gradient_path(
        &self,
        m: &LabelMatrix,
        l2: f64,
        use_active_index: bool,
        num_threads: usize,
    ) -> Result<Vec<f64>, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        if m.num_lfs() != self.alpha.len() {
            return Err(CoreError::LengthMismatch {
                left: m.num_lfs(),
                right: self.alpha.len(),
            });
        }
        let idx: Vec<usize> = (0..m.num_examples()).collect();
        let active = use_active_index.then(|| m.active_index());
        let mut grad = vec![0.0; 2 * self.alpha.len() + 1];
        self.grad_batch(m, active.as_ref(), &idx, l2, num_threads, &mut grad);
        Ok(grad)
    }

    /// Fit the model to the observed label matrix by mini-batch gradient
    /// descent on `−log P(Λ)` — the sampling-free procedure of §5.2.
    pub fn fit(&mut self, m: &LabelMatrix, cfg: &TrainConfig) -> Result<TrainReport, CoreError> {
        self.fit_observed(m, cfg, None)
    }

    /// [`GenerativeModel::fit`] with an optional telemetry sink.
    ///
    /// When `telemetry` is provided: per-step latency goes to the
    /// `obs/train/step_us` histogram and consumed rows to the
    /// `obs/train/rows` counter — both buffered in a thread-local
    /// [`drybell_obs::LocalShard`] and flushed at epoch boundaries, so
    /// the per-step cost is two plain memory writes. Each epoch emits a
    /// `train_epoch` journal event and the run closes with a `train`
    /// event. Full-data NLL at epoch boundaries (an extra pass each) is
    /// opt-in via [`TrainConfig::epoch_nll_every`]; the final epoch's
    /// NLL is always reported, reusing the end-of-run pass.
    pub fn fit_observed(
        &mut self,
        m: &LabelMatrix,
        cfg: &TrainConfig,
        telemetry: Option<&drybell_obs::Telemetry>,
    ) -> Result<TrainReport, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        if m.num_lfs() != self.alpha.len() {
            return Err(CoreError::LengthMismatch {
                left: m.num_lfs(),
                right: self.alpha.len(),
            });
        }
        if cfg.steps == 0 {
            return Err(CoreError::BadConfig("steps must be >= 1".into()));
        }
        if cfg.batch_size == 0 {
            return Err(CoreError::BadConfig("batch_size must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&cfg.class_prior)
            || cfg.class_prior == 0.0
            || cfg.class_prior == 1.0
        {
            return Err(CoreError::BadConfig(
                "class_prior must be in the open interval (0, 1)".into(),
            ));
        }
        self.learn_prior = cfg.learn_class_prior;
        self.eta = (cfg.class_prior / (1.0 - cfg.class_prior)).ln();
        self.alpha.iter_mut().for_each(|a| *a = cfg.init_alpha);
        self.beta.iter_mut().for_each(|b| *b = 0.0);

        let n = self.alpha.len();
        let dim = 2 * n + 1;
        let mut params = vec![0.0; dim];
        let mut grad = vec![0.0; dim];
        let mut opt = OptimState::new(cfg.optimizer, dim);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..m.num_examples()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        let mut history = Vec::new();
        // Per-step observations (latency histogram, row counter) buffer
        // in a thread-local shard and fold into the shared registry only
        // at epoch boundaries — the hot loop writes plain memory, no
        // atomics. Building the layout eagerly registers both
        // instruments, so snapshots match the old unbatched path even
        // for zero-step edge cases.
        let mut shard = telemetry.map(|t| {
            let mut layout = drybell_obs::ShardLayout::new();
            let step_slot = layout.slot_histogram(t.metrics().histogram("obs/train/step_us"));
            let rows_slot = layout.slot_counter(t.metrics().counter("obs/train/rows"));
            (Arc::new(layout).shard(), step_slot, rows_slot)
        });
        let _span = telemetry.map(|t| t.span("train/fit"));
        // Worker pool for gradient accumulation and full-data NLL scans.
        // The sparse active index pays off when most cells abstain; the
        // choice depends only on the matrix, so it cannot perturb the
        // byte-identical-across-thread-counts guarantee.
        let threads = cfg.num_threads.max(1);
        let active = (m.vote_density() < ACTIVE_INDEX_MAX_DENSITY).then(|| m.active_index());
        let active = active.as_ref();
        if let Some(t) = telemetry {
            t.metrics().gauge("obs/train/threads").set(threads as i64);
        }

        // Per-epoch accumulator: closed every time the shuffled order is
        // exhausted, and once more after the final step.
        let mut epochs: Vec<EpochStat> = Vec::new();
        let mut epoch_steps = 0usize;
        let mut epoch_grad_norm = 0.0f64;
        let mut epoch_step_norm = 0.0f64;
        let mut epoch_start = Instant::now();
        let mut prev_params = vec![0.0; dim];

        let mut rows = 0usize;
        let start = Instant::now();
        for step in 0..cfg.steps {
            let step_start = shard.as_ref().map(|_| Instant::now());
            // Draw the next mini-batch from the shuffled epoch order.
            let mut batch = Vec::with_capacity(cfg.batch_size);
            let mut wrapped = false;
            for _ in 0..cfg.batch_size.min(order.len()) {
                if cursor == order.len() {
                    order.shuffle(&mut rng);
                    cursor = 0;
                    wrapped = true;
                }
                batch.push(order[cursor]);
                cursor += 1;
            }
            if wrapped && epoch_steps > 0 {
                // Epoch-boundary NLL costs a full pass over the matrix;
                // it is opt-in so that observing a run does not multiply
                // its wall-clock (the final epoch gets the end-of-run
                // NLL for free below).
                let nll = if telemetry.is_some()
                    && cfg.epoch_nll_every > 0
                    && epochs.len().is_multiple_of(cfg.epoch_nll_every)
                {
                    Some(self.nll_inner(m, active, threads)?)
                } else {
                    None
                };
                if let (Some((s, ..)), Some(t)) = (&mut shard, telemetry) {
                    s.flush_into(t);
                }
                epochs.push(EpochStat {
                    epoch: epochs.len(),
                    steps: epoch_steps,
                    mean_grad_norm: epoch_grad_norm / epoch_steps as f64,
                    mean_step_norm: epoch_step_norm / epoch_steps as f64,
                    seconds: epoch_start.elapsed().as_secs_f64(),
                    nll,
                });
                epoch_steps = 0;
                epoch_grad_norm = 0.0;
                epoch_step_norm = 0.0;
                epoch_start = Instant::now();
            }
            self.grad_batch(m, active, &batch, cfg.l2, threads, &mut grad);
            rows += batch.len();
            if let Some((s, _, rows_slot)) = &mut shard {
                s.tally(*rows_slot, batch.len() as u64);
            }
            params[..n].copy_from_slice(&self.alpha);
            params[n..2 * n].copy_from_slice(&self.beta);
            params[2 * n] = self.eta;
            prev_params.copy_from_slice(&params);
            opt.step(&mut params, &grad);
            if params.iter().any(|p| !p.is_finite()) {
                return Err(CoreError::Diverged { step });
            }
            self.alpha.copy_from_slice(&params[..n]);
            self.beta.copy_from_slice(&params[n..2 * n]);
            if self.learn_prior {
                self.eta = params[2 * n];
            }
            epoch_steps += 1;
            epoch_grad_norm += grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            epoch_step_norm += params
                .iter()
                .zip(&prev_params)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
            if cfg.record_every > 0 && (step % cfg.record_every == 0 || step + 1 == cfg.steps) {
                history.push((step, self.nll_inner(m, active, threads)?));
            }
            if let (Some((s, step_slot, _)), Some(t0)) = (&mut shard, step_start) {
                s.observe_duration(*step_slot, t0.elapsed());
            }
        }
        if epoch_steps > 0 {
            epochs.push(EpochStat {
                epoch: epochs.len(),
                steps: epoch_steps,
                mean_grad_norm: epoch_grad_norm / epoch_steps as f64,
                mean_step_norm: epoch_step_norm / epoch_steps as f64,
                seconds: epoch_start.elapsed().as_secs_f64(),
                nll: None,
            });
        }
        if let (Some((s, ..)), Some(t)) = (&mut shard, telemetry) {
            s.flush_into(t);
        }
        let seconds = start.elapsed().as_secs_f64();
        let final_nll = self.nll_inner(m, active, threads)?;
        if telemetry.is_some() {
            // The end-of-run pass prices the final epoch's NLL for free
            // (parameters have not moved since the last step).
            if let Some(last) = epochs.last_mut() {
                last.nll = Some(final_nll);
            }
        }
        let report = TrainReport {
            steps: cfg.steps,
            final_nll,
            seconds,
            steps_per_sec: cfg.steps as f64 / seconds.max(1e-12),
            rows,
            rows_per_sec: rows as f64 / seconds.max(1e-12),
            loss_history: history,
            epochs,
        };
        if let Some(journal) = telemetry.and_then(drybell_obs::Telemetry::journal) {
            report.emit_to(journal);
        }
        Ok(report)
    }

    /// Start an incremental (streaming) training run: perform the same
    /// one-time initialization [`GenerativeModel::fit`] does — class
    /// prior from `cfg`, `α` reset to `init_alpha`, `β` to zero — and
    /// return fresh optimizer state for [`GenerativeModel::fit_incremental`]
    /// to carry across arriving mini-batches.
    pub fn begin_incremental(&mut self, cfg: &TrainConfig) -> Result<IncrementalState, CoreError> {
        if cfg.batch_size == 0 {
            return Err(CoreError::BadConfig("batch_size must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&cfg.class_prior)
            || cfg.class_prior == 0.0
            || cfg.class_prior == 1.0
        {
            return Err(CoreError::BadConfig(
                "class_prior must be in the open interval (0, 1)".into(),
            ));
        }
        self.learn_prior = cfg.learn_class_prior;
        self.eta = (cfg.class_prior / (1.0 - cfg.class_prior)).ln();
        self.alpha.iter_mut().for_each(|a| *a = cfg.init_alpha);
        self.beta.iter_mut().for_each(|b| *b = 0.0);
        let dim = 2 * self.alpha.len() + 1;
        Ok(IncrementalState {
            opt: OptimState::new(cfg.optimizer, dim),
            dim,
            steps: 0,
            rows: 0,
        })
    }

    /// Fold one arriving mini-batch (shard) of label-matrix rows into the
    /// model, warm-starting from the current parameters and the carried
    /// optimizer moments instead of refitting from scratch.
    ///
    /// Takes `cfg.steps` gradient steps over `m`'s rows in **fixed row
    /// order** — batch `k` is rows `[k·B, (k+1)·B)` modulo the shard,
    /// wrapping with no reshuffle — so the incremental trajectory is
    /// deterministic: replaying the same shard sequence through the same
    /// state reproduces parameters byte-for-byte (no RNG is involved,
    /// unlike `fit`'s shuffled epochs). `cfg.optimizer` and
    /// `cfg.init_alpha`/`cfg.class_prior` are only honored by
    /// [`GenerativeModel::begin_incremental`]; this call uses the carried
    /// optimizer state and current parameters.
    ///
    /// Returns a [`TrainReport`] scoped to this fold: `final_nll` is the
    /// mean NLL over **this shard**, and one [`EpochStat`] is closed per
    /// completed pass over the shard's rows.
    pub fn fit_incremental(
        &mut self,
        m: &LabelMatrix,
        cfg: &TrainConfig,
        state: &mut IncrementalState,
    ) -> Result<TrainReport, CoreError> {
        if m.is_empty() {
            return Err(CoreError::EmptyMatrix);
        }
        if m.num_lfs() != self.alpha.len() {
            return Err(CoreError::LengthMismatch {
                left: m.num_lfs(),
                right: self.alpha.len(),
            });
        }
        if cfg.steps == 0 {
            return Err(CoreError::BadConfig("steps must be >= 1".into()));
        }
        if cfg.batch_size == 0 {
            return Err(CoreError::BadConfig("batch_size must be >= 1".into()));
        }
        let n = self.alpha.len();
        let dim = 2 * n + 1;
        if state.dim != dim {
            return Err(CoreError::LengthMismatch {
                left: state.dim,
                right: dim,
            });
        }
        let threads = cfg.num_threads.max(1);
        let active = (m.vote_density() < ACTIVE_INDEX_MAX_DENSITY).then(|| m.active_index());
        let active = active.as_ref();

        let mut params = vec![0.0; dim];
        let mut prev_params = vec![0.0; dim];
        let mut grad = vec![0.0; dim];
        let num_rows = m.num_examples();
        let mut cursor = 0usize;
        let mut epochs: Vec<EpochStat> = Vec::new();
        let mut epoch_steps = 0usize;
        let mut epoch_grad_norm = 0.0f64;
        let mut epoch_step_norm = 0.0f64;
        let mut epoch_start = Instant::now();
        let mut rows = 0usize;
        let start = Instant::now();
        for step in 0..cfg.steps {
            // Fixed-order batch draw: no shuffle, wrap at the end.
            let mut batch = Vec::with_capacity(cfg.batch_size);
            let mut wrapped = false;
            for _ in 0..cfg.batch_size.min(num_rows) {
                if cursor == num_rows {
                    cursor = 0;
                    wrapped = true;
                }
                batch.push(cursor);
                cursor += 1;
            }
            if wrapped && epoch_steps > 0 {
                epochs.push(EpochStat {
                    epoch: epochs.len(),
                    steps: epoch_steps,
                    mean_grad_norm: epoch_grad_norm / epoch_steps as f64,
                    mean_step_norm: epoch_step_norm / epoch_steps as f64,
                    seconds: epoch_start.elapsed().as_secs_f64(),
                    nll: None,
                });
                epoch_steps = 0;
                epoch_grad_norm = 0.0;
                epoch_step_norm = 0.0;
                epoch_start = Instant::now();
            }
            self.grad_batch(m, active, &batch, cfg.l2, threads, &mut grad);
            rows += batch.len();
            params[..n].copy_from_slice(&self.alpha);
            params[n..2 * n].copy_from_slice(&self.beta);
            params[2 * n] = self.eta;
            prev_params.copy_from_slice(&params);
            state.opt.step(&mut params, &grad);
            if params.iter().any(|p| !p.is_finite()) {
                return Err(CoreError::Diverged { step });
            }
            self.alpha.copy_from_slice(&params[..n]);
            self.beta.copy_from_slice(&params[n..2 * n]);
            if self.learn_prior {
                self.eta = params[2 * n];
            }
            epoch_steps += 1;
            epoch_grad_norm += grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            epoch_step_norm += params
                .iter()
                .zip(&prev_params)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
        }
        if epoch_steps > 0 {
            epochs.push(EpochStat {
                epoch: epochs.len(),
                steps: epoch_steps,
                mean_grad_norm: epoch_grad_norm / epoch_steps as f64,
                mean_step_norm: epoch_step_norm / epoch_steps as f64,
                seconds: epoch_start.elapsed().as_secs_f64(),
                nll: None,
            });
        }
        state.steps += cfg.steps;
        state.rows += rows;
        let seconds = start.elapsed().as_secs_f64();
        let final_nll = self.nll_inner(m, active, threads)?;
        Ok(TrainReport {
            steps: cfg.steps,
            final_nll,
            seconds,
            steps_per_sec: cfg.steps as f64 / seconds.max(1e-12),
            rows,
            rows_per_sec: rows as f64 / seconds.max(1e-12),
            loss_history: Vec::new(),
            epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::Label;
    use rand::Rng;

    /// Brute-force marginal NLL computed directly from the probabilistic
    /// definition of the model, without any of the log-space shortcuts.
    fn brute_force_nll(m: &LabelMatrix, alpha: &[f64], beta: &[f64], eta: f64) -> f64 {
        let pi_pos = sigmoid(eta);
        let mut total = 0.0;
        for row in m.rows() {
            let mut marginal = 0.0;
            for (y, pi) in [(1i8, pi_pos), (-1i8, 1.0 - pi_pos)] {
                let mut p = pi;
                for (j, &l) in row.iter().enumerate() {
                    let a = (alpha[j] + beta[j]).exp();
                    let b = (-alpha[j] + beta[j]).exp();
                    let d = a + b + 1.0;
                    p *= match l {
                        0 => 1.0 / d,
                        l if l == y => a / d,
                        _ => b / d,
                    };
                }
                marginal += p;
            }
            total -= marginal.ln();
        }
        total / m.num_examples() as f64
    }

    fn random_matrix(m: usize, n: usize, seed: u64) -> LabelMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(m * n);
        for _ in 0..m * n {
            data.push([-1i8, 0, 0, 1][rng.gen_range(0..4)]);
        }
        LabelMatrix::from_raw(n, data).unwrap()
    }

    #[test]
    fn nll_matches_brute_force_marginalization() {
        let m = random_matrix(40, 5, 7);
        let mut model = GenerativeModel::new(5, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let alpha: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..1.5)).collect();
        let beta: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let eta = 0.3;
        model.set_params(alpha.clone(), beta.clone(), eta);
        let fast = model.nll(&m).unwrap();
        let slow = brute_force_nll(&m, &alpha, &beta, eta);
        assert!((fast - slow).abs() < 1e-10, "fast={fast} slow={slow}");
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let m = random_matrix(25, 4, 3);
        let mut model = GenerativeModel::new(4, 0.0);
        let alpha = vec![0.4, -0.2, 0.9, 0.1];
        let beta = vec![0.2, -0.5, 0.0, 0.7];
        let eta = -0.4;
        model.set_params(alpha.clone(), beta.clone(), eta);
        model.learn_prior = true;
        let l2 = 0.01;
        let grad = model.full_gradient(&m, l2).unwrap();
        let h = 1e-6;
        let f = |al: &[f64], be: &[f64], et: f64| {
            let l2_term: f64 = al.iter().chain(be).map(|p| 0.5 * l2 * p * p).sum();
            brute_force_nll(&m, al, be, et) + l2_term
        };
        for j in 0..4 {
            let mut ap = alpha.clone();
            ap[j] += h;
            let mut am = alpha.clone();
            am[j] -= h;
            let fd = (f(&ap, &beta, eta) - f(&am, &beta, eta)) / (2.0 * h);
            assert!(
                (grad[j] - fd).abs() < 1e-5,
                "alpha[{j}]: {} vs {fd}",
                grad[j]
            );

            let mut bp = beta.clone();
            bp[j] += h;
            let mut bm = beta.clone();
            bm[j] -= h;
            let fd = (f(&alpha, &bp, eta) - f(&alpha, &bm, eta)) / (2.0 * h);
            assert!(
                (grad[4 + j] - fd).abs() < 1e-5,
                "beta[{j}]: {} vs {fd}",
                grad[4 + j]
            );
        }
        let fd = (f(&alpha, &beta, eta + h) - f(&alpha, &beta, eta - h)) / (2.0 * h);
        assert!((grad[8] - fd).abs() < 1e-5, "eta: {} vs {fd}", grad[8]);
    }

    /// Generate a planted-truth dataset: true labels Y, then each LF votes
    /// with its own propensity and accuracy.
    fn planted(
        m: usize,
        accs: &[f64],
        props: &[f64],
        pos_rate: f64,
        seed: u64,
    ) -> (LabelMatrix, Vec<Label>) {
        let n = accs.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mat = LabelMatrix::with_capacity(n, m);
        let mut gold = Vec::with_capacity(m);
        for _ in 0..m {
            let y = if rng.gen_bool(pos_rate) {
                Label::Positive
            } else {
                Label::Negative
            };
            let mut row = Vec::with_capacity(n);
            for j in 0..n {
                let v = if !rng.gen_bool(props[j]) {
                    0
                } else if rng.gen_bool(accs[j]) {
                    y.as_i8()
                } else {
                    -y.as_i8()
                };
                row.push(v);
            }
            mat.push_raw_row(&row).unwrap();
            gold.push(y);
        }
        (mat, gold)
    }

    /// Slice a matrix's rows `[lo, hi)` into a standalone shard matrix.
    fn row_slice(m: &LabelMatrix, lo: usize, hi: usize) -> LabelMatrix {
        let mut out = LabelMatrix::with_capacity(m.num_lfs(), hi - lo);
        for (i, row) in m.rows().enumerate() {
            if i >= lo && i < hi {
                out.push_raw_row(row).unwrap();
            }
        }
        out
    }

    #[test]
    fn incremental_replay_is_byte_identical() {
        let accs = [0.9, 0.7, 0.8];
        let props = [0.7, 0.5, 0.6];
        let (mat, _) = planted(600, &accs, &props, 0.5, 9);
        let shards: Vec<LabelMatrix> = (0..3)
            .map(|k| row_slice(&mat, k * 200, (k + 1) * 200))
            .collect();
        let cfg = TrainConfig {
            steps: 40,
            batch_size: 32,
            ..TrainConfig::default()
        };
        let run = || {
            let mut model = GenerativeModel::new(3, cfg.init_alpha);
            let mut state = model.begin_incremental(&cfg).unwrap();
            for shard in &shards {
                model.fit_incremental(shard, &cfg, &mut state).unwrap();
            }
            (model, state)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        let bits = |m: &GenerativeModel| -> Vec<u64> {
            m.alphas()
                .iter()
                .chain(m.betas())
                .chain(std::iter::once(&m.eta()))
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "replayed stream must be byte-identical");
        assert_eq!(sa.steps(), 120);
        assert_eq!(sa.steps(), sb.steps());
        assert_eq!(sa.rows(), sb.rows());
    }

    #[test]
    fn incremental_warm_start_matches_batch_refit_within_tolerance() {
        let accs = [0.9, 0.75, 0.6, 0.85];
        let props = [0.8, 0.5, 0.9, 0.4];
        let (mat, _) = planted(4000, &accs, &props, 0.5, 21);
        // Batch refit over the full matrix.
        let cfg = TrainConfig {
            steps: 3000,
            batch_size: 128,
            ..TrainConfig::default()
        };
        let mut refit = GenerativeModel::new(4, cfg.init_alpha);
        refit.fit(&mat, &cfg).unwrap();
        // Incremental: the same rows arrive as 8 shards; each fold takes
        // enough fixed-order steps that the stream sees a comparable
        // number of gradient updates in total.
        // Robbins–Monro style decay: fold k runs at lr/(k+1). A constant
        // rate would converge to the *last* shard's sampling-noise
        // optimum; decaying makes the trajectory average across shards
        // and land near the full-data optimum.
        let mut inc = GenerativeModel::new(4, cfg.init_alpha);
        let fold_cfg = TrainConfig {
            steps: 400,
            batch_size: 128,
            ..TrainConfig::default()
        };
        let mut state = inc.begin_incremental(&fold_cfg).unwrap();
        for k in 0..8 {
            state.set_optimizer(Optimizer::adam(0.05 / (k + 1) as f64));
            let shard = row_slice(&mat, k * 500, (k + 1) * 500);
            inc.fit_incremental(&shard, &fold_cfg, &mut state).unwrap();
        }
        let nll_refit = refit.nll(&mat).unwrap();
        let nll_inc = inc.nll(&mat).unwrap();
        assert!(
            (nll_inc - nll_refit).abs() < 0.02,
            "incremental NLL {nll_inc} vs refit {nll_refit}"
        );
        for (j, (a, b)) in refit
            .learned_accuracies()
            .iter()
            .zip(inc.learned_accuracies())
            .enumerate()
        {
            // Looser than the NLL gap: per-LF accuracy carries the
            // shard-level sampling noise a streaming pass cannot avg out.
            assert!(
                (a - b).abs() < 0.075,
                "lf {j}: refit accuracy {a} vs incremental {b}"
            );
        }
    }

    #[test]
    fn incremental_folds_warm_start_instead_of_resetting() {
        let (mat, _) = planted(400, &[0.9, 0.8], &[0.8, 0.7], 0.5, 5);
        let cfg = TrainConfig {
            steps: 50,
            batch_size: 64,
            ..TrainConfig::default()
        };
        let mut model = GenerativeModel::new(2, cfg.init_alpha);
        let mut state = model.begin_incremental(&cfg).unwrap();
        model.fit_incremental(&mat, &cfg, &mut state).unwrap();
        let after_first = model.alphas().to_vec();
        assert!(
            after_first
                .iter()
                .any(|&a| (a - cfg.init_alpha).abs() > 1e-6),
            "first fold must move the parameters"
        );
        model.fit_incremental(&mat, &cfg, &mut state).unwrap();
        assert_ne!(
            model.alphas(),
            &after_first[..],
            "second fold must continue from the first, not reset"
        );
        assert_eq!(state.steps(), 100);
        // A shard with the wrong LF count is rejected.
        let bad = random_matrix(10, 3, 1);
        assert!(matches!(
            model.fit_incremental(&bad, &cfg, &mut state),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn recovers_planted_accuracies_without_gold_labels() {
        let accs = [0.9, 0.75, 0.6, 0.85, 0.95];
        let props = [0.8, 0.5, 0.9, 0.4, 0.6];
        let (mat, _gold) = planted(16000, &accs, &props, 0.5, 42);
        let mut model = GenerativeModel::new(5, 0.7);
        let cfg = TrainConfig {
            steps: 6000,
            batch_size: 128,
            optimizer: Optimizer::adam(0.05),
            ..TrainConfig::default()
        };
        model.fit(&mat, &cfg).unwrap();
        let learned = model.learned_accuracies();
        for (j, (&la, &ta)) in learned.iter().zip(&accs).enumerate() {
            assert!(
                (la - ta).abs() < 0.12,
                "LF {j}: learned {la:.3} vs true {ta:.3}"
            );
        }
        let lp = model.learned_propensities();
        for (j, (&l, &t)) in lp.iter().zip(&props).enumerate() {
            assert!((l - t).abs() < 0.05, "prop {j}: {l:.3} vs {t:.3}");
        }
    }

    #[test]
    fn posteriors_beat_majority_vote_on_skewed_accuracies() {
        // One excellent LF vs three weak ones that often gang up on it:
        // majority vote follows the mob, the generative model learns to
        // trust the good source.
        let accs = [0.95, 0.58, 0.58, 0.58];
        let props = [0.9, 0.9, 0.9, 0.9];
        let (mat, gold) = planted(6000, &accs, &props, 0.5, 9);
        let mut model = GenerativeModel::new(4, 0.7);
        model
            .fit(
                &mat,
                &TrainConfig {
                    steps: 2500,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        let post = model.predict_proba(&mat);
        let model_acc = post
            .iter()
            .zip(&gold)
            .filter(|(p, y)| Label::from_prob(**p) == **y)
            .count() as f64
            / gold.len() as f64;
        let mv_acc = mat
            .rows()
            .zip(&gold)
            .filter(|(row, y)| {
                let s: i32 = row.iter().map(|&v| i32::from(v)).sum();
                s != 0 && (s > 0) == (**y == Label::Positive)
            })
            .count() as f64
            / gold.len() as f64;
        assert!(
            model_acc > mv_acc + 0.02,
            "model {model_acc:.3} should beat majority vote {mv_acc:.3}"
        );
    }

    #[test]
    fn fit_reports_epoch_accounting() {
        // 200 examples, batch 64 → ~3.2 steps per epoch; 20 steps cover
        // several epochs.
        let accs = [0.9, 0.7];
        let props = [0.8, 0.8];
        let (mat, _) = planted(200, &accs, &props, 0.5, 7);
        let mut model = GenerativeModel::new(2, 0.7);
        let cfg = TrainConfig {
            steps: 20,
            batch_size: 64,
            ..TrainConfig::default()
        };
        let report = model.fit(&mat, &cfg).unwrap();
        assert!(report.epochs.len() >= 2, "expected multiple epochs");
        let total_steps: usize = report.epochs.iter().map(|e| e.steps).sum();
        assert_eq!(total_steps, 20);
        for e in &report.epochs {
            assert!(e.mean_grad_norm.is_finite() && e.mean_grad_norm >= 0.0);
            assert!(e.mean_step_norm.is_finite() && e.mean_step_norm > 0.0);
            assert!(e.seconds >= 0.0);
            assert!(e.nll.is_none(), "unobserved runs skip per-epoch NLL");
        }
        assert_eq!(report.epochs[0].epoch, 0);
        assert_eq!(report.epochs.last().unwrap().epoch, report.epochs.len() - 1);
    }

    #[test]
    fn observed_fit_emits_epochs_and_journal() {
        let accs = [0.9, 0.7];
        let props = [0.8, 0.8];
        let (mat, _) = planted(200, &accs, &props, 0.5, 7);
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        let telemetry = drybell_obs::Telemetry::with_journal(journal);
        let cfg = TrainConfig {
            steps: 20,
            batch_size: 64,
            epoch_nll_every: 1,
            ..TrainConfig::default()
        };
        let mut model = GenerativeModel::new(2, 0.7);
        let report = model.fit_observed(&mat, &cfg, Some(&telemetry)).unwrap();
        // Observed runs fill in per-epoch NLL, and it should not blow up
        // as training proceeds.
        let nlls: Vec<f64> = report.epochs.iter().map(|e| e.nll.unwrap()).collect();
        assert!(nlls.iter().all(|v| v.is_finite()));
        assert!(nlls.last().unwrap() <= &(nlls[0] + 1e-6));
        // Metrics: one step_us sample per gradient step, and the span set.
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.histogram("obs/train/step_us").unwrap().count(), 20);
        assert!(telemetry.spans().snapshot().get("train/fit").is_some());
        // Journal: one train_epoch per epoch plus the closing train event.
        let events = buffer.parsed_lines().unwrap();
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("kind").and_then(|k| k.as_str()))
            .collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == "train_epoch").count(),
            report.epochs.len()
        );
        assert_eq!(kinds.last(), Some(&"train"));
        // Deterministic training: observed and unobserved runs converge to
        // the same parameters.
        let mut plain = GenerativeModel::new(2, 0.7);
        plain.fit(&mat, &cfg).unwrap();
        for (a, b) in model.alphas().iter().zip(plain.alphas()) {
            assert!((a - b).abs() < 1e-12, "telemetry must not perturb training");
        }
    }

    #[test]
    fn abstain_only_row_returns_prior() {
        let mut model = GenerativeModel::new(3, 0.5);
        model.set_params(vec![0.5; 3], vec![0.0; 3], 0.0);
        assert!((model.posterior(&[0, 0, 0]) - 0.5).abs() < 1e-12);
        model.set_params(vec![0.5; 3], vec![0.0; 3], 1.2);
        assert!((model.posterior(&[0, 0, 0]) - sigmoid(1.2)).abs() < 1e-12);
    }

    #[test]
    fn posterior_flips_with_votes_under_uniform_prior() {
        let mut model = GenerativeModel::new(3, 0.0);
        model.set_params(vec![0.9, 0.3, 0.6], vec![0.1, -0.2, 0.0], 0.0);
        let rows: [[i8; 3]; 3] = [[1, -1, 0], [1, 1, 1], [0, -1, 1]];
        for row in rows {
            let flipped: Vec<i8> = row.iter().map(|v| -v).collect();
            let p = model.posterior(&row);
            let q = model.posterior(&flipped);
            assert!((p + q - 1.0).abs() < 1e-10, "p={p} q={q}");
        }
    }

    #[test]
    fn fit_validates_inputs() {
        let mat = random_matrix(10, 3, 0);
        let mut model = GenerativeModel::new(4, 0.7);
        assert!(matches!(
            model.fit(&mat, &TrainConfig::default()),
            Err(CoreError::LengthMismatch { .. })
        ));
        let mut model = GenerativeModel::new(3, 0.7);
        let bad = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(matches!(
            model.fit(&mat, &bad),
            Err(CoreError::BadConfig(_))
        ));
        // Regression: steps == 0 used to "succeed" and report a final
        // NLL from untrained parameters; now it is rejected up front.
        let bad = TrainConfig {
            steps: 0,
            ..TrainConfig::default()
        };
        assert!(matches!(
            model.fit(&mat, &bad),
            Err(CoreError::BadConfig(_))
        ));
        let bad = TrainConfig {
            class_prior: 1.0,
            ..TrainConfig::default()
        };
        assert!(matches!(
            model.fit(&mat, &bad),
            Err(CoreError::BadConfig(_))
        ));
        let empty = LabelMatrix::new(3);
        assert!(matches!(
            model.fit(&empty, &TrainConfig::default()),
            Err(CoreError::EmptyMatrix)
        ));
    }

    #[test]
    fn empty_inputs_cannot_produce_nan_gradients() {
        // Regression: `grad_batch` divided by `batch.len()` unguarded, so
        // a zero-row matrix turned the gradient into NaNs instead of an
        // error. The empty-batch guard + the typed error close both.
        let model = GenerativeModel::new(3, 0.7);
        let empty = LabelMatrix::new(3);
        assert!(matches!(
            model.full_gradient(&empty, 1e-3),
            Err(CoreError::EmptyMatrix)
        ));
        let mat = random_matrix(8, 3, 2);
        let grad = model.full_gradient(&mat, 1e-3).unwrap();
        assert!(grad.iter().all(|g| g.is_finite()));
        // Shape mismatches are typed errors too, not index panics.
        let model = GenerativeModel::new(5, 0.7);
        assert!(matches!(
            model.full_gradient(&mat, 1e-3),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rows_accounting_matches_steps_times_batch() {
        let accs = [0.9, 0.7];
        let props = [0.8, 0.8];
        let (mat, _) = planted(500, &accs, &props, 0.5, 3);
        let mut model = GenerativeModel::new(2, 0.7);
        let report = model
            .fit(
                &mat,
                &TrainConfig {
                    steps: 10,
                    batch_size: 32,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.rows, 10 * 32);
        assert!(report.rows_per_sec > 0.0);
    }

    #[test]
    fn learned_class_prior_tracks_skew() {
        let accs = [0.85, 0.8, 0.8];
        let props = [0.9, 0.9, 0.9];
        let (mat, _) = planted(6000, &accs, &props, 0.2, 11);
        let mut model = GenerativeModel::new(3, 0.7);
        let cfg = TrainConfig {
            steps: 3000,
            learn_class_prior: true,
            ..TrainConfig::default()
        };
        model.fit(&mat, &cfg).unwrap();
        let prior = model.class_prior();
        assert!(
            (prior - 0.2).abs() < 0.1,
            "learned prior {prior:.3}, planted 0.2"
        );
    }

    #[test]
    fn loss_history_is_decreasing_overall() {
        let accs = [0.8, 0.7, 0.9];
        let props = [0.7, 0.7, 0.7];
        let (mat, _) = planted(2000, &accs, &props, 0.5, 5);
        let mut model = GenerativeModel::new(3, 0.2);
        let cfg = TrainConfig {
            steps: 800,
            record_every: 100,
            ..TrainConfig::default()
        };
        let report = model.fit(&mat, &cfg).unwrap();
        assert!(report.loss_history.len() >= 2);
        let first = report.loss_history.first().unwrap().1;
        let last = report.loss_history.last().unwrap().1;
        assert!(last < first, "NLL should drop: {first} -> {last}");
        assert!(report.final_nll.is_finite());
        assert!(report.steps_per_sec > 0.0);
    }
}
