//! Labeling-function diagnostics.
//!
//! §3.3 of the paper highlights that the generative model's estimated
//! accuracies "were found to be independently useful for identifying
//! previously unknown low-quality sources (which were then either fixed or
//! removed)". This module assembles that report: per-LF coverage, overlap,
//! conflict (Snorkel's classic statistics), the model's learned accuracy,
//! and — when a hand-labeled development set is available — the empirical
//! accuracy for comparison.

// drybell-lint: allow-file(no-panic-index) — dense numeric kernel: loop bounds are derived from the matrix shape once and invariant; .get() in the inner loops would hide real shape bugs and cost the hot path

use crate::error::CoreError;
use crate::generative::GenerativeModel;
use crate::matrix::LabelMatrix;
use crate::vote::Label;

/// Diagnostics for one labeling function.
#[derive(Debug, Clone, PartialEq)]
pub struct LfSummary {
    /// Index of the LF (column in the label matrix).
    pub index: usize,
    /// Display name, if the caller provided one.
    pub name: String,
    /// Fraction of examples the LF voted on.
    pub coverage: f64,
    /// Fraction of examples where it voted alongside another LF.
    pub overlap: f64,
    /// Fraction of examples where it disagreed with another voting LF.
    pub conflict: f64,
    /// The generative model's learned accuracy `σ(2α_j)`.
    pub learned_accuracy: f64,
    /// The generative model's learned non-abstain propensity.
    pub learned_propensity: f64,
    /// Accuracy measured against dev-set gold labels, if provided and the
    /// LF voted at least once on the dev set.
    pub empirical_accuracy: Option<f64>,
}

/// A full diagnostic report over all LFs.
#[derive(Debug, Clone)]
pub struct LfReport {
    /// One summary per labeling function.
    pub summaries: Vec<LfSummary>,
    /// Fraction of examples with at least one vote.
    pub label_density: f64,
}

impl LfReport {
    /// Build a report from a label matrix and a fitted generative model.
    ///
    /// `names` may be empty (indices are used) or must match the LF count.
    /// `dev` optionally supplies `(dev matrix, gold labels)` for empirical
    /// accuracies; the dev matrix must have the same LF columns.
    pub fn build(
        m: &LabelMatrix,
        model: &GenerativeModel,
        names: &[String],
        dev: Option<(&LabelMatrix, &[Label])>,
    ) -> Result<LfReport, CoreError> {
        let n = m.num_lfs();
        if model.num_lfs() != n {
            return Err(CoreError::LengthMismatch {
                left: model.num_lfs(),
                right: n,
            });
        }
        if !names.is_empty() && names.len() != n {
            return Err(CoreError::LengthMismatch {
                left: names.len(),
                right: n,
            });
        }
        let accs = model.learned_accuracies();
        let props = model.learned_propensities();
        let mut summaries = Vec::with_capacity(n);
        for j in 0..n {
            let empirical = match dev {
                Some((dm, gold)) => dm.empirical_accuracy(j, gold)?,
                None => None,
            };
            summaries.push(LfSummary {
                index: j,
                name: names.get(j).cloned().unwrap_or_else(|| format!("lf_{j}")),
                coverage: m.coverage(j),
                overlap: m.overlap(j),
                conflict: m.conflict(j),
                learned_accuracy: accs[j],
                learned_propensity: props[j],
                empirical_accuracy: empirical,
            });
        }
        Ok(LfReport {
            summaries,
            label_density: m.label_density(),
        })
    }

    /// LFs whose learned accuracy falls below `threshold` — the "previously
    /// unknown low-quality sources" workflow from §3.3.
    pub fn low_quality(&self, threshold: f64) -> Vec<&LfSummary> {
        self.summaries
            .iter()
            .filter(|s| s.learned_accuracy < threshold)
            .collect()
    }

    /// Render the report as a JSON object (the `--json` mode of the
    /// diagnostics binaries). Absent empirical accuracies render as
    /// `null`.
    pub fn to_json(&self) -> drybell_obs::Json {
        use drybell_obs::Json;
        let lfs = self
            .summaries
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("index", Json::from(s.index)),
                    ("name", Json::from(s.name.as_str())),
                    ("coverage", Json::from(s.coverage)),
                    ("overlap", Json::from(s.overlap)),
                    ("conflict", Json::from(s.conflict)),
                    ("learned_accuracy", Json::from(s.learned_accuracy)),
                    ("learned_propensity", Json::from(s.learned_propensity)),
                    (
                        "empirical_accuracy",
                        s.empirical_accuracy.map(Json::from).unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("label_density", Json::from(self.label_density)),
            ("lfs", Json::Arr(lfs)),
        ])
    }

    /// Emit one `lf_report` journal event carrying the same content as
    /// [`LfReport::to_json`] — the over-time monitoring record §3.3
    /// describes ("estimated accuracies … monitored over time"), which
    /// `drybell-doctor` diffs across runs.
    pub fn emit_to(&self, journal: &drybell_obs::RunJournal) {
        let json = self.to_json();
        let mut event = drybell_obs::Event::new("lf_report");
        if let drybell_obs::Json::Obj(fields) = json {
            for (key, value) in fields {
                event = event.field(&key, value);
            }
        }
        journal.emit(event);
    }

    /// Export the per-LF signals as registry-named gauges. Gauges are
    /// integers, so each fraction is scaled to parts-per-million
    /// (`lf/<name>/coverage_ppm` = ⌊coverage × 10⁶⌉), the fixed-point
    /// convention declared in `drybell_obs::naming::REGISTRY`.
    pub fn export_to(&self, metrics: &drybell_obs::MetricsRegistry) {
        let ppm = |x: f64| (x * 1e6).round() as i64;
        for s in &self.summaries {
            metrics
                .gauge(&format!("lf/{}/coverage_ppm", s.name))
                .set(ppm(s.coverage));
            metrics
                .gauge(&format!("lf/{}/overlap_ppm", s.name))
                .set(ppm(s.overlap));
            metrics
                .gauge(&format!("lf/{}/conflict_ppm", s.name))
                .set(ppm(s.conflict));
            metrics
                .gauge(&format!("lf/{}/learned_accuracy_ppm", s.name))
                .set(ppm(s.learned_accuracy));
        }
    }

    /// Render the report as an aligned text table (used by examples and the
    /// bench binaries).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>8} {:>9} {:>10} {:>9}\n",
            "LF", "cover", "overlap", "conflict", "acc(gen)", "prop(gen)", "acc(dev)"
        ));
        for s in &self.summaries {
            let dev = s
                .empirical_accuracy
                .map(|a| format!("{a:>9.3}"))
                .unwrap_or_else(|| format!("{:>9}", "-"));
            out.push_str(&format!(
                "{:<24} {:>8.3} {:>8.3} {:>8.3} {:>9.3} {:>10.3} {}\n",
                s.name,
                s.coverage,
                s.overlap,
                s.conflict,
                s.learned_accuracy,
                s.learned_propensity,
                dev
            ));
        }
        out.push_str(&format!("label density: {:.3}\n", self.label_density));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generative::TrainConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(m: usize, accs: &[f64], seed: u64) -> (LabelMatrix, Vec<Label>) {
        let n = accs.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mat = LabelMatrix::with_capacity(n, m);
        let mut gold = Vec::with_capacity(m);
        for _ in 0..m {
            let y = if rng.gen_bool(0.5) {
                Label::Positive
            } else {
                Label::Negative
            };
            let row: Vec<i8> = accs
                .iter()
                .map(|&a| {
                    if !rng.gen_bool(0.8) {
                        0
                    } else if rng.gen_bool(a) {
                        y.as_i8()
                    } else {
                        -y.as_i8()
                    }
                })
                .collect();
            mat.push_raw_row(&row).unwrap();
            gold.push(y);
        }
        (mat, gold)
    }

    #[test]
    fn report_flags_the_planted_bad_lf() {
        let accs = [0.9, 0.85, 0.45]; // LF 2 is worse than chance-ish
        let (mat, gold) = planted(5000, &accs, 21);
        let mut model = GenerativeModel::new(3, 0.7);
        model
            .fit(
                &mat,
                &TrainConfig {
                    steps: 2500,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        let names = vec!["good_a".into(), "good_b".into(), "broken".into()];
        let report = LfReport::build(&mat, &model, &names, Some((&mat, &gold))).unwrap();
        let low = report.low_quality(0.6);
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].name, "broken");
        // Learned accuracy should track empirical accuracy for all LFs.
        for s in &report.summaries {
            let emp = s.empirical_accuracy.unwrap();
            assert!(
                (s.learned_accuracy - emp).abs() < 0.1,
                "{}: learned {:.3} vs empirical {:.3}",
                s.name,
                s.learned_accuracy,
                emp
            );
        }
        let table = report.to_table();
        assert!(table.contains("broken"));
        assert!(table.contains("label density"));
    }

    #[test]
    fn to_json_round_trips_through_the_obs_parser() {
        let (mat, _) = planted(200, &[0.8, 0.8], 3);
        let mut model = GenerativeModel::new(2, 0.7);
        model
            .fit(
                &mat,
                &TrainConfig {
                    steps: 50,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        let names = vec!["a".into(), "b".into()];
        let report = LfReport::build(&mat, &model, &names, None).unwrap();
        let parsed = drybell_obs::parse_json(&report.to_json().to_line()).unwrap();
        let lfs = parsed.get("lfs").unwrap().items();
        assert_eq!(lfs.len(), 2);
        assert_eq!(lfs[0].get("name").and_then(|v| v.as_str()), Some("a"));
        assert!(lfs[0].get("empirical_accuracy").unwrap().is_null());
        let density = parsed
            .get("label_density")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!((density - report.label_density).abs() < 1e-9);
    }

    #[test]
    fn report_exports_registry_named_signals() {
        let (mat, _) = planted(200, &[0.8, 0.8], 3);
        let mut model = GenerativeModel::new(2, 0.7);
        model
            .fit(
                &mat,
                &TrainConfig {
                    steps: 50,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        let names = vec!["kw_a".into(), "kw_b".into()];
        let report = LfReport::build(&mat, &model, &names, None).unwrap();

        // Gauges land under the ppm fixed-point names from the registry.
        let metrics = drybell_obs::MetricsRegistry::new();
        report.export_to(&metrics);
        let snap = metrics.snapshot();
        for s in &report.summaries {
            let g = snap.gauge(&format!("lf/{}/coverage_ppm", s.name));
            assert_eq!(g, (s.coverage * 1e6).round() as i64, "{}", s.name);
            assert_eq!(
                snap.gauge(&format!("lf/{}/learned_accuracy_ppm", s.name)),
                (s.learned_accuracy * 1e6).round() as i64
            );
        }
        for (name, _) in &snap.gauges {
            assert!(
                drybell_obs::naming::is_registered(drybell_obs::naming::Family::Gauge, name),
                "unregistered gauge {name}"
            );
        }

        // The journal event mirrors to_json under kind lf_report.
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        report.emit_to(&journal);
        let events = buffer.parsed_lines().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").and_then(|k| k.as_str()),
            Some("lf_report")
        );
        let lfs = events[0].get("lfs").unwrap().items();
        assert_eq!(lfs.len(), 2);
        assert_eq!(lfs[0].get("name").and_then(|v| v.as_str()), Some("kw_a"));
        assert!(
            (events[0]
                .get("label_density")
                .and_then(|v| v.as_f64())
                .unwrap()
                - report.label_density)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn build_validates_shapes() {
        let (mat, _) = planted(50, &[0.8, 0.8], 1);
        let model = GenerativeModel::new(3, 0.7);
        assert!(LfReport::build(&mat, &model, &[], None).is_err());
        let model = GenerativeModel::new(2, 0.7);
        let bad_names = vec!["only_one".to_string()];
        assert!(LfReport::build(&mat, &model, &bad_names, None).is_err());
        assert!(LfReport::build(&mat, &model, &[], None).is_ok());
    }
}
