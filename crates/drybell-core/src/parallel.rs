//! Deterministic data parallelism for the label-model hot paths.
//!
//! The trainer's row scans (`grad_batch` accumulation, `predict_proba`,
//! `nll`) are sharded across a pool of scoped worker threads. Two rules
//! make the results **byte-identical at any thread count**, which the
//! determinism suite (`tests/parallel_determinism.rs`) pins down:
//!
//! 1. **Fixed chunking.** Work is split into [`CHUNK_ROWS`]-sized chunks
//!    whose boundaries depend only on the input length — never on the
//!    worker count. Workers pull chunk *indices* from an atomic cursor,
//!    so scheduling is dynamic but each chunk's result is a pure
//!    function of its index.
//! 2. **Fixed-order reduction.** Chunk results are combined with
//!    [`tree_reduce`], a pairwise reduction whose association order
//!    depends only on the chunk count. Floating-point addition is not
//!    associative, so a "whoever finishes first" reduction would make
//!    posteriors drift run-to-run; a fixed tree keeps them exact.
//!
//! Inputs shorter than one chunk (the paper's batch-64 training setting,
//! most unit tests) collapse to a single chunk and never spawn a thread,
//! so the small-batch fast path keeps its PR-1 performance profile.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows per work chunk. Large enough that a chunk's compute dwarfs the
/// scheduling overhead (one atomic fetch-add plus one mutex push), small
/// enough that a 100k-row matrix yields ~100 chunks for load balancing.
pub const CHUNK_ROWS: usize = 1024;

/// Number of fixed chunks covering `n` items.
pub fn num_chunks(n: usize) -> usize {
    n.div_ceil(CHUNK_ROWS)
}

/// The half-open item range of chunk `c` over `n` items.
fn chunk_range(c: usize, n: usize) -> Range<usize> {
    let start = c * CHUNK_ROWS;
    start..((start + CHUNK_ROWS).min(n))
}

/// Map every fixed chunk of `0..n` through `f` on up to `num_threads`
/// scoped workers, returning results in chunk order.
///
/// `f` receives `(chunk_index, item_range)` and must be a pure function
/// of them (plus captured shared state); chunk scheduling order is
/// nondeterministic but the returned vector is not. With one worker (or
/// one chunk) everything runs inline on the caller's thread.
pub fn map_chunks<T, F>(num_threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let chunks = num_chunks(n);
    let workers = num_threads.clamp(1, chunks.max(1));
    if workers == 1 {
        return (0..chunks).map(|c| f(c, chunk_range(c, n))).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(chunks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let out = f(c, chunk_range(c, n));
                // A poisoned lock only means another worker panicked
                // mid-push; the Vec is still structurally sound, and the
                // panic itself propagates out of the scope.
                let mut guard = match slots.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.push((c, out));
            });
        }
    });
    let mut collected = match slots.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    collected.sort_by_key(|&(c, _)| c);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Pairwise tree reduction in a fixed association order: adjacent pairs
/// `(0,1), (2,3), …` are combined, then the survivors are paired again,
/// until one value remains. The order depends only on `items.len()`, so
/// reducing the same chunk results always produces bit-identical output
/// regardless of how many workers computed them.
///
/// Returns `None` for an empty input.
pub fn tree_reduce<T>(mut items: Vec<T>, mut combine: impl FnMut(T, T) -> T) -> Option<T> {
    if items.is_empty() {
        return None;
    }
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_boundaries_cover_exactly() {
        for n in [
            0usize,
            1,
            CHUNK_ROWS - 1,
            CHUNK_ROWS,
            CHUNK_ROWS + 1,
            5 * CHUNK_ROWS + 7,
        ] {
            let mut covered = 0usize;
            for c in 0..num_chunks(n) {
                let r = chunk_range(c, n);
                assert_eq!(r.start, covered, "n={n} c={c}");
                assert!(r.end > r.start && r.end <= n);
                covered = r.end;
            }
            assert_eq!(covered, n, "chunks must tile 0..{n}");
        }
    }

    #[test]
    fn map_chunks_is_thread_count_invariant() {
        let n = 3 * CHUNK_ROWS + 123;
        let run = |threads| map_chunks(threads, n, |c, r| (c, r.start, r.end, r.len() as u64));
        let base = run(1);
        assert_eq!(base.len(), num_chunks(n));
        for threads in [2, 3, 8, 64] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_handles_empty_and_tiny_inputs() {
        assert!(map_chunks(4, 0, |c, _| c).is_empty());
        assert_eq!(map_chunks(8, 1, |_, r| r.len()), vec![1]);
    }

    #[test]
    fn tree_reduce_order_is_fixed() {
        // Combine into parenthesized strings: the association order must
        // match the documented adjacent-pairs tree exactly.
        let items: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let got = tree_reduce(items, |a, b| format!("({a}+{b})"));
        assert_eq!(got.as_deref(), Some("(((0+1)+(2+3))+4)"));
        assert_eq!(tree_reduce(Vec::<u32>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7u32], |a, b| a + b), Some(7));
    }

    #[test]
    fn float_sums_are_byte_identical_across_thread_counts() {
        let n = 10 * CHUNK_ROWS + 311;
        let xs: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 7.0)
            .collect();
        let sum_with = |threads| {
            let partials = map_chunks(threads, n, |_, r| {
                xs.get(r).map(|s| s.iter().sum::<f64>()).unwrap_or(0.0)
            });
            tree_reduce(partials, |a, b| a + b).unwrap_or(0.0)
        };
        let base = sum_with(1).to_bits();
        for threads in [2, 4, 8] {
            assert_eq!(sum_with(threads).to_bits(), base, "threads={threads}");
        }
    }
}
