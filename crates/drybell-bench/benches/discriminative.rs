//! Criterion benchmarks for the discriminative stage: FTRL logistic
//! regression at the paper's hyperparameters, the events DNN, and the
//! servable featurization.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drybell_features::FeatureHasher;
use drybell_ml::{FtrlConfig, LogisticRegression, Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sparse_dataset(n: usize, seed: u64) -> Vec<(drybell_features::SparseVector, f64)> {
    let h = FeatureHasher::new(1 << 18);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.gen_bool(0.5);
            let mut toks: Vec<String> = (0..40)
                .map(|_| format!("w{}", rng.gen_range(0..5_000)))
                .collect();
            toks.push(if y {
                "signal_pos".into()
            } else {
                "signal_neg".into()
            });
            (
                h.bag_of_words(&toks).l2_normalized(),
                f64::from(u8::from(y)),
            )
        })
        .collect()
}

fn bench_ftrl(c: &mut Criterion) {
    let data = sparse_dataset(10_000, 1);
    let mut group = c.benchmark_group("ftrl");
    // 500 iterations × batch 64 = 32K example updates per sample.
    group.throughput(Throughput::Elements(500 * 64));
    group.bench_function("train_500_iters_b64", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::new(
                1 << 18,
                FtrlConfig {
                    iterations: 500,
                    ..FtrlConfig::default()
                },
            );
            m.fit(&data).unwrap();
            black_box(m.bias());
        })
    });
    let mut model = LogisticRegression::new(
        1 << 18,
        FtrlConfig {
            iterations: 200,
            ..FtrlConfig::default()
        },
    );
    model.fit(&data).unwrap();
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("predict_10k", |b| {
        b.iter(|| {
            let s: f64 = data.iter().map(|(x, _)| model.predict_proba(x)).sum();
            black_box(s);
        })
    });
    group.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<(Vec<f64>, f64)> = (0..5_000)
        .map(|_| {
            let y = rng.gen_bool(0.5);
            let x: Vec<f64> = (0..16)
                .map(|d| if y && d % 2 == 0 { 1.0 } else { 0.0 } + rng.gen::<f64>())
                .collect();
            (x, f64::from(u8::from(y)))
        })
        .collect();
    let mut group = c.benchmark_group("mlp");
    group.throughput(Throughput::Elements(100 * 64));
    group.bench_function("train_100_iters_b64_32x16", |b| {
        b.iter(|| {
            let mut net = Mlp::new(
                16,
                MlpConfig {
                    iterations: 100,
                    ..MlpConfig::default()
                },
            );
            net.fit(&data);
            black_box(net.predict_proba(&data[0].0));
        })
    });
    group.finish();
}

fn bench_featurize(c: &mut Criterion) {
    let cfg = drybell_datagen::topic::TopicTaskConfig {
        num_unlabeled: 2_000,
        num_dev: 10,
        num_test: 10,
        pos_rate: 0.05,
        seed: 3,
    };
    let ds = drybell_datagen::topic::generate(&cfg);
    let hasher = FeatureHasher::new(1 << 18);
    let mut group = c.benchmark_group("featurize");
    group.throughput(Throughput::Elements(ds.unlabeled.len() as u64));
    group.bench_function("topic_2k_docs", |b| {
        b.iter(|| {
            let total: usize = ds
                .unlabeled
                .iter()
                .map(|d| drybell_datagen::topic::featurize(d, &hasher).nnz())
                .sum();
            black_box(total);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ftrl, bench_mlp, bench_featurize
}
criterion_main!(benches);
