//! Criterion benchmarks for labeling-function execution — the engine
//! behind the §1 scaling claim (6M+ examples in tens of minutes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drybell_datagen::{events, product, topic};
use drybell_lf::executor::execute_in_memory;
use drybell_nlp::NlpServer;
use std::hint::black_box;

fn bench_topic_lfs(c: &mut Criterion) {
    let cfg = topic::TopicTaskConfig {
        num_unlabeled: 5_000,
        num_dev: 10,
        num_test: 10,
        pos_rate: 0.05,
        seed: 1,
    };
    let ds = topic::generate(&cfg);
    let set = topic::lf_set(ds.crawl_table.clone());
    let ext = topic::text_extractor();
    let mut group = c.benchmark_group("lf_execution");
    group.throughput(Throughput::Elements(ds.unlabeled.len() as u64));
    for workers in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("topic_10lfs_5k_docs", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    let (m, _) = execute_in_memory(&set, Some(&ext), &ds.unlabeled, w).unwrap();
                    black_box(m.num_examples());
                })
            },
        );
    }
    group.finish();
}

fn bench_product_lfs(c: &mut Criterion) {
    let cfg = product::ProductTaskConfig {
        num_unlabeled: 5_000,
        num_dev: 10,
        num_test: 10,
        pos_rate: 0.05,
        english_rate: 0.55,
        seed: 1,
    };
    let ds = product::generate(&cfg);
    let set = product::lf_set(ds.kg.clone());
    let ext = product::text_extractor();
    let mut group = c.benchmark_group("lf_execution");
    group.throughput(Throughput::Elements(ds.unlabeled.len() as u64));
    group.bench_function("product_8lfs_5k_docs", |b| {
        b.iter(|| {
            let (m, _) = execute_in_memory(&set, Some(&ext), &ds.unlabeled, 8).unwrap();
            black_box(m.num_examples());
        })
    });
    group.finish();
}

fn bench_events_lfs(c: &mut Criterion) {
    let cfg = events::EventTaskConfig {
        num_unlabeled: 5_000,
        num_test: 10,
        pos_rate: 0.05,
        num_lfs: 140,
        seed: 1,
    };
    let ds = events::generate(&cfg);
    let set = events::lf_set(cfg.num_lfs, cfg.seed);
    let mut group = c.benchmark_group("lf_execution");
    group.throughput(Throughput::Elements(ds.unlabeled.len() as u64));
    group.bench_function("events_140lfs_5k_events", |b| {
        b.iter(|| {
            let (m, _) = execute_in_memory(&set, None, &ds.unlabeled, 8).unwrap();
            black_box(m.num_examples());
        })
    });
    group.finish();
}

fn bench_nlp_annotate(c: &mut Criterion) {
    let server = NlpServer::new();
    let text = "Alice Johnson reveals her favorite camera and lens while the \
                market watches the new premiere with great interest in Springfield";
    c.bench_function("nlp_annotate_one_doc", |b| {
        b.iter(|| black_box(server.annotate(text)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_topic_lfs, bench_product_lfs, bench_events_lfs, bench_nlp_annotate
}
criterion_main!(benches);
