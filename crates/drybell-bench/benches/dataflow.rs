//! Criterion benchmarks for the dataflow substrate: shard I/O, the
//! parallel map engine, and the shuffle with/without map-side combining
//! (the combiner on/off ablation DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drybell_dataflow::{
    map_reduce, par_map_shards, read_all, write_all, CounterHandle, DataflowError, JobConfig,
    ShardSpec,
};
use std::hint::black_box;

type Rec = (u64, String);
type CountSink<'a> = &'a mut dyn FnMut(&(String, i64)) -> Result<(), DataflowError>;

fn make_records(n: usize) -> Vec<Rec> {
    (0..n as u64)
        .map(|i| (i, format!("record body {} {} {}", i, i % 97, i % 13)))
        .collect()
}

fn bench_shard_io(c: &mut Criterion) {
    let records = make_records(50_000);
    let mut group = c.benchmark_group("shard_io");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("write_50k", |b| {
        b.iter(|| {
            let dir = tempfile::tempdir().unwrap();
            let spec = ShardSpec::new(dir.path(), "bench", 8);
            black_box(write_all(&spec, &records).unwrap());
        })
    });
    let dir = tempfile::tempdir().unwrap();
    let spec = ShardSpec::new(dir.path(), "bench", 8);
    write_all(&spec, &records).unwrap();
    group.bench_function("read_50k", |b| {
        b.iter(|| {
            let back: Vec<Rec> = read_all(&spec).unwrap();
            black_box(back.len());
        })
    });
    group.finish();
}

fn bench_par_map_workers(c: &mut Criterion) {
    let records = make_records(40_000);
    let mut group = c.benchmark_group("par_map_workers");
    group.throughput(Throughput::Elements(records.len() as u64));
    for workers in [1usize, 4, 8] {
        let dir = tempfile::tempdir().unwrap();
        let input = ShardSpec::new(dir.path(), "in", 16);
        write_all(&input, &records).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let output = input.derive("out");
                let stats = par_map_shards(
                    &input,
                    &output,
                    &JobConfig::new("bench").with_workers(w),
                    |_| Ok(()),
                    |_s: &mut (), (k, v): Rec, emit, _c: &mut CounterHandle| {
                        emit.emit(&(k.wrapping_mul(31), v))
                    },
                )
                .unwrap();
                black_box(stats.records_out);
            })
        });
    }
    group.finish();
}

fn bench_shuffle_combiner(c: &mut Criterion) {
    // Word-count style shuffle with heavy key repetition, where the
    // combiner pays off.
    let records: Vec<Rec> = (0..20_000u64)
        .map(|i| (i, format!("w{} w{} w{} w{}", i % 50, i % 7, i % 50, i % 3)))
        .collect();
    let map = |(_, text): Rec, emit: &mut dyn FnMut(String, i64)| {
        for w in text.split_whitespace() {
            emit(w.to_owned(), 1);
        }
        Ok(())
    };
    let reduce =
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.into_iter().sum()));
    let mut group = c.benchmark_group("shuffle");
    group.throughput(Throughput::Elements(records.len() as u64));
    for combine in [false, true] {
        let name = if combine {
            "with_combiner"
        } else {
            "no_combiner"
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let dir = tempfile::tempdir().unwrap();
                let input = ShardSpec::new(dir.path(), "in", 8);
                write_all(&input, &records).unwrap();
                let output = ShardSpec::new(dir.path(), "out", 4);
                let mut cfg = JobConfig::new("wc").with_workers(4);
                cfg.spill_buffer = 1024;
                let combiner =
                    combine.then_some(|_k: &String, vs: Vec<i64>| vs.into_iter().sum::<i64>());
                let stats =
                    map_reduce(&input, &output, dir.path(), &cfg, map, combiner, reduce).unwrap();
                black_box(stats.records_out);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shard_io, bench_par_map_workers, bench_shuffle_combiner
}
criterion_main!(benches);
