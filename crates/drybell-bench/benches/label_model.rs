//! Criterion benchmarks for the label model — the §5.2 measurements.
//!
//! * `sampling_free_step`: one mini-batch gradient step at the paper's
//!   benchmark setting (10 LFs, batch 64). The paper reports >100 such
//!   steps/s on Google hardware.
//! * `gibbs_step`: the OSS-Snorkel-style Gibbs step on the same matrix
//!   (the paper reports <50 examples/s, i.e. <1 batch-64 step/s).
//! * `posterior_inference`: converting votes to probabilistic labels.
//! * `thread_scaling`: the parallel hot path (chunked gradients and
//!   posterior scans) at 1/2/4/8 worker threads.
//! * Ablations: LF count scaling and the categorical variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drybell_core::categorical::{CatLabelMatrix, CatTrainConfig, CategoricalModel};
use drybell_core::generative::{GenerativeModel, TrainConfig};
use drybell_core::gibbs::{GibbsConfig, GibbsTrainer};
use drybell_core::vote::CatVote;
use drybell_core::LabelMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn planted(examples: usize, lfs: usize, seed: u64) -> LabelMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let accs: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.6..0.95)).collect();
    let props: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.3..0.9)).collect();
    let mut m = LabelMatrix::with_capacity(lfs, examples);
    for _ in 0..examples {
        let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let row: Vec<i8> = (0..lfs)
            .map(|j| {
                if !rng.gen_bool(props[j]) {
                    0
                } else if rng.gen_bool(accs[j]) {
                    y
                } else {
                    -y
                }
            })
            .collect();
        m.push_raw_row(&row).unwrap();
    }
    m
}

fn bench_training_steps(c: &mut Criterion) {
    let matrix = planted(50_000, 10, 1);
    let mut group = c.benchmark_group("label_model_training");
    // Steps per iteration so criterion measures per-step cost: run 50
    // steps per sample.
    let steps = 50usize;
    group.throughput(Throughput::Elements(steps as u64));
    group.bench_function("sampling_free_50_steps_b64", |b| {
        b.iter(|| {
            let mut model = GenerativeModel::new(10, 0.7);
            model
                .fit(
                    &matrix,
                    &TrainConfig {
                        steps,
                        batch_size: 64,
                        ..TrainConfig::default()
                    },
                )
                .unwrap();
            black_box(model.alphas()[0]);
        })
    });
    group.bench_function("gibbs_50_steps_b64", |b| {
        b.iter(|| {
            let mut trainer = GibbsTrainer::new(10);
            trainer
                .fit(
                    &matrix,
                    &GibbsConfig {
                        steps,
                        batch_size: 64,
                        ..GibbsConfig::default()
                    },
                )
                .unwrap();
            black_box(trainer.model().alphas()[0]);
        })
    });
    group.finish();
}

fn bench_lf_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_free_lf_scaling");
    for lfs in [10usize, 40, 140] {
        let matrix = planted(20_000, lfs, 2);
        group.bench_with_input(BenchmarkId::from_parameter(lfs), &lfs, |b, &lfs| {
            b.iter(|| {
                let mut model = GenerativeModel::new(lfs, 0.7);
                model
                    .fit(
                        &matrix,
                        &TrainConfig {
                            steps: 20,
                            batch_size: 64,
                            ..TrainConfig::default()
                        },
                    )
                    .unwrap();
                black_box(model.alphas()[0]);
            })
        });
    }
    group.finish();
}

fn bench_posterior_inference(c: &mut Criterion) {
    let matrix = planted(100_000, 10, 3);
    let mut model = GenerativeModel::new(10, 0.7);
    model
        .fit(
            &matrix,
            &TrainConfig {
                steps: 200,
                ..TrainConfig::default()
            },
        )
        .unwrap();
    let mut group = c.benchmark_group("posterior_inference");
    group.throughput(Throughput::Elements(matrix.num_examples() as u64));
    group.bench_function("predict_proba_100k_x10lfs", |b| {
        b.iter(|| black_box(model.predict_proba(&matrix)))
    });
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // The parallel hot path: chunked gradients and posterior scans with
    // the deterministic tree reduction (exp_speed sweeps the same
    // widths and records them in BENCH_label_model.json).
    let matrix = planted(100_000, 8, 5);
    let mut model = GenerativeModel::new(8, 0.7);
    model
        .fit(
            &matrix,
            &TrainConfig {
                steps: 100,
                ..TrainConfig::default()
            },
        )
        .unwrap();
    let mut group = c.benchmark_group("thread_scaling");
    group.throughput(Throughput::Elements(matrix.num_examples() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("predict_proba_100k_x8lfs", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(model.predict_proba_threads(&matrix, threads))),
        );
    }
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("fit_10_fullbatch_steps", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut m = GenerativeModel::new(8, 0.7);
                    m.fit(
                        &matrix,
                        &TrainConfig {
                            steps: 10,
                            batch_size: 8_192,
                            num_threads: threads,
                            ..TrainConfig::default()
                        },
                    )
                    .unwrap();
                    black_box(m.alphas()[0]);
                })
            },
        );
    }
    group.finish();
}

fn bench_categorical(c: &mut Criterion) {
    let k = 5u32;
    let mut rng = StdRng::seed_from_u64(4);
    let mut matrix = CatLabelMatrix::new(8, k).unwrap();
    for _ in 0..20_000 {
        let y = rng.gen_range(1..=k);
        let row: Vec<CatVote> = (0..8)
            .map(|_| {
                if !rng.gen_bool(0.7) {
                    CatVote::ABSTAIN
                } else if rng.gen_bool(0.85) {
                    CatVote(y)
                } else {
                    let mut w = rng.gen_range(1..=k - 1);
                    if w >= y {
                        w += 1;
                    }
                    CatVote(w)
                }
            })
            .collect();
        matrix.push_row(&row).unwrap();
    }
    c.bench_function("categorical_fit_k5_50steps", |b| {
        b.iter(|| {
            let mut model = CategoricalModel::new(8, k, 0.7).unwrap();
            model
                .fit(
                    &matrix,
                    &CatTrainConfig {
                        steps: 50,
                        ..CatTrainConfig::default()
                    },
                )
                .unwrap();
            black_box(model.learned_accuracies()[0]);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training_steps, bench_lf_count_scaling, bench_posterior_inference, bench_thread_scaling, bench_categorical
}
criterion_main!(benches);
