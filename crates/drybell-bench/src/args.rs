//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Hand-rolled (a handful of flags) to avoid pulling a CLI dependency
//! into the reproduction.

use std::path::PathBuf;

/// Options common to every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Dataset scale factor relative to the paper's sizes (default 0.1).
    pub scale: f64,
    /// Master seed override (default: each task's preset seed).
    pub seed: Option<u64>,
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Render the report as JSON instead of text tables.
    pub json: bool,
    /// Write a JSONL run journal to this path.
    pub journal: Option<PathBuf>,
    /// Write a `drybell-doctor` RunSummary JSON to this path.
    pub summary: Option<PathBuf>,
    /// Run id stamped into the journal's `run_header` event.
    pub run_id: Option<String>,
    /// Simulated NLP-service outage: per-call error rate in `[0, 1]`,
    /// injected via a seeded `FaultPlan` (binaries that run LFs only).
    pub nlp_outage: Option<f64>,
    /// Write a Chrome trace-event JSON (loadable in Perfetto /
    /// `chrome://tracing`) of the run's span tree to this path.
    pub trace: Option<PathBuf>,
    /// Serve the live observability plane (`/metrics`, `/snapshot`,
    /// `/healthz`) on this address (e.g. `127.0.0.1:9800`; port `0`
    /// picks a free one, printed to stderr). Also arms a flight
    /// recorder dumping to `results/flight/` on drift, SLO breach, or
    /// stream-fault-budget exhaustion.
    pub live: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> ExpArgs {
        ExpArgs {
            scale: 0.1,
            seed: None,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            json: false,
            journal: None,
            summary: None,
            run_id: None,
            nlp_outage: None,
            trace: None,
            live: None,
        }
    }
}

impl ExpArgs {
    /// Parse from an iterator of arguments (without the program name).
    /// Unknown flags abort with a usage message.
    pub fn parse_from<I: Iterator<Item = String>>(mut args: I) -> Result<ExpArgs, String> {
        let mut out = ExpArgs::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().ok_or("--scale needs a value")?;
                    out.scale = v
                        .parse::<f64>()
                        .map_err(|e| format!("bad --scale {v:?}: {e}"))?;
                    if out.scale <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    out.seed = Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("bad --seed {v:?}: {e}"))?,
                    );
                }
                "--workers" => {
                    let v = args.next().ok_or("--workers needs a value")?;
                    out.workers = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad --workers {v:?}: {e}"))?
                        .max(1);
                }
                "--json" => out.json = true,
                "--journal" => {
                    let v = args.next().ok_or("--journal needs a path")?;
                    out.journal = Some(PathBuf::from(v));
                }
                "--summary" => {
                    let v = args.next().ok_or("--summary needs a path")?;
                    out.summary = Some(PathBuf::from(v));
                }
                "--run-id" => {
                    let v = args.next().ok_or("--run-id needs a value")?;
                    out.run_id = Some(v);
                }
                "--trace" => {
                    let v = args.next().ok_or("--trace needs a path")?;
                    out.trace = Some(PathBuf::from(v));
                }
                "--live" => {
                    let v = args.next().ok_or("--live needs an address")?;
                    out.live = Some(v);
                }
                "--nlp-outage" => {
                    let v = args.next().ok_or("--nlp-outage needs a rate")?;
                    let rate = v
                        .parse::<f64>()
                        .map_err(|e| format!("bad --nlp-outage {v:?}: {e}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err("--nlp-outage must be in [0, 1]".into());
                    }
                    out.nlp_outage = Some(rate);
                }
                "--help" | "-h" => {
                    return Err("usage: exp_* [--scale <f>] [--seed <n>] [--workers <n>] \
                         [--json] [--journal <path>] [--summary <path>] \
                         [--run-id <id>] [--nlp-outage <rate>] [--trace <path>] \
                         [--live <addr>]"
                        .into())
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// Parse from `std::env::args()`, exiting with the usage message on
    /// error.
    pub fn parse() -> ExpArgs {
        match ExpArgs::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The journal path these flags imply: `--journal` verbatim, else —
    /// when `--summary` is set — a `<summary>.journal.jsonl` sidecar, so
    /// a summary can always be folded from a real journal.
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.journal.clone().or_else(|| {
            self.summary
                .as_ref()
                .map(|s| PathBuf::from(format!("{}.journal.jsonl", s.display())))
        })
    }

    /// Build the telemetry bundle these flags ask for: `--journal <path>`
    /// (or `--summary`, via its sidecar journal) attaches a JSONL
    /// [`drybell_obs::RunJournal`], `--trace <path>` attaches a
    /// [`drybell_obs::Tracer`] (exported by [`ExpArgs::finish_trace`]),
    /// and `--json` alone still collects metrics and spans for the final
    /// report. `None` when no flag was given, so the default invocation
    /// keeps the un-instrumented fast path.
    pub fn telemetry(&self) -> std::io::Result<Option<drybell_obs::Telemetry>> {
        let base = match self.journal_path() {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                let journal = drybell_obs::RunJournal::to_path(&path)?;
                Some(drybell_obs::Telemetry::with_journal(journal))
            }
            None if self.json || self.trace.is_some() || self.live.is_some() => {
                Some(drybell_obs::Telemetry::new())
            }
            None => None,
        };
        Ok(base.map(|t| {
            let t = match self.trace {
                Some(_) => t.with_trace(drybell_obs::Tracer::new()),
                None => t,
            };
            match self.live {
                // The live plane comes with a black box: drift windows,
                // SLO breaches, and fault-budget exhaustion dump the
                // recent event ring to results/flight/.
                Some(_) => t.with_flight(drybell_obs::FlightRecorder::new("results/flight")),
                None => t,
            }
        }))
    }

    /// Honor `--live`: bind the snapshot server on the requested
    /// address. Hold the returned guard for the run's lifetime; it
    /// stops serving on drop. `None` without `--live`.
    pub fn serve_live(
        &self,
        telemetry: &drybell_obs::Telemetry,
    ) -> std::io::Result<Option<drybell_obs::LiveServer>> {
        match &self.live {
            Some(addr) => {
                let server = drybell_obs::LiveServer::bind(addr, telemetry)?;
                eprintln!("live observability on http://{}", server.local_addr());
                Ok(Some(server))
            }
            None => Ok(None),
        }
    }

    /// [`ExpArgs::serve_live`], exiting when the address cannot bind.
    pub fn serve_live_or_exit(
        &self,
        telemetry: &drybell_obs::Telemetry,
    ) -> Option<drybell_obs::LiveServer> {
        match self.serve_live(telemetry) {
            Ok(server) => server,
            Err(e) => {
                eprintln!(
                    "cannot bind --live {}: {e}",
                    self.live.as_deref().unwrap_or_default()
                );
                std::process::exit(2);
            }
        }
    }

    /// Honor `--trace`: journal the tracer's `trace_summary` digest,
    /// export its self-time gauges into the metrics registry (so a
    /// `--summary` written afterwards carries them), and write the
    /// Chrome trace-event file. Call after the traced work finishes and
    /// *before* [`ExpArgs::write_summary`]. No-op without `--trace`.
    pub fn finish_trace(
        &self,
        telemetry: &drybell_obs::Telemetry,
    ) -> Result<Option<PathBuf>, String> {
        let (Some(out), Some(tracer)) = (&self.trace, telemetry.tracer()) else {
            return Ok(None);
        };
        telemetry.emit(tracer.summary_event());
        tracer.export_metrics(telemetry.metrics());
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("create {}: {e}", parent.display()))?;
            }
        }
        tracer
            .write_chrome(out)
            .map_err(|e| format!("write {}: {e}", out.display()))?;
        Ok(Some(out.clone()))
    }

    /// [`ExpArgs::finish_trace`], exiting on failure.
    pub fn finish_trace_or_exit(&self, telemetry: &drybell_obs::Telemetry) {
        match self.finish_trace(telemetry) {
            Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
            Ok(None) => {}
            Err(msg) => {
                eprintln!("cannot write --trace: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// The run id for the journal header: `--run-id`, else the task name.
    pub fn run_id_or<'a>(&'a self, task: &'a str) -> &'a str {
        self.run_id.as_deref().unwrap_or(task)
    }

    /// Fingerprint of everything that shapes this run's results, so
    /// `doctor check` can flag baseline/current config mismatches.
    pub fn fingerprint(&self, task: &str) -> String {
        let scale = format!("scale={}", self.scale);
        let seed = format!("seed={:?}", self.seed);
        let workers = format!("workers={}", self.workers);
        let outage = format!("nlp_outage={:?}", self.nlp_outage);
        drybell_obs::config_fingerprint([task, &scale, &seed, &workers, &outage])
    }

    /// Stamp the `run_header` event (schema version, run id, config
    /// fingerprint) into the run's journal, if one is attached.
    pub fn emit_header(&self, telemetry: &drybell_obs::Telemetry, task: &str) {
        if let Some(journal) = telemetry.journal() {
            journal.emit_header(self.run_id_or(task), &self.fingerprint(task));
        }
    }

    /// Honor `--summary`: flush the journal, fold it into a
    /// [`drybell_doctor::RunSummary`], merge the metrics snapshot, and
    /// write the summary JSON. No-op without `--summary`.
    pub fn write_summary(
        &self,
        telemetry: &drybell_obs::Telemetry,
    ) -> Result<Option<PathBuf>, String> {
        let Some(out) = &self.summary else {
            return Ok(None);
        };
        let path = self
            .journal_path()
            .expect("--summary implies a journal path");
        if let Some(journal) = telemetry.journal() {
            journal.flush().map_err(|e| format!("flush journal: {e}"))?;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read journal {}: {e}", path.display()))?;
        let mut summary = drybell_doctor::RunSummary::from_journal_str(&text)
            .map_err(|e| format!("fold journal {}: {e}", path.display()))?;
        summary.merge_metrics_json(&telemetry.report_json());
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("create {}: {e}", parent.display()))?;
            }
        }
        let mut doc = summary.to_json().to_pretty();
        doc.push('\n');
        std::fs::write(out, doc).map_err(|e| format!("write {}: {e}", out.display()))?;
        Ok(Some(out.clone()))
    }

    /// [`ExpArgs::write_summary`], exiting on failure.
    pub fn write_summary_or_exit(&self, telemetry: &drybell_obs::Telemetry) {
        match self.write_summary(telemetry) {
            Ok(Some(path)) => eprintln!("summary written to {}", path.display()),
            Ok(None) => {}
            Err(msg) => {
                eprintln!("cannot write --summary: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`ExpArgs::telemetry`], exiting with a usage-style message when the
    /// `--journal` path cannot be opened.
    pub fn telemetry_or_exit(&self) -> Option<drybell_obs::Telemetry> {
        match self.telemetry() {
            Ok(t) => t,
            Err(e) => {
                let path = self.journal_path().unwrap_or_default();
                eprintln!("cannot open --journal {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse_from(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.seed, None);
        assert!(!a.json);
        assert_eq!(a.journal, None);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale", "1.0", "--seed", "7", "--workers", "3"]).unwrap();
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.workers, 3);
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&["--json", "--journal", "/tmp/run.jsonl"]).unwrap();
        assert!(a.json);
        assert_eq!(
            a.journal.as_deref(),
            Some(std::path::Path::new("/tmp/run.jsonl"))
        );
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--journal"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&["--nlp-outage", "1.5"]).is_err());
        assert!(parse(&["--nlp-outage", "x"]).is_err());
    }

    #[test]
    fn doctor_flags_parse() {
        let a = parse(&[
            "--summary",
            "/tmp/s.json",
            "--run-id",
            "nightly",
            "--nlp-outage",
            "0.35",
        ])
        .unwrap();
        assert_eq!(
            a.summary.as_deref(),
            Some(std::path::Path::new("/tmp/s.json"))
        );
        assert_eq!(a.run_id.as_deref(), Some("nightly"));
        assert_eq!(a.nlp_outage, Some(0.35));
        // --summary implies a sidecar journal path.
        assert_eq!(
            a.journal_path().unwrap().to_str().unwrap(),
            "/tmp/s.json.journal.jsonl"
        );
        // An explicit --journal wins over the sidecar.
        let b = parse(&["--summary", "/tmp/s.json", "--journal", "/tmp/j.jsonl"]).unwrap();
        assert_eq!(
            b.journal_path().as_deref(),
            Some(std::path::Path::new("/tmp/j.jsonl"))
        );
    }

    #[test]
    fn fingerprint_tracks_result_shaping_flags() {
        let a = parse(&["--scale", "0.2", "--seed", "7"]).unwrap();
        let b = parse(&["--scale", "0.2", "--seed", "7"]).unwrap();
        assert_eq!(a.fingerprint("quickstart"), b.fingerprint("quickstart"));
        assert_ne!(a.fingerprint("quickstart"), a.fingerprint("other_task"));
        let c = parse(&["--scale", "0.2", "--seed", "8"]).unwrap();
        assert_ne!(a.fingerprint("quickstart"), c.fingerprint("quickstart"));
        let d = parse(&["--scale", "0.2", "--seed", "7", "--nlp-outage", "0.5"]).unwrap();
        assert_ne!(a.fingerprint("quickstart"), d.fingerprint("quickstart"));
        // Run id is identity, not config: it must not move the print.
        let e = parse(&["--scale", "0.2", "--seed", "7", "--run-id", "x"]).unwrap();
        assert_eq!(a.fingerprint("quickstart"), e.fingerprint("quickstart"));
    }

    #[test]
    fn trace_flag_attaches_a_tracer_and_writes_chrome_json() {
        let a = parse(&["--trace", "/tmp/t.json"]).unwrap();
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        // Trace output is a rendering knob, not config: the fingerprint
        // must not move.
        let plain = parse(&[]).unwrap();
        assert_eq!(a.fingerprint("quickstart"), plain.fingerprint("quickstart"));
        assert!(parse(&["--trace"]).is_err());

        let dir = std::env::temp_dir().join(format!("bench-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let args = parse(&["--trace", path.to_str().unwrap()]).unwrap();
        let t = args.telemetry().unwrap().unwrap();
        assert!(t.tracer().is_some(), "--trace alone must enable telemetry");
        {
            let run = t.span("run");
            let _fit = run.child("fit");
        }
        args.finish_trace(&t).unwrap();
        let doc = drybell_obs::parse_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        assert_eq!(events.len(), 2);
        // Self-time gauges exported for the summary.
        assert!(t.metrics().snapshot().gauge("obs/selftime/run") >= 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_flag_serves_metrics_and_keeps_the_fingerprint() {
        let a = parse(&["--live", "127.0.0.1:0"]).unwrap();
        assert_eq!(a.live.as_deref(), Some("127.0.0.1:0"));
        assert!(parse(&["--live"]).is_err());
        // Serving a snapshot endpoint is a rendering knob, not config:
        // the fingerprint must not move.
        let plain = parse(&[]).unwrap();
        assert_eq!(a.fingerprint("quickstart"), plain.fingerprint("quickstart"));
        // --live alone enables telemetry, arms the flight recorder, and
        // binds the snapshot server.
        let t = a.telemetry().unwrap().unwrap();
        assert!(t.flight().is_some(), "--live must arm the flight recorder");
        t.metrics().counter("nlp_calls").add(3);
        let server = a.serve_live(&t).unwrap().unwrap();
        let addr = server.local_addr();
        use std::io::{Read, Write};
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        sock.read_to_string(&mut body).unwrap();
        assert!(body.contains("drybell_nlp_calls 3"), "{body}");
    }

    #[test]
    fn telemetry_matches_the_flags() {
        assert!(parse(&[]).unwrap().telemetry().unwrap().is_none());
        let t = parse(&["--json"]).unwrap().telemetry().unwrap().unwrap();
        assert!(t.journal().is_none());
        let dir = std::env::temp_dir().join(format!("bench-args-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let args = parse(&["--journal", path.to_str().unwrap()]).unwrap();
        let t = args.telemetry().unwrap().unwrap();
        assert!(t.journal().is_some());
        t.emit(drybell_obs::Event::new("probe"));
        t.journal().unwrap().flush().unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("probe"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
