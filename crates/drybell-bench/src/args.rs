//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Hand-rolled (two flags) to avoid pulling a CLI dependency into the
//! reproduction.

/// Options common to every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpArgs {
    /// Dataset scale factor relative to the paper's sizes (default 0.1).
    pub scale: f64,
    /// Master seed override (default: each task's preset seed).
    pub seed: Option<u64>,
    /// Worker threads (default: available parallelism).
    pub workers: usize,
}

impl Default for ExpArgs {
    fn default() -> ExpArgs {
        ExpArgs {
            scale: 0.1,
            seed: None,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl ExpArgs {
    /// Parse from an iterator of arguments (without the program name).
    /// Unknown flags abort with a usage message.
    pub fn parse_from<I: Iterator<Item = String>>(mut args: I) -> Result<ExpArgs, String> {
        let mut out = ExpArgs::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().ok_or("--scale needs a value")?;
                    out.scale = v
                        .parse::<f64>()
                        .map_err(|e| format!("bad --scale {v:?}: {e}"))?;
                    if out.scale <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    out.seed =
                        Some(v.parse::<u64>().map_err(|e| format!("bad --seed {v:?}: {e}"))?);
                }
                "--workers" => {
                    let v = args.next().ok_or("--workers needs a value")?;
                    out.workers = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad --workers {v:?}: {e}"))?
                        .max(1);
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: exp_* [--scale <f>] [--seed <n>] [--workers <n>]".into(),
                    )
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// Parse from `std::env::args()`, exiting with the usage message on
    /// error.
    pub fn parse() -> ExpArgs {
        match ExpArgs::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse_from(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.seed, None);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale", "1.0", "--seed", "7", "--workers", "3"]).unwrap();
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.workers, 3);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
