//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Hand-rolled (a handful of flags) to avoid pulling a CLI dependency
//! into the reproduction.

use std::path::PathBuf;

/// Options common to every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Dataset scale factor relative to the paper's sizes (default 0.1).
    pub scale: f64,
    /// Master seed override (default: each task's preset seed).
    pub seed: Option<u64>,
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Render the report as JSON instead of text tables.
    pub json: bool,
    /// Write a JSONL run journal to this path.
    pub journal: Option<PathBuf>,
}

impl Default for ExpArgs {
    fn default() -> ExpArgs {
        ExpArgs {
            scale: 0.1,
            seed: None,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            json: false,
            journal: None,
        }
    }
}

impl ExpArgs {
    /// Parse from an iterator of arguments (without the program name).
    /// Unknown flags abort with a usage message.
    pub fn parse_from<I: Iterator<Item = String>>(mut args: I) -> Result<ExpArgs, String> {
        let mut out = ExpArgs::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().ok_or("--scale needs a value")?;
                    out.scale = v
                        .parse::<f64>()
                        .map_err(|e| format!("bad --scale {v:?}: {e}"))?;
                    if out.scale <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    out.seed = Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("bad --seed {v:?}: {e}"))?,
                    );
                }
                "--workers" => {
                    let v = args.next().ok_or("--workers needs a value")?;
                    out.workers = v
                        .parse::<usize>()
                        .map_err(|e| format!("bad --workers {v:?}: {e}"))?
                        .max(1);
                }
                "--json" => out.json = true,
                "--journal" => {
                    let v = args.next().ok_or("--journal needs a path")?;
                    out.journal = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    return Err("usage: exp_* [--scale <f>] [--seed <n>] [--workers <n>] \
                         [--json] [--journal <path>]"
                        .into())
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// Parse from `std::env::args()`, exiting with the usage message on
    /// error.
    pub fn parse() -> ExpArgs {
        match ExpArgs::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Build the telemetry bundle these flags ask for: `--journal <path>`
    /// attaches a JSONL [`drybell_obs::RunJournal`] at that path, `--json`
    /// alone still collects metrics and spans for the final report.
    /// `None` when neither flag was given, so the default invocation keeps
    /// the un-instrumented fast path.
    pub fn telemetry(&self) -> std::io::Result<Option<drybell_obs::Telemetry>> {
        match &self.journal {
            Some(path) => {
                let journal = drybell_obs::RunJournal::to_path(path)?;
                Ok(Some(drybell_obs::Telemetry::with_journal(journal)))
            }
            None if self.json => Ok(Some(drybell_obs::Telemetry::new())),
            None => Ok(None),
        }
    }

    /// [`ExpArgs::telemetry`], exiting with a usage-style message when the
    /// `--journal` path cannot be opened.
    pub fn telemetry_or_exit(&self) -> Option<drybell_obs::Telemetry> {
        match self.telemetry() {
            Ok(t) => t,
            Err(e) => {
                let path = self.journal.as_deref().unwrap_or_else(|| "".as_ref());
                eprintln!("cannot open --journal {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse_from(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.seed, None);
        assert!(!a.json);
        assert_eq!(a.journal, None);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale", "1.0", "--seed", "7", "--workers", "3"]).unwrap();
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.workers, 3);
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&["--json", "--journal", "/tmp/run.jsonl"]).unwrap();
        assert!(a.json);
        assert_eq!(
            a.journal.as_deref(),
            Some(std::path::Path::new("/tmp/run.jsonl"))
        );
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--journal"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn telemetry_matches_the_flags() {
        assert!(parse(&[]).unwrap().telemetry().unwrap().is_none());
        let t = parse(&["--json"]).unwrap().telemetry().unwrap().unwrap();
        assert!(t.journal().is_none());
        let dir = std::env::temp_dir().join(format!("bench-args-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let args = parse(&["--journal", path.to_str().unwrap()]).unwrap();
        let t = args.telemetry().unwrap().unwrap();
        assert!(t.journal().is_some());
        t.emit(drybell_obs::Event::new("probe"));
        t.journal().unwrap().flush().unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("probe"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
