//! Table 3: ablation — servable LFs only vs all LFs (adding the
//! non-servable organizational resources).
//!
//! "We measured the importance of including non-servable organizational
//! supervision resources by removing all labeling functions that depend
//! on them ... incorporating non-servable Google resources in labeling
//! functions leads to a 52% average performance improvement for the end
//! discriminative classifier."

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_ml::metrics::{BinaryMetrics, RelativeMetrics};

fn run<X: Sync + Send>(
    task: &ContentTask<X>,
) -> (f64, BinaryMetrics, BinaryMetrics, BinaryMetrics) {
    let baseline = task.baseline();
    let servable_only = task.run_servable_only();
    let full = task.run_full().drybell;
    let lift = full.f1() / servable_only.f1().max(1e-12) - 1.0;
    (lift, baseline, servable_only, full)
}

fn print_task<X: Sync + Send>(task: &ContentTask<X>) -> f64 {
    let (lift, baseline, servable, full) = run(task);
    let servable_rel = RelativeMetrics::versus(&servable, &baseline);
    let full_rel = RelativeMetrics::versus(&full, &baseline);
    println!("{}", task.name);
    println!(
        "  {:<24} {:>8} {:>8} {:>8} {:>8}",
        "relative:", "P", "R", "F1", "Lift"
    );
    println!("  {:<24} {}", "Servable LFs", servable_rel.row());
    println!(
        "  {:<24} {} {:>+7.1}%",
        "+ Non-Servable LFs",
        full_rel.row(),
        lift * 100.0
    );
    println!();
    lift
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Table 3: servable-only vs +non-servable LFs (scale {}) ==\n",
        args.scale
    );
    let topic = ContentTask::topic(args.scale, args.seed, args.workers);
    let l1 = print_task(&topic);
    let product = ContentTask::product(args.scale, args.seed, args.workers);
    let l2 = print_task(&product);
    println!(
        "Average lift from non-servable resources: {:+.1}%",
        50.0 * (l1 + l2)
    );
    println!();
    println!("Paper: Topic servable 50.9/159.2/86.1 -> full 100.6/132.1/117.5 (+36.4%)");
    println!("       Product servable 38.0/119.2/62.5 -> full 99.2/110.1/105.2 (+68.2%)");
    println!("       Average +52%");
}
