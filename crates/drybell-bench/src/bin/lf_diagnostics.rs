//! LF diagnostics report (§3.3's workflow).
//!
//! Prints, for each application's labeling functions: coverage, overlap,
//! conflict, the generative model's learned accuracy and propensity, and
//! the empirical accuracy on the dev split — the report the paper
//! describes as "independently useful for identifying previously unknown
//! low-quality sources (which were then either fixed or removed)".
//!
//! `--json` renders the same diagnostics as one machine-readable JSON
//! document instead of text tables.

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_core::analysis::{LfReport, LfSummary};
use drybell_datagen::events;
use drybell_lf::executor::execute_in_memory;
use drybell_obs::Json;

fn main() {
    let args = ExpArgs::parse();
    let telemetry = args.telemetry_or_exit();
    if let Some(t) = &telemetry {
        args.emit_header(t, "lf_diagnostics");
    }

    // Topic classification diagnostics, against the dev split.
    let t = ContentTask::topic(args.scale, args.seed, args.workers);
    let (matrix, _) = t.run_lfs_observed(telemetry.as_ref());
    let model = t.fit_label_model_observed(&matrix, telemetry.as_ref());
    let dev_matrix = t.run_lfs_on(&t.dev);
    let topic_report = LfReport::build(
        &matrix,
        &model,
        &t.lf_set.names(),
        Some((&dev_matrix, &t.dev_gold)),
    )
    .expect("report");
    // The doctor-facing surfaces: the lf_report journal event and the
    // registry-named `lf/<name>/*_ppm` gauges.
    if let Some(tel) = &telemetry {
        if let Some(journal) = tel.journal() {
            topic_report.emit_to(journal);
        }
        topic_report.export_to(tel.metrics());
    }
    let topic_low = topic_report.low_quality(0.6);

    // Real-time events diagnostics (no dev split; 140 synthetic LFs).
    let cfg = events::EventTaskConfig::scaled(args.scale.min(0.02));
    let ds = events::generate(&cfg);
    let set = events::lf_set(cfg.num_lfs, cfg.seed);
    let (ev_matrix, _) = execute_in_memory(&set, None, &ds.unlabeled, args.workers).expect("exec");
    let mut ev_model = drybell_core::GenerativeModel::new(ev_matrix.num_lfs(), 0.7);
    ev_model
        .fit(&ev_matrix, &drybell_core::TrainConfig::default())
        .expect("fit");
    let events_report = LfReport::build(&ev_matrix, &ev_model, &set.names(), None).expect("report");
    let events_low = events_report.low_quality(0.55);

    // Dependency screening (Bach et al. 2017-style): nested graph rules
    // should surface as the top excess-agreement pairs.
    let deps = drybell_core::DependencyReport::build(&ev_matrix, 100).expect("deps");
    let names = set.names();

    if args.json {
        let flagged = |low: &[&LfSummary]| {
            Json::Arr(low.iter().map(|s| Json::from(s.name.as_str())).collect())
        };
        let doc = Json::obj(vec![
            (
                "topic",
                Json::obj(vec![
                    ("report", topic_report.to_json()),
                    ("low_quality", flagged(&topic_low)),
                ]),
            ),
            (
                "events",
                Json::obj(vec![
                    ("report", events_report.to_json()),
                    ("low_quality", flagged(&events_low)),
                ]),
            ),
            (
                "dependencies",
                Json::Arr(
                    deps.pairs
                        .iter()
                        .take(5)
                        .map(|p| {
                            Json::obj(vec![
                                ("a", Json::from(names[p.j].as_str())),
                                ("b", Json::from(names[p.k].as_str())),
                                ("observed_agreement", Json::from(p.observed_agreement)),
                                ("expected_agreement", Json::from(p.expected_agreement)),
                                ("excess", Json::from(p.excess())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.to_pretty());
        finalize(&args, telemetry.as_ref());
        return;
    }

    println!("== LF diagnostics: topic classification ==");
    print!("{}", topic_report.to_table());
    if topic_low.is_empty() {
        println!("no low-quality sources flagged (threshold 0.6)\n");
    } else {
        println!(
            "low-quality sources flagged (threshold 0.6): {}\n",
            topic_low
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    println!("== LF diagnostics: real-time events (first 20 of 140 LFs) ==");
    for line in events_report.to_table().lines().take(21) {
        println!("{line}");
    }
    println!(
        "\n{} of {} sources flagged below accuracy 0.55 — §3.3's 'previously",
        events_low.len(),
        set.len()
    );
    println!("unknown low-quality sources' workflow (fix or remove them).");

    println!("\ntop 5 dependency candidates (excess agreement over CI expectation):");
    for p in deps.pairs.iter().take(5) {
        println!(
            "  {:<18} ~ {:<18} observed {:.3} expected {:.3} excess {:+.3}",
            names[p.j],
            names[p.k],
            p.observed_agreement,
            p.expected_agreement,
            p.excess()
        );
    }
    finalize(&args, telemetry.as_ref());
}

/// Flush the journal and honor `--summary`, when telemetry is attached.
fn finalize(args: &ExpArgs, telemetry: Option<&drybell_obs::Telemetry>) {
    if let Some(t) = telemetry {
        if let Some(journal) = t.journal() {
            journal.flush().expect("flush journal");
        }
        args.write_summary_or_exit(t);
    }
}
