//! LF diagnostics report (§3.3's workflow).
//!
//! Prints, for each application's labeling functions: coverage, overlap,
//! conflict, the generative model's learned accuracy and propensity, and
//! the empirical accuracy on the dev split — the report the paper
//! describes as "independently useful for identifying previously unknown
//! low-quality sources (which were then either fixed or removed)".

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_core::analysis::LfReport;
use drybell_datagen::events;
use drybell_lf::executor::execute_in_memory;

fn main() {
    let args = ExpArgs::parse();

    println!("== LF diagnostics: topic classification ==");
    let t = ContentTask::topic(args.scale, args.seed, args.workers);
    let (matrix, _) = t.run_lfs();
    let model = t.fit_label_model(&matrix);
    let dev_matrix = t.run_lfs_on(&t.dev);
    let report = LfReport::build(
        &matrix,
        &model,
        &t.lf_set.names(),
        Some((&dev_matrix, &t.dev_gold)),
    )
    .expect("report");
    print!("{}", report.to_table());
    let low = report.low_quality(0.6);
    if low.is_empty() {
        println!("no low-quality sources flagged (threshold 0.6)\n");
    } else {
        println!(
            "low-quality sources flagged (threshold 0.6): {}\n",
            low.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", ")
        );
    }

    println!("== LF diagnostics: real-time events (first 20 of 140 LFs) ==");
    let cfg = events::EventTaskConfig::scaled(args.scale.min(0.02));
    let ds = events::generate(&cfg);
    let set = events::lf_set(cfg.num_lfs, cfg.seed);
    let (matrix, _) = execute_in_memory(&set, None, &ds.unlabeled, args.workers).expect("exec");
    let mut model = drybell_core::GenerativeModel::new(matrix.num_lfs(), 0.7);
    model
        .fit(&matrix, &drybell_core::TrainConfig::default())
        .expect("fit");
    let report = LfReport::build(&matrix, &model, &set.names(), None).expect("report");
    for line in report.to_table().lines().take(21) {
        println!("{line}");
    }
    let low = report.low_quality(0.55);
    println!(
        "\n{} of {} sources flagged below accuracy 0.55 — §3.3's 'previously",
        low.len(),
        set.len()
    );
    println!("unknown low-quality sources' workflow (fix or remove them).");

    // Dependency screening (Bach et al. 2017-style): nested graph rules
    // should surface as the top excess-agreement pairs.
    let deps = drybell_core::DependencyReport::build(&matrix, 100).expect("deps");
    println!("\ntop 5 dependency candidates (excess agreement over CI expectation):");
    let names = set.names();
    for p in deps.pairs.iter().take(5) {
        println!(
            "  {:<18} ~ {:<18} observed {:.3} expected {:.3} excess {:+.3}",
            names[p.j],
            names[p.k],
            p.observed_agreement,
            p.expected_agreement,
            p.excess()
        );
    }
}
