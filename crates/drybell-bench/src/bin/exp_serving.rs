//! Serving front-end load generator: batched admission vs one-at-a-time
//! scoring, closed- and open-loop traffic, and tail-latency percentiles.
//!
//! The paper serves discriminative models behind a TFX-style serving
//! stack; this reproduction's analog is `drybell-serving::Frontend`
//! (bounded admission → micro-batcher → epoch-pinned scoring). This
//! binary measures that path end to end:
//!
//! * **Part 1 — kernel:** `score_spec` one-at-a-time vs
//!   `score_spec_batch` over the same inputs, checksumming both score
//!   streams (FNV-1a over `f64::to_bits`) to prove the batched kernel
//!   is bit-identical, and reporting the amortization speedup.
//! * **Part 2 — closed loop:** N client threads drive `submit` + `wait`
//!   through the front-end until ≥1M requests complete (at any
//!   `--scale`), with a `promote` fired mid-run so live traffic crosses
//!   a hot swap; every response must come from exactly one published
//!   (epoch, version) pairing. Tail latencies (p50/p99/p999) come from
//!   the `obs/serving/request_us` histogram.
//! * **Part 3 — open loop:** a burst beyond queue capacity against a
//!   drainless front-end, counting typed `QueueFull` rejections, plus a
//!   zero-budget front-end proving expired requests degrade to the
//!   default score instead of blocking.
//!
//! Results land in `results/BENCH_serving.json` for the CI
//! `serving-bench` gate (`doctor bench` holds `p99_us` under a ceiling
//! and `batched_speedup` above a floor; see `doctor.toml [serving]`).

use drybell_bench::args::ExpArgs;
use drybell_features::{FeatureHasher, FeatureSpace, SpaceRegistry, SparseVector};
use drybell_ml::{FtrlConfig, LogisticRegression, MlpScratch};
use drybell_obs::Json;
use drybell_serving::{
    score_spec, score_spec_batch, BatchScratch, ExportedModel, Frontend, FrontendConfig, ModelSpec,
    OwnedInput, ScoreInput, Scored, ServingError, ServingRegistry, SloConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Hashed feature-space bits (dimension `1 << HASH_BITS`).
const HASH_BITS: u32 = 10;

/// Batch width for the kernel comparison — the front-end's default.
const KERNEL_BATCH: usize = 64;

/// Distinct request payloads cycled by the load loops.
const POOL: usize = 256;

/// Seconds the process stays up after finishing when `--live` is set,
/// so scrapers can read the final gauges before they vanish.
const LIVE_LINGER_S: u64 = 20;

/// FNV-1a over the exact bit patterns of a float sequence: equal
/// checksums ⇔ byte-identical values.
fn bits_checksum(xs: impl Iterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// A registry serving model `"m"` v1, with v2 staged for the mid-run
/// promote, plus the hasher and a pool of request payloads.
fn build_registry(seed: u64) -> (ServingRegistry, Vec<SparseVector>) {
    let mut spaces = SpaceRegistry::new();
    let hashed = spaces
        .register(FeatureSpace::servable("hashed", 10))
        .expect("fresh space registry");
    let registry = ServingRegistry::new(spaces, 1_000);
    let h = FeatureHasher::new(1 << HASH_BITS);

    let mut rng = StdRng::seed_from_u64(seed);
    let vocab: Vec<String> = (0..400).map(|i| format!("tok{i}")).collect();
    let doc = |rng: &mut StdRng| -> Vec<&str> {
        (0..16)
            .map(|_| vocab[rng.gen_range(0..vocab.len())].as_str())
            .collect()
    };
    let data: Vec<(SparseVector, f64)> = (0..2_000)
        .map(|_| {
            let tokens = doc(&mut rng);
            let y = f64::from(u8::from(tokens.iter().any(|t| t.ends_with('7'))));
            (h.bag_of_words(&tokens), y)
        })
        .collect();
    let mut m = LogisticRegression::new(1 << HASH_BITS, FtrlConfig::default());
    m.fit(&data).expect("logreg training");

    for version in 1..=2 {
        registry
            .stage(ModelSpec {
                name: "m".into(),
                version,
                feature_spaces: vec![hashed],
                model: ExportedModel::LogReg(m.clone()),
            })
            .expect("stage");
    }
    registry.promote("m", 1).expect("promote v1");

    let pool: Vec<SparseVector> = (0..POOL).map(|_| h.bag_of_words(&doc(&mut rng))).collect();
    (registry, pool)
}

/// Part 1: one-at-a-time vs batched kernel over identical inputs.
struct KernelResult {
    n: usize,
    single_rps: f64,
    batch_rps: f64,
    speedup: f64,
    bit_identical: bool,
}

fn run_kernel(registry: &ServingRegistry, pool: &[SparseVector], n: usize) -> KernelResult {
    let spec = std::sync::Arc::clone(
        registry
            .epoch_cell("m")
            .expect("published cell")
            .pin()
            .spec(),
    );
    let inputs: Vec<ScoreInput<'_>> = (0..n)
        .map(|i| ScoreInput::Sparse(&pool[i % pool.len()]))
        .collect();

    let mut scratch = MlpScratch::default();
    let start = Instant::now();
    let single: Vec<f64> = inputs
        .iter()
        .map(|x| score_spec(&spec, x, &mut scratch).expect("single scoring"))
        .collect();
    let single_s = start.elapsed().as_secs_f64();

    let mut batch_scratch = BatchScratch::default();
    let mut batched = vec![0.0; n];
    let start = Instant::now();
    for (inputs, out) in inputs
        .chunks(KERNEL_BATCH)
        .zip(batched.chunks_mut(KERNEL_BATCH))
    {
        score_spec_batch(&spec, inputs, &mut batch_scratch, out).expect("batched scoring");
    }
    let batch_s = start.elapsed().as_secs_f64();

    KernelResult {
        n,
        single_rps: n as f64 / single_s.max(1e-12),
        batch_rps: n as f64 / batch_s.max(1e-12),
        speedup: single_s / batch_s.max(1e-12),
        bit_identical: bits_checksum(single.into_iter()) == bits_checksum(batched.into_iter()),
    }
}

/// Part 2: closed-loop clients through the front-end with a mid-run
/// promote.
struct ClosedLoopResult {
    requests: u64,
    clients: usize,
    elapsed_s: f64,
    v1_responses: u64,
    v2_responses: u64,
    degraded: u64,
}

fn run_closed_loop(
    registry: &ServingRegistry,
    pool: &[SparseVector],
    telemetry: &drybell_obs::Telemetry,
    requests: u64,
    clients: usize,
) -> ClosedLoopResult {
    // Closed-loop throughput is bounded by clients per batch deadline
    // (every client blocks on its response, so a batch can never fill
    // beyond the in-flight count): tighten the deadline accordingly.
    let frontend = Frontend::for_model_with_telemetry(
        registry,
        "m",
        FrontendConfig {
            batch_wait: Duration::from_micros(50),
            ..FrontendConfig::default()
        },
        telemetry,
    )
    .expect("front-end");
    let completed = AtomicU64::new(0);
    let start = Instant::now();
    let (v1, v2, degraded) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let frontend = &frontend;
                let completed = &completed;
                let share =
                    requests / clients as u64 + u64::from((requests % clients as u64) > c as u64);
                scope.spawn(move || {
                    let (mut v1, mut v2, mut degraded) = (0_u64, 0_u64, 0_u64);
                    for i in 0..share {
                        let x = pool[(c + i as usize) % pool.len()].clone();
                        let scored: Scored =
                            frontend.score(OwnedInput::Sparse(x)).expect("closed loop");
                        assert_eq!(
                            scored.epoch,
                            u64::from(scored.version),
                            "torn epoch/version pairing"
                        );
                        match scored.version {
                            1 => v1 += 1,
                            2 => v2 += 1,
                            v => panic!("unknown version {v}"),
                        }
                        degraded += u64::from(scored.degraded);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    (v1, v2, degraded)
                })
            })
            .collect();
        // Fire the hot swap once live traffic is mid-flight.
        while completed.load(Ordering::Relaxed) < requests / 2 {
            std::thread::yield_now();
        }
        registry.promote("m", 2).expect("promote v2");
        handles.into_iter().fold((0, 0, 0), |acc, h| {
            let (v1, v2, d) = h.join().expect("client thread");
            (acc.0 + v1, acc.1 + v2, acc.2 + d)
        })
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    frontend.shutdown();
    ClosedLoopResult {
        requests,
        clients,
        elapsed_s,
        v1_responses: v1,
        v2_responses: v2,
        degraded,
    }
}

/// Part 3: an open-loop burst past queue capacity (drainless front-end,
/// counting typed rejections) and a zero-budget front-end (counting
/// degraded defaults).
struct OpenLoopResult {
    burst: usize,
    queue_depth: usize,
    accepted: u64,
    rejected: u64,
    degraded: u64,
    default_score: f64,
}

fn run_open_loop(
    registry: &ServingRegistry,
    pool: &[SparseVector],
    telemetry: &drybell_obs::Telemetry,
) -> OpenLoopResult {
    // Burst at an unbounded rate against zero service capacity: the
    // admission gate must accept exactly `queue_depth` and reject the
    // rest with the typed error — never block, never queue unbounded.
    let queue_depth = 256;
    let burst = queue_depth * 4;
    let frontend = Frontend::for_model_with_telemetry(
        registry,
        "m",
        FrontendConfig {
            queue_depth,
            workers: 0,
            ..FrontendConfig::default()
        },
        telemetry,
    )
    .expect("burst front-end");
    let (accepted, rejected) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let frontend = &frontend;
                scope.spawn(move || {
                    let (mut accepted, mut rejected) = (0_u64, 0_u64);
                    for i in 0..burst / 4 {
                        let x = pool[(c * 7 + i) % pool.len()].clone();
                        match frontend.submit(OwnedInput::Sparse(x)) {
                            Ok(_) => accepted += 1,
                            Err(ServingError::QueueFull { .. }) => rejected += 1,
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                    (accepted, rejected)
                })
            })
            .collect();
        handles.into_iter().fold((0, 0), |acc, h| {
            let (a, r) = h.join().expect("burst thread");
            (acc.0 + a, acc.1 + r)
        })
    });
    frontend.shutdown();
    assert_eq!(accepted, queue_depth as u64, "admission gate over-admitted");

    // Zero latency budget: every request lands past its deadline and
    // must degrade to the configured default instead of blocking.
    let default_score = 0.5;
    let frontend = Frontend::for_model_with_telemetry(
        registry,
        "m",
        FrontendConfig {
            request_budget: Duration::ZERO,
            default_score,
            workers: 1,
            ..FrontendConfig::default()
        },
        telemetry,
    )
    .expect("budget front-end");
    let mut degraded = 0_u64;
    for i in 0..1_000 {
        let scored = frontend
            .score(OwnedInput::Sparse(pool[i % pool.len()].clone()))
            .expect("budget loop");
        assert_eq!(scored.score, default_score);
        degraded += u64::from(scored.degraded);
    }
    frontend.shutdown();
    assert_eq!(degraded, 1_000, "zero-budget requests must all degrade");

    OpenLoopResult {
        burst,
        queue_depth,
        accepted,
        rejected,
        degraded,
        default_score,
    }
}

/// Part 4: a seeded SLO breach. A front-end with multi-window burn-rate
/// tracking and a zero latency budget: every response degrades, so the
/// error budget burns at 1000× and the tracker must fire exactly one
/// edge-triggered `slo_breach` (journaled, gauged on `slo/*`, and — when
/// a flight recorder is armed via `--live` — dumped as the black box's
/// last event).
struct SloDrillResult {
    requests: u64,
    fast_error_burn_ppm: i64,
    slow_error_burn_ppm: i64,
    fast_p99_us: i64,
    slow_p99_us: i64,
}

/// The drill's SLO budgets come from `doctor.toml [slo]` when the file
/// is present — the same source of truth `doctor` gates with — falling
/// back to the tracker's built-in defaults (which match the doctor's).
fn slo_config() -> SloConfig {
    let cfg = std::fs::read_to_string("doctor.toml")
        .ok()
        .and_then(|text| drybell_doctor::DoctorConfig::from_toml_str(&text).ok())
        .unwrap_or_default();
    let mut slo = SloConfig::default();
    if let Some(v) = cfg.budget("slo.p99_us") {
        slo.p99_budget_us = v as u64;
    }
    if let Some(v) = cfg.budget("slo.error_ppm") {
        slo.error_budget_ppm = v as u64;
    }
    if let Some(v) = cfg.budget("slo.burn") {
        slo.burn_threshold = v;
    }
    slo
}

fn run_slo_drill(
    registry: &ServingRegistry,
    pool: &[SparseVector],
    telemetry: &drybell_obs::Telemetry,
) -> SloDrillResult {
    let requests = 12_000_u64;
    let frontend = Frontend::for_model_with_telemetry(
        registry,
        "m",
        FrontendConfig {
            request_budget: Duration::ZERO,
            workers: 1,
            slo: Some(slo_config()),
            ..FrontendConfig::default()
        },
        telemetry,
    )
    .expect("slo drill front-end");
    for i in 0..requests {
        let scored = frontend
            .score(OwnedInput::Sparse(pool[i as usize % pool.len()].clone()))
            .expect("slo drill loop");
        assert!(scored.degraded, "zero budget must degrade every request");
    }
    frontend.shutdown();
    let snap = telemetry.metrics().snapshot();
    let result = SloDrillResult {
        requests,
        fast_error_burn_ppm: snap.gauge("slo/fast/error_burn_ppm"),
        slow_error_burn_ppm: snap.gauge("slo/slow/error_burn_ppm"),
        fast_p99_us: snap.gauge("slo/fast/p99_us"),
        slow_p99_us: snap.gauge("slo/slow/p99_us"),
    };
    assert!(
        result.fast_error_burn_ppm > 1_000_000 && result.slow_error_burn_ppm > 1_000_000,
        "seeded breach must leave both error burn gauges over budget \
         (fast {} ppm, slow {} ppm)",
        result.fast_error_burn_ppm,
        result.slow_error_burn_ppm
    );
    result
}

fn main() {
    let args = ExpArgs::parse();
    let quiet = args.json;
    let say = |s: String| {
        if !quiet {
            println!("{s}");
        }
    };
    let telemetry = args.telemetry_or_exit().unwrap_or_default();
    args.emit_header(&telemetry, "serving");
    let _live = args.serve_live_or_exit(&telemetry);

    let seed = args.seed.unwrap_or(11);
    let (registry, pool) = build_registry(seed);

    // ---- Part 1: batched kernel vs one-at-a-time ----------------------
    let kernel_n = ((2_000_000.0 * args.scale) as usize).max(100_000);
    let kernel = run_kernel(&registry, &pool, kernel_n);
    say(format!(
        "== kernel: {} inputs, batch {} ==\n",
        kernel.n, KERNEL_BATCH
    ));
    say(format!(
        "one-at-a-time: {:>12.0} scores/s\nbatched:       {:>12.0} scores/s  ({:.2}x, bit-identical: {})",
        kernel.single_rps, kernel.batch_rps, kernel.speedup, kernel.bit_identical
    ));
    assert!(
        kernel.bit_identical,
        "batched kernel diverged from one-at-a-time scoring"
    );

    // ---- Part 2: closed-loop load with a mid-run hot swap -------------
    // ≥1M completed requests at any --scale: the CI smoke invocation
    // (--scale 0.01) still exercises the full request floor.
    let requests = ((10_000_000.0 * args.scale) as u64).max(1_000_000);
    // Client threads spend most of their life blocked on a response
    // slot, so the closed loop wants more of them than host cores.
    let clients = args.workers.clamp(8, 16);
    say(format!(
        "\n== closed loop: {requests} requests over {clients} clients, promote at 50% =="
    ));
    let closed = run_closed_loop(&registry, &pool, &telemetry, requests, clients);
    let closed_rps = closed.requests as f64 / closed.elapsed_s.max(1e-12);
    // Percentiles snapshot now, before the open-loop phases record their
    // own (unrepresentative) request timings into the same histogram.
    let snap = telemetry.metrics().snapshot();
    let latency = snap
        .histogram("obs/serving/request_us")
        .expect("request histogram");
    let quantile_us = |q: f64| latency.quantile(q).unwrap_or(0);
    let (p50_us, p99_us, p999_us) = (quantile_us(0.5), quantile_us(0.99), quantile_us(0.999));
    say(format!(
        "\ncompleted {} in {:.2}s ({:.0} req/s); v1 {} / v2 {} responses, {} degraded",
        closed.requests,
        closed.elapsed_s,
        closed_rps,
        closed.v1_responses,
        closed.v2_responses,
        closed.degraded
    ));
    say(format!(
        "latency: p50 {p50_us}us  p99 {p99_us}us  p999 {p999_us}us"
    ));
    assert_eq!(closed.v1_responses + closed.v2_responses, closed.requests);
    assert!(
        closed.v2_responses > 0,
        "the mid-run promote never reached live traffic"
    );

    // ---- Part 3: open-loop burst + zero-budget degradation ------------
    let open = run_open_loop(&registry, &pool, &telemetry);
    say(format!(
        "\n== open loop: burst {} into depth {} ==\n\naccepted {}, rejected {} (typed QueueFull); zero-budget degraded {}",
        open.burst, open.queue_depth, open.accepted, open.rejected, open.degraded
    ));

    // ---- Part 4: seeded SLO breach through the burn-rate tracker ------
    let slo = run_slo_drill(&registry, &pool, &telemetry);
    say(format!(
        "\n== slo drill: {} zero-budget requests ==\n\nerror burn fast {} ppm / slow {} ppm (breach journaled{})",
        slo.requests,
        slo.fast_error_burn_ppm,
        slo.slow_error_burn_ppm,
        if telemetry.flight().is_some() {
            ", flight ring dumped"
        } else {
            ""
        }
    ));

    let doc = Json::obj(vec![
        ("bench", Json::from("serving")),
        ("seed", Json::from(seed)),
        ("requests", Json::from(closed.requests)),
        ("clients", Json::from(closed.clients)),
        ("closed_loop_rps", Json::from(closed_rps)),
        ("p50_us", Json::from(p50_us)),
        ("p99_us", Json::from(p99_us)),
        ("p999_us", Json::from(p999_us)),
        ("batched_speedup", Json::from(kernel.speedup)),
        ("completed", Json::from(closed.requests)),
        ("rejected", Json::from(open.rejected)),
        ("degraded", Json::from(open.degraded)),
        (
            "kernel",
            Json::obj(vec![
                ("inputs", Json::from(kernel.n)),
                ("batch", Json::from(KERNEL_BATCH)),
                ("single_rps", Json::from(kernel.single_rps)),
                ("batch_rps", Json::from(kernel.batch_rps)),
                ("bit_identical", Json::from(kernel.bit_identical)),
            ]),
        ),
        (
            "hot_swap",
            Json::obj(vec![
                ("v1_responses", Json::from(closed.v1_responses)),
                ("v2_responses", Json::from(closed.v2_responses)),
            ]),
        ),
        (
            "open_loop",
            Json::obj(vec![
                ("burst", Json::from(open.burst)),
                ("queue_depth", Json::from(open.queue_depth)),
                ("accepted", Json::from(open.accepted)),
                ("rejected", Json::from(open.rejected)),
                ("default_score", Json::from(open.default_score)),
            ]),
        ),
        (
            "slo_drill",
            Json::obj(vec![
                ("requests", Json::from(slo.requests)),
                ("fast_error_burn_ppm", Json::from(slo.fast_error_burn_ppm)),
                ("slow_error_burn_ppm", Json::from(slo.slow_error_burn_ppm)),
                ("fast_p99_us", Json::from(slo.fast_p99_us)),
                ("slow_p99_us", Json::from(slo.slow_p99_us)),
            ]),
        ),
    ]);

    telemetry.emit(
        drybell_obs::Event::new("serving_bench")
            .field("completed", Json::from(closed.requests))
            .field("rejected", Json::from(open.rejected))
            .field("degraded", Json::from(open.degraded))
            .field("p50_us", Json::from(p50_us))
            .field("p99_us", Json::from(p99_us))
            .field("p999_us", Json::from(p999_us))
            .field("batched_speedup", Json::from(kernel.speedup)),
    );

    let out_dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let out_path = out_dir.join("BENCH_serving.json");
    if let Err(e) = std::fs::write(&out_path, format!("{}\n", doc.to_pretty())) {
        eprintln!("cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    say(format!("\nwrote {}", out_path.display()));

    args.finish_trace_or_exit(&telemetry);
    args.write_summary_or_exit(&telemetry);
    if args.json {
        println!("{}", doc.to_pretty());
    }

    // The registry and its gauges die with the process; linger so a
    // scraper can still read the drill's burn gauges off /metrics
    // after the results land (the CI live-smoke job depends on this).
    if _live.is_some() {
        say(format!(
            "live endpoint lingering {LIVE_LINGER_S}s for scrapes"
        ));
        std::thread::sleep(std::time::Duration::from_secs(LIVE_LINGER_S));
    }
}
