//! §5.2 timing: sampling-free optimization vs the Gibbs sampler.
//!
//! "With ten labeling functions and a batch size of 64, the optimizer
//! takes an average > 100 steps per second ... a Gibbs sampler averages
//! < 50 examples per second, so Snorkel DryBell provides a 2× speedup."
//! (Both numbers on a single compute node / single thread.)
//!
//! We measure both trainers on the same label matrix (product-task LFs at
//! the paper's 10-LF benchmark setting, batch 64) and report steps/s,
//! examples/s, and the speedup at equal example throughput.

use drybell_bench::args::ExpArgs;
use drybell_core::generative::{GenerativeModel, TrainConfig};
use drybell_core::gibbs::{GibbsConfig, GibbsTrainer};
use drybell_core::LabelMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesize a planted label matrix with the benchmark shape.
fn planted_matrix(examples: usize, lfs: usize, seed: u64) -> LabelMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let accs: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.6..0.95)).collect();
    let props: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.3..0.9)).collect();
    let mut m = LabelMatrix::with_capacity(lfs, examples);
    for _ in 0..examples {
        let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let row: Vec<i8> = (0..lfs)
            .map(|j| {
                if !rng.gen_bool(props[j]) {
                    0
                } else if rng.gen_bool(accs[j]) {
                    y
                } else {
                    -y
                }
            })
            .collect();
        m.push_raw_row(&row).expect("row arity");
    }
    m
}

fn main() {
    let args = ExpArgs::parse();
    let examples = ((100_000.0 * args.scale) as usize).max(5_000);
    let lfs = 10; // the paper's benchmark setting
    let steps = 2_000;
    let matrix = planted_matrix(examples, lfs, args.seed.unwrap_or(1));
    println!(
        "== §5.2: sampling-free vs Gibbs ({} examples, {} LFs, batch 64, {} steps) ==\n",
        examples, lfs, steps
    );

    let mut sf = GenerativeModel::new(lfs, 0.7);
    let report = sf
        .fit(
            &matrix,
            &TrainConfig {
                steps,
                batch_size: 64,
                seed: 0,
                ..TrainConfig::default()
            },
        )
        .expect("sampling-free training");
    println!(
        "sampling-free: {:>10.0} steps/s  {:>12.0} examples/s  (final NLL {:.4})",
        report.steps_per_sec,
        report.steps_per_sec * 64.0,
        report.final_nll
    );

    let mut gibbs = GibbsTrainer::new(lfs);
    let greport = gibbs
        .fit(
            &matrix,
            // Chain lengths comparable to the OSS Snorkel sampler's
            // effective per-example sampling work (burn-in plus a few
            // dozen kept samples per gradient estimate).
            &GibbsConfig {
                steps,
                batch_size: 64,
                burn_in: 10,
                samples: 25,
                seed: 0,
                ..GibbsConfig::default()
            },
        )
        .expect("gibbs training");
    println!(
        "gibbs sampler: {:>10.0} steps/s  {:>12.0} examples/s  (final NLL {:.4})",
        greport.steps_per_sec, greport.examples_per_sec, greport.final_nll
    );

    let speedup = report.steps_per_sec / greport.steps_per_sec;
    println!("\nsampling-free speedup over Gibbs: {speedup:.1}x");
    println!("(paper: >100 steps/s vs <50 examples/s on Google hardware; the");
    println!(" absolute rates here are far higher, the *ratio* is the claim)");

    // The two trainers should also agree on what they learned.
    let max_gap = sf
        .learned_accuracies()
        .iter()
        .zip(gibbs.model().learned_accuracies())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max learned-accuracy gap between trainers: {max_gap:.4}");
}
