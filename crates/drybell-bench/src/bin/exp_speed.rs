//! §5.2 timing: sampling-free optimization vs the Gibbs sampler, plus a
//! thread-scaling sweep over the parallel label-model hot path.
//!
//! "With ten labeling functions and a batch size of 64, the optimizer
//! takes an average > 100 steps per second ... a Gibbs sampler averages
//! < 50 examples per second, so Snorkel DryBell provides a 2× speedup."
//! (Both numbers on a single compute node / single thread.)
//!
//! Part 1 measures both trainers on the same label matrix (product-task
//! LFs at the paper's 10-LF benchmark setting, batch 64) and reports
//! steps/s, examples/s, and the speedup at equal example throughput.
//!
//! Part 2 sweeps `TrainConfig::num_threads` over {1, 2, 4, 8} on a
//! seeded `1M × 8`-scaled matrix (100k rows at the default `--scale
//! 0.1`), timing full-batch training and posterior inference at each
//! width and checksumming the learned parameters and posteriors to
//! prove the deterministic tree reduction: every thread count must
//! produce byte-identical results. The sweep is written to
//! `results/BENCH_label_model.json` (and to stdout with `--json`) for
//! the `bench-smoke` CI gate and the EXPERIMENTS.md speed table.
//!
//! Part 3 measures the cost of the telemetry layer itself: the same LF
//! execution + label-model fit with telemetry off vs on (metrics,
//! spans, and a JSONL journal), plus the doctor's journal-fold time.
//! Written to `results/BENCH_obs_overhead.json` so the observability
//! stack's overhead is itself a tracked number. With `--live <addr>`
//! the measured telemetry also serves `/metrics` over HTTP while the
//! overhead runs — the `[obs]` gate must hold with the live endpoint
//! attached.

use drybell_bench::args::ExpArgs;
use drybell_core::generative::{GenerativeModel, TrainConfig};
use drybell_core::gibbs::{GibbsConfig, GibbsTrainer};
use drybell_core::LabelMatrix;
use drybell_obs::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Thread widths the scaling sweep measures.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Synthesize a planted label matrix with the benchmark shape.
fn planted_matrix(examples: usize, lfs: usize, seed: u64) -> LabelMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let accs: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.6..0.95)).collect();
    let props: Vec<f64> = (0..lfs).map(|_| rng.gen_range(0.3..0.9)).collect();
    let mut m = LabelMatrix::with_capacity(lfs, examples);
    for _ in 0..examples {
        let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let row: Vec<i8> = (0..lfs)
            .map(|j| {
                if !rng.gen_bool(props[j]) {
                    0
                } else if rng.gen_bool(accs[j]) {
                    y
                } else {
                    -y
                }
            })
            .collect();
        m.push_raw_row(&row).expect("row arity");
    }
    m
}

/// FNV-1a over the exact bit patterns of a float sequence: equal
/// checksums ⇔ byte-identical values.
fn bits_checksum(xs: impl Iterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// One measured point of the thread-scaling sweep.
struct SweepPoint {
    threads: usize,
    fit_rows_per_sec: f64,
    predict_rows_per_sec: f64,
    final_nll: f64,
    params_checksum: u64,
    posterior_checksum: u64,
}

/// Train + infer at one thread width and checksum everything learned.
fn sweep_point(matrix: &LabelMatrix, threads: usize) -> SweepPoint {
    let mut model = GenerativeModel::new(matrix.num_lfs(), 0.7);
    let cfg = TrainConfig {
        steps: 40,
        batch_size: 8_192,
        num_threads: threads,
        seed: 0,
        ..TrainConfig::default()
    };
    let report = model.fit(matrix, &cfg).expect("sweep training");

    let start = Instant::now();
    let posteriors = model.predict_proba_threads(matrix, threads);
    let predict_s = start.elapsed().as_secs_f64();

    let params = model
        .alphas()
        .iter()
        .chain(model.betas())
        .copied()
        .chain(std::iter::once(model.eta()));
    SweepPoint {
        threads,
        fit_rows_per_sec: report.rows_per_sec,
        predict_rows_per_sec: posteriors.len() as f64 / predict_s.max(1e-12),
        final_nll: report.final_nll,
        params_checksum: bits_checksum(params),
        posterior_checksum: bits_checksum(posteriors.into_iter()),
    }
}

fn main() {
    let args = ExpArgs::parse();
    let quiet = args.json;
    let say = |s: String| {
        if !quiet {
            println!("{s}");
        }
    };

    // ---- Part 1: §5.2 sampling-free vs Gibbs (unchanged setting) ------
    let examples = ((100_000.0 * args.scale) as usize).max(5_000);
    let lfs = 10; // the paper's benchmark setting
    let steps = 2_000;
    let matrix = planted_matrix(examples, lfs, args.seed.unwrap_or(1));
    say(format!(
        "== §5.2: sampling-free vs Gibbs ({examples} examples, {lfs} LFs, batch 64, {steps} steps) ==\n"
    ));

    let mut sf = GenerativeModel::new(lfs, 0.7);
    let report = sf
        .fit(
            &matrix,
            &TrainConfig {
                steps,
                batch_size: 64,
                seed: 0,
                ..TrainConfig::default()
            },
        )
        .expect("sampling-free training");
    say(format!(
        "sampling-free: {:>10.0} steps/s  {:>12.0} examples/s  (final NLL {:.4})",
        report.steps_per_sec,
        report.steps_per_sec * 64.0,
        report.final_nll
    ));

    let mut gibbs = GibbsTrainer::new(lfs);
    let greport = gibbs
        .fit(
            &matrix,
            // Chain lengths comparable to the OSS Snorkel sampler's
            // effective per-example sampling work (burn-in plus a few
            // dozen kept samples per gradient estimate).
            &GibbsConfig {
                steps,
                batch_size: 64,
                burn_in: 10,
                samples: 25,
                seed: 0,
                ..GibbsConfig::default()
            },
        )
        .expect("gibbs training");
    say(format!(
        "gibbs sampler: {:>10.0} steps/s  {:>12.0} examples/s  (final NLL {:.4})",
        greport.steps_per_sec, greport.examples_per_sec, greport.final_nll
    ));

    let speedup = report.steps_per_sec / greport.steps_per_sec;
    say(format!("\nsampling-free speedup over Gibbs: {speedup:.1}x"));
    say("(paper: >100 steps/s vs <50 examples/s on Google hardware; the".into());
    say(" absolute rates here are far higher, the *ratio* is the claim)".into());

    // The two trainers should also agree on what they learned.
    let max_gap = sf
        .learned_accuracies()
        .iter()
        .zip(gibbs.model().learned_accuracies())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    say(format!(
        "max learned-accuracy gap between trainers: {max_gap:.4}"
    ));

    // ---- Part 2: thread-scaling sweep over the parallel hot path ------
    let sweep_examples = ((1_000_000.0 * args.scale) as usize).max(5_000);
    let sweep_lfs = 8;
    let sweep_matrix = planted_matrix(sweep_examples, sweep_lfs, args.seed.unwrap_or(1));
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    say(format!(
        "\n== thread scaling: {sweep_examples} examples, {sweep_lfs} LFs, batch 8192 (host parallelism {host_parallelism}) ==\n"
    ));
    say(format!(
        "{:>8} {:>16} {:>16} {:>12} {:>6}",
        "threads", "fit rows/s", "predict rows/s", "speedup", "bytes"
    ));

    let points: Vec<SweepPoint> = SWEEP_THREADS
        .iter()
        .map(|&t| sweep_point(&sweep_matrix, t))
        .collect();
    let base = &points[0];
    let byte_identical = points.iter().all(|p| {
        p.params_checksum == base.params_checksum && p.posterior_checksum == base.posterior_checksum
    });
    for p in &points {
        say(format!(
            "{:>8} {:>16.0} {:>16.0} {:>11.2}x {:>6}",
            p.threads,
            p.fit_rows_per_sec,
            p.predict_rows_per_sec,
            p.fit_rows_per_sec / base.fit_rows_per_sec,
            if p.params_checksum == base.params_checksum
                && p.posterior_checksum == base.posterior_checksum
            {
                "same"
            } else {
                "DIFF"
            }
        ));
    }
    say(format!(
        "\nall thread counts byte-identical: {byte_identical}"
    ));
    assert!(
        byte_identical,
        "parallel training diverged from the single-thread result"
    );

    let doc = Json::obj(vec![
        ("bench", Json::from("label_model")),
        ("examples", Json::from(sweep_examples)),
        ("lfs", Json::from(sweep_lfs)),
        ("batch_size", Json::from(8_192_usize)),
        ("host_parallelism", Json::from(host_parallelism)),
        ("byte_identical", Json::from(byte_identical)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("threads", Json::from(p.threads)),
                            ("rows_per_sec", Json::from(p.fit_rows_per_sec)),
                            ("predict_rows_per_sec", Json::from(p.predict_rows_per_sec)),
                            (
                                "speedup_vs_1",
                                Json::from(p.fit_rows_per_sec / base.fit_rows_per_sec),
                            ),
                            ("final_nll", Json::from(p.final_nll)),
                            (
                                "params_checksum",
                                Json::from(format!("{:016x}", p.params_checksum)),
                            ),
                            (
                                "posterior_checksum",
                                Json::from(format!("{:016x}", p.posterior_checksum)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "gibbs_comparison",
            Json::obj(vec![
                (
                    "sampling_free_steps_per_sec",
                    Json::from(report.steps_per_sec),
                ),
                ("gibbs_steps_per_sec", Json::from(greport.steps_per_sec)),
                ("speedup", Json::from(speedup)),
            ]),
        ),
    ]);

    let out_dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let out_path = out_dir.join("BENCH_label_model.json");
    if let Err(e) = std::fs::write(&out_path, format!("{}\n", doc.to_pretty())) {
        eprintln!("cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    say(format!("wrote {}", out_path.display()));

    // ---- Part 3: telemetry overhead (off vs on, plus doctor fold) -----
    let overhead = measure_obs_overhead(&args);
    say(format!(
        "\n== telemetry overhead ({} examples, best of {} runs) ==\n",
        overhead.examples, OVERHEAD_REPS
    ));
    say(format!(
        "lf execution: {:.3}s off, {:.3}s on  ({:+.1}%)",
        overhead.lf_off_s,
        overhead.lf_on_s,
        overhead.lf_overhead_pct()
    ));
    say(format!(
        "label model:  {:.3}s off, {:.3}s on  ({:+.1}%)",
        overhead.train_off_s,
        overhead.train_on_s,
        overhead.train_overhead_pct()
    ));
    say(format!(
        "doctor fold:  {:.4}s over {} journal lines",
        overhead.summarize_s, overhead.journal_lines
    ));
    let overhead_doc = overhead.to_json();
    let overhead_path = out_dir.join("BENCH_obs_overhead.json");
    if let Err(e) = std::fs::write(&overhead_path, format!("{}\n", overhead_doc.to_pretty())) {
        eprintln!("cannot write {}: {e}", overhead_path.display());
        std::process::exit(1);
    }
    say(format!("wrote {}", overhead_path.display()));

    if args.json {
        println!("{}", doc.to_pretty());
        println!("{}", overhead_doc.to_pretty());
    }
}

/// Repetitions for each overhead measurement (best-of to damp noise).
const OVERHEAD_REPS: usize = 3;

/// Measured telemetry overhead: the identical workload with the
/// observability layer disabled and enabled.
struct ObsOverhead {
    examples: usize,
    lf_off_s: f64,
    lf_on_s: f64,
    train_off_s: f64,
    train_on_s: f64,
    summarize_s: f64,
    journal_lines: usize,
}

impl ObsOverhead {
    fn lf_overhead_pct(&self) -> f64 {
        (self.lf_on_s / self.lf_off_s.max(1e-12) - 1.0) * 100.0
    }
    fn train_overhead_pct(&self) -> f64 {
        (self.train_on_s / self.train_off_s.max(1e-12) - 1.0) * 100.0
    }
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::from("obs_overhead")),
            ("examples", Json::from(self.examples)),
            ("reps", Json::from(OVERHEAD_REPS)),
            ("lf_off_s", Json::from(self.lf_off_s)),
            ("lf_on_s", Json::from(self.lf_on_s)),
            ("lf_overhead_pct", Json::from(self.lf_overhead_pct())),
            ("train_off_s", Json::from(self.train_off_s)),
            ("train_on_s", Json::from(self.train_on_s)),
            ("train_overhead_pct", Json::from(self.train_overhead_pct())),
            ("summarize_s", Json::from(self.summarize_s)),
            ("journal_lines", Json::from(self.journal_lines)),
        ])
    }
}

/// Best-of-N wall time of `f`.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let start = Instant::now();
    let mut out = f();
    best = best.min(start.elapsed().as_secs_f64());
    for _ in 1..reps {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Run the topic LF execution and label-model fit with telemetry off
/// and on, journaling the "on" run, then fold that journal with the
/// doctor's summarizer.
fn measure_obs_overhead(args: &ExpArgs) -> ObsOverhead {
    use drybell_bench::harness::ContentTask;

    let task = ContentTask::topic(args.scale.min(0.05), args.seed, args.workers);
    let dir = tempfile::tempdir().expect("tempdir");
    let journal_path = dir.path().join("overhead.jsonl");
    let telemetry = drybell_obs::Telemetry::with_journal(
        drybell_obs::RunJournal::to_path(&journal_path).expect("journal"),
    );
    // With `--live` the overhead measurement itself serves /metrics:
    // the [obs] budget must hold with the live endpoint attached.
    let _live = args.serve_live_or_exit(&telemetry);

    let (lf_off_s, (matrix, _)) = best_of(OVERHEAD_REPS, || task.run_lfs());
    let (lf_on_s, _) = best_of(OVERHEAD_REPS, || task.run_lfs_observed(Some(&telemetry)));
    let (train_off_s, _) = best_of(OVERHEAD_REPS, || task.fit_label_model(&matrix));
    let (train_on_s, _) = best_of(OVERHEAD_REPS, || {
        task.fit_label_model_observed(&matrix, Some(&telemetry))
    });

    telemetry
        .journal()
        .expect("journal attached")
        .flush()
        .expect("flush");
    let text = std::fs::read_to_string(&journal_path).expect("read journal");
    let (summarize_s, summary) = best_of(OVERHEAD_REPS, || {
        drybell_doctor::RunSummary::from_journal_str(&text).expect("fold journal")
    });
    assert_eq!(summary.examples as usize, task.unlabeled.len());

    ObsOverhead {
        examples: task.unlabeled.len(),
        lf_off_s,
        lf_on_s,
        train_off_s,
        train_on_s,
        summarize_s,
        journal_lines: text.lines().count(),
    }
}
