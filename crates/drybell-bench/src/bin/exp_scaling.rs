//! §1 scaling claim: "implementing weak supervision over 6M+ data points
//! with sub-30min execution time."
//!
//! Runs the faithful sharded pipeline end-to-end on the product task:
//! write the corpus to sharded record files, execute all eight LFs
//! shard-to-shard with per-worker NLP model servers, fit the sampling-free
//! generative model, and write probabilistic labels back out. Reports
//! per-stage wall-clock and the extrapolated time for the paper's 6.5M
//! examples.
//!
//! `--journal <path>` writes the run as a JSONL journal (per-phase
//! `phase` events, the `lf_execution` job summary, `train_epoch` lines,
//! and a closing `scaling` event); `--json` renders the report and the
//! telemetry snapshot as one JSON document instead of text.

use drybell_bench::args::ExpArgs;
use drybell_core::generative::{GenerativeModel, TrainConfig};
use drybell_dataflow::{write_all, JobConfig, ShardSpec};
use drybell_datagen::product;
use drybell_lf::executor::{execute_sharded_observed, ExecOptions};
use drybell_obs::Json;
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse();
    let telemetry = args.telemetry_or_exit();
    let say = |line: String| {
        if !args.json {
            println!("{line}");
        }
    };
    let mut cfg = product::ProductTaskConfig::scaled(args.scale);
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    say(format!(
        "== §1 scaling: sharded pipeline over {} product examples ==\n",
        cfg.num_unlabeled
    ));

    let t0 = Instant::now();
    let ds = product::generate(&cfg);
    let gen_s = t0.elapsed().as_secs_f64();
    say(format!("generate corpus:        {gen_s:>8.1}s"));

    let dir = tempfile::tempdir().expect("tempdir");
    let shards = (args.workers * 4).max(8);
    let input = ShardSpec::new(dir.path(), "docs", shards);
    let t1 = Instant::now();
    write_all(&input, &ds.unlabeled).expect("write shards");
    let write_s = t1.elapsed().as_secs_f64();
    say(format!(
        "write sharded dataset:  {write_s:>8.1}s  ({shards} shards)"
    ));

    let set = product::lf_set(ds.kg.clone());
    let ext = product::text_extractor();
    let output = input.derive("votes");
    let job = JobConfig::new("product-lfs").with_workers(args.workers);
    let mut opts = ExecOptions::new();
    if let Some(t) = &telemetry {
        opts = opts.with_telemetry(t.clone());
    }
    let t2 = Instant::now();
    let (matrix, stats) =
        execute_sharded_observed(&set, Some(&ext), &input, &output, &job, |d| d.id, &opts)
            .expect("LF execution");
    let lf_s = t2.elapsed().as_secs_f64();
    say(format!(
        "execute 8 LFs:          {lf_s:>8.1}s  ({:.0} examples/s, {} workers, {} NLP calls)",
        stats.throughput(),
        stats.workers,
        stats.counters.get("nlp_calls")
    ));

    let t3 = Instant::now();
    let mut model = GenerativeModel::new(matrix.num_lfs(), 0.7);
    let report = model
        .fit_observed(
            &matrix,
            &TrainConfig {
                steps: 3000,
                batch_size: 64,
                seed: cfg.seed,
                ..TrainConfig::default()
            },
            telemetry.as_ref(),
        )
        .expect("label model");
    let fit_s = t3.elapsed().as_secs_f64();
    say(format!(
        "fit generative model:   {fit_s:>8.1}s  ({:.0} steps/s)",
        report.steps_per_sec
    ));

    let t4 = Instant::now();
    let posteriors = model.predict_proba(&matrix);
    let labels_spec = input.derive("labels");
    let label_records: Vec<(u64, f64)> = posteriors
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as u64, p))
        .collect();
    write_all(&labels_spec, &label_records).expect("write labels");
    let post_s = t4.elapsed().as_secs_f64();
    say(format!("write training labels:  {post_s:>8.1}s"));

    let total = gen_s + write_s + lf_s + fit_s + post_s;
    let pipeline = write_s + lf_s + fit_s + post_s; // excludes synthetic datagen
    let rate = cfg.num_unlabeled as f64 / pipeline;
    let full_est = 6_500_000.0 / rate / 60.0;

    if let Some(t) = &telemetry {
        t.emit(
            drybell_obs::Event::new("scaling")
                .field("examples", cfg.num_unlabeled as u64)
                .field("generate_s", gen_s)
                .field("write_s", write_s)
                .field("lf_s", lf_s)
                .field("fit_s", fit_s)
                .field("labels_s", post_s)
                .field("pipeline_s", pipeline)
                .field("throughput", rate)
                .field("est_minutes_6_5m", full_est),
        );
        if let Some(journal) = t.journal() {
            journal.flush().expect("flush journal");
        }
    }

    if args.json {
        let mut doc = vec![
            ("examples", Json::from(cfg.num_unlabeled)),
            (
                "stages",
                Json::obj(vec![
                    ("generate_s", Json::from(gen_s)),
                    ("write_s", Json::from(write_s)),
                    ("lf_s", Json::from(lf_s)),
                    ("fit_s", Json::from(fit_s)),
                    ("labels_s", Json::from(post_s)),
                ]),
            ),
            ("total_s", Json::from(total)),
            ("pipeline_s", Json::from(pipeline)),
            ("throughput", Json::from(rate)),
            ("est_minutes_6_5m", Json::from(full_est)),
        ];
        if let Some(t) = &telemetry {
            doc.push(("telemetry", t.report_json()));
        }
        println!("{}", Json::obj(doc).to_pretty());
        return;
    }

    say(format!(
        "\ntotal:                  {total:>8.1}s  (pipeline only: {pipeline:.1}s)"
    ));
    say(format!(
        "pipeline throughput:    {rate:>8.0} examples/s -> est. {full_est:.1} min for 6.5M"
    ));
    say("\nPaper: 6M+ data points weakly supervised with sub-30min execution".to_string());
    say("time on Google's distributed environment.".to_string());
}
