//! Figure 2: distribution of weak-supervision categories, counted by
//! number of labeling functions, for the three applications.

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_datagen::events;
use drybell_lf::LfCategory;

fn print_row(app: &str, dist: &[(LfCategory, usize)], total: usize) {
    println!("{app}:");
    for (cat, count) in dist {
        let frac = *count as f64 / total.max(1) as f64;
        let bar = "#".repeat((frac * 40.0).round() as usize);
        println!(
            "  {:<18} {:>4} ({:>5.1}%) {}",
            cat.to_string(),
            count,
            frac * 100.0,
            bar
        );
    }
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Figure 2: LF category distribution ==");
    {
        let t = ContentTask::topic(0.001_f64.max(args.scale * 0.01), args.seed, args.workers);
        print_row(
            "Topic Classification",
            &t.lf_set.category_distribution(),
            t.lf_set.len(),
        );
    }
    {
        let t = ContentTask::product(0.001_f64.max(args.scale * 0.01), args.seed, args.workers);
        print_row(
            "Product Classification",
            &t.lf_set.category_distribution(),
            t.lf_set.len(),
        );
    }
    {
        let set = events::lf_set(140, args.seed.unwrap_or(20190702));
        print_row("Real-Time Events", &set.category_distribution(), set.len());
    }
    println!();
    println!("Paper: content apps mix content/model/graph/source heuristics; the");
    println!("events app is dominated by source heuristics and model/graph signals.");
}
