//! Table 1: dataset statistics for the content classification tasks.
//!
//! Prints, per task: unlabeled examples `n`, dev size, test size, percent
//! positive in the test split, and number of labeling functions — the
//! exact columns of Table 1. Run with `--scale 1.0` for the paper's sizes.

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_core::vote::Label;

fn pct_pos(gold: &[Label]) -> f64 {
    100.0 * gold.iter().filter(|&&l| l == Label::Positive).count() as f64 / gold.len() as f64
}

fn main() {
    let args = ExpArgs::parse();
    println!("== Table 1: dataset statistics (scale {}) ==", args.scale);
    println!(
        "{:<24} {:>10} {:>8} {:>8} {:>8} {:>6}",
        "Task", "n", "nDev", "nTest", "%Pos", "#LFs"
    );
    {
        let t = ContentTask::topic(args.scale, args.seed, args.workers);
        println!(
            "{:<24} {:>10} {:>8} {:>8} {:>8.2} {:>6}",
            t.name,
            t.unlabeled.len(),
            t.dev.len(),
            t.test.len(),
            pct_pos(&t.test_gold),
            t.lf_set.len()
        );
    }
    {
        let t = ContentTask::product(args.scale, args.seed, args.workers);
        println!(
            "{:<24} {:>10} {:>8} {:>8} {:>8.2} {:>6}",
            t.name,
            t.unlabeled.len(),
            t.dev.len(),
            t.test.len(),
            pct_pos(&t.test_gold),
            t.lf_set.len()
        );
    }
    println!();
    println!("Paper: Topic 684K/11K/11K/0.86%/10; Product 6.5M/14K/13K/1.48%/8");
}
