//! §6.4 + Figure 6: the real-time events application.
//!
//! Compares a DNN trained on Snorkel DryBell's probabilistic labels
//! against the same DNN trained on a Logical-OR combination of the same
//! 140 weak supervision sources. Reports the §6.4 headline numbers
//! (events of interest identified within a fixed review budget, and a
//! quality metric) and prints Figure 6's score histograms.

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::run_events;
use drybell_datagen::events::EventTaskConfig;
use drybell_ml::metrics::{histogram_entropy, render_histogram};

fn main() {
    let args = ExpArgs::parse();
    let mut cfg = EventTaskConfig::scaled(args.scale);
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    println!(
        "== §6.4: real-time events — DryBell vs Logical-OR ({} events, {} LFs) ==\n",
        cfg.num_unlabeled, cfg.num_lfs
    );
    let dnn_iterations = ((cfg.num_unlabeled / 64) * 8).clamp(500, 20_000);
    let report = run_events(&cfg, args.workers, dnn_iterations);

    println!(
        "events of interest in review budget:  DryBell {}  vs  Logical-OR {}  ({:+.0}%)",
        report.drybell_tp_at_k,
        report.or_tp_at_k,
        report.more_events_frac() * 100.0
    );
    println!(
        "quality (precision@budget):           DryBell {:.3}  vs  Logical-OR {:.3}  ({:+.1}%)",
        report.drybell_quality,
        report.or_quality,
        report.quality_improvement() * 100.0
    );
    println!(
        "threshold-0.5 F1:                     DryBell {:.3}  vs  Logical-OR {:.3}",
        report.drybell.f1(),
        report.logical_or.f1()
    );
    println!(
        "ranking (PR-AUC):                     DryBell {:.3}  vs  Logical-OR {:.3}",
        report.drybell_pr_auc, report.or_pr_auc
    );
    println!(
        "calibration error (ECE, lower=better): DryBell {:.3}  vs  Logical-OR {:.3}",
        report.drybell_ece, report.or_ece
    );

    println!(
        "\nFigure 6 — score histogram, Logical-OR model (entropy {:.2}):",
        histogram_entropy(&report.or_hist)
    );
    print!("{}", render_histogram(&report.or_hist, 40));
    println!(
        "\nFigure 6 — score histogram, Snorkel DryBell model (entropy {:.2}):",
        histogram_entropy(&report.drybell_hist)
    );
    print!("{}", render_histogram(&report.drybell_hist, 40));

    println!("\nPaper: DryBell identifies 58% more events of interest, with a 4.5%");
    println!("quality improvement, and a far smoother score distribution than the");
    println!("Logical-OR baseline (which piles scores at the extremes).");
}
