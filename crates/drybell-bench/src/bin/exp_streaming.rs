//! Streaming weak supervision end to end: spool-directory ingestion,
//! incremental label-model training, and in-stream drift detection.
//!
//! The paper's real-time deployments cannot wait for a batch boundary:
//! shards arrive continuously, the label model must absorb them without
//! refitting from scratch, and §3.3's monitored-over-time LF statistics
//! have to flag a degrading upstream resource while the stream is still
//! flowing. This binary wires those three pieces together:
//!
//! * **Ingestion** — the topic task's unlabeled pool is cut into shards
//!   and trickled into a spool directory as atomically-committed `.rec`
//!   files; a `drybell-dataflow` [`StreamIngestor`] polls the spool and
//!   delivers each committed shard exactly once, in name order. A torn
//!   (footer-less) file is planted mid-stream to prove uncommitted data
//!   never reaches the pipeline, and a drained re-poll proves delivery
//!   is idempotent.
//! * **Incremental training** — each arriving shard folds into a
//!   [`GenerativeModel`] via `fit_incremental`, warm-starting from the
//!   carried parameters and optimizer moments with a Robbins–Monro
//!   learning-rate decay (`lr / (fold+1)`), instead of refitting. The
//!   whole consume loop is deterministic, so a second pass over the
//!   same spool reproduces parameters and posteriors byte-for-byte
//!   (checked with an FNV-1a checksum over the exact f64 bits).
//! * **Live monitoring** — per-shard `lf_execution` events and metric
//!   snapshots fold into rolling windows (`drybell-doctor`
//!   [`StreamMonitor`]); a seeded total NLP outage is injected
//!   mid-stream and must gate a window verdict (`nlp/degraded`,
//!   `lf/<name>/degraded`) within a bounded number of *events*.
//! * **In-stream shadow PSI** — every shard also sweeps a fixed probe
//!   pool through a [`WindowedShadow`] eval of a candidate model and
//!   folds the resulting `shadow` event (windowed score histograms)
//!   into the same monitor window. Mid-stream the candidate is swapped
//!   for one trained on shifted labels; the window verdict must flag
//!   the score-distribution PSI (`serving/score_dist_candidate`) within
//!   the same event budget, with zero PSI false positives while the
//!   candidate is faithful.
//!
//! Results land in `results/BENCH_streaming.json` for the CI
//! `streaming-bench` gate (`doctor bench` holds `detect_events`,
//! `score_shift_detect_events`, and `nll_gap` under ceilings; see
//! `doctor.toml [streaming]`). Pass `--live <addr>` to expose the
//! run's telemetry over HTTP while it streams.

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_core::optim::Optimizer;
use drybell_core::{GenerativeModel, LabelMatrix, TrainConfig};
use drybell_dataflow::{FaultPlan, ShardReader, ShardWriter, StreamIngestor};
use drybell_datagen::topic::TopicDoc;
use drybell_doctor::{DoctorConfig, StreamMonitor, WindowFolder};
use drybell_features::{FeatureHasher, FeatureSpace, SpaceRegistry, SparseVector};
use drybell_lf::executor::{execute_in_memory_observed, ExecOptions, ExecutionStats};
use drybell_ml::{FtrlConfig, LogisticRegression};
use drybell_obs::{Json, Telemetry};
use drybell_serving::{
    ExportedModel, ModelSpec, ScoreInput, ServingRegistry, ShadowEval, WindowedShadow,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// Shards the unlabeled pool is cut into.
const SHARDS: usize = 12;

/// Journal events per monitor window. Each shard contributes two
/// events — `lf_execution`, then the probe pool's `shadow` report — so
/// a window still spans two shards, and the first two healthy shards
/// build the baseline (including its shadow score histograms; a PSI
/// verdict without a baseline distribution reads as `New`, not drift).
const WINDOW_EVENTS: usize = 4;

/// 0-based shard indices executed under a total NLP outage.
const OUTAGE_SHARDS: std::ops::Range<usize> = 6..8;

/// First 0-based shard whose shadow eval runs against the *shifted*
/// candidate model (v3) instead of the faithful clone (v2) — the seeded
/// candidate-model score shift the shadow-PSI window must catch. Starts
/// after the outage window has closed so each fault gates on its own
/// signal family.
const SHIFT_SHARD: usize = 8;

/// Fixed probe payloads swept through the shadow eval per shard. Every
/// sweep closes exactly one [`WindowedShadow`] window, so each shard's
/// `shadow` event carries the histogram of the full pool.
const PROBES: usize = 256;

/// Registry versions of model `"m"`: v1 serves, v2 is the faithful
/// candidate clone, v3 is the shifted candidate.
const STABLE_CANDIDATE: u32 = 2;
const SHIFTED_CANDIDATE: u32 = 3;

/// Feature-hash width (log2) for the shadow models.
const HASH_BITS: usize = 10;

/// Shard index that first appears as a torn (footer-less) file.
const TORN_SHARD: usize = 4;

/// Gradient steps folded per arriving shard (batch 256, matching the
/// batch refit's `label_model_config`).
const FOLD_STEPS: usize = 500;

/// Base Adam learning rate, decayed `BASE_LR / (fold + 1)` so the
/// incremental trajectory averages across shards instead of chasing the
/// most recent one.
const BASE_LR: f64 = 0.05;

/// FNV-1a over the exact bit patterns of a float sequence: equal
/// checksums ⇔ byte-identical values.
fn bits_checksum(xs: impl Iterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn shard_path(spool: &Path, index: usize) -> PathBuf {
    spool.join(format!("shard-{index:04}.rec"))
}

/// Commit shard `index` (doc ids `[lo, hi)`) into the spool: staged to
/// a `.tmp` sibling, CRC-footered, atomically renamed.
fn commit_shard(spool: &Path, index: usize, lo: usize, hi: usize) {
    let path = shard_path(spool, index);
    let mut w = ShardWriter::<u64>::create(&path).expect("create shard");
    for id in lo..hi {
        w.write(&(id as u64)).expect("write record");
    }
    w.finish().expect("commit shard");
}

/// The per-shard `lf_execution` event the monitor folds — the same
/// shape `ExecutionStats::emit_to` journals.
fn lf_event(stats: &ExecutionStats) -> Json {
    Json::obj(vec![
        ("kind", Json::from("lf_execution")),
        ("seconds", Json::from(stats.seconds)),
        ("examples", Json::from(stats.examples as u64)),
        ("nlp_calls", Json::from(stats.nlp_calls)),
        ("nlp_degraded", Json::from(stats.nlp_degraded)),
    ])
}

/// The serving registry and probe pool the in-stream shadow eval runs
/// against. Built once and shared by both passes so replay determinism
/// covers the shadow scores too.
struct ShadowFixture {
    registry: ServingRegistry,
    probes: Vec<SparseVector>,
}

/// Stage model `"m"` v1 (serving), v2 (byte-identical clone — the
/// faithful candidate), and v3 (trained on inverted labels — the
/// shifted candidate), plus a fixed probe pool. While the candidate is
/// v2 every window's score histograms match the baseline exactly (PSI
/// 0); v3 pushes probe scores across the decision boundary, a shift
/// PSI must flag.
fn build_shadow_fixture(seed: u64) -> ShadowFixture {
    let mut spaces = SpaceRegistry::new();
    let hashed = spaces
        .register(FeatureSpace::servable("hashed", 10))
        .expect("fresh space registry");
    let registry = ServingRegistry::new(spaces, 1_000);
    let h = FeatureHasher::new(1 << HASH_BITS);

    let mut rng = StdRng::seed_from_u64(seed);
    let vocab: Vec<String> = (0..400).map(|i| format!("tok{i}")).collect();
    let doc = |rng: &mut StdRng| -> Vec<&str> {
        (0..16)
            .map(|_| vocab[rng.gen_range(0..vocab.len())].as_str())
            .collect()
    };
    let data: Vec<(SparseVector, f64)> = (0..2_000)
        .map(|_| {
            let tokens = doc(&mut rng);
            let y = f64::from(u8::from(tokens.iter().any(|t| t.ends_with('7'))));
            (h.bag_of_words(&tokens), y)
        })
        .collect();
    let mut faithful = LogisticRegression::new(1 << HASH_BITS, FtrlConfig::default());
    faithful.fit(&data).expect("faithful logreg training");
    let inverted: Vec<(SparseVector, f64)> =
        data.iter().map(|(x, y)| (x.clone(), 1.0 - y)).collect();
    let mut shifted = LogisticRegression::new(1 << HASH_BITS, FtrlConfig::default());
    shifted.fit(&inverted).expect("shifted logreg training");

    for (version, model) in [(1, &faithful), (STABLE_CANDIDATE, &faithful)] {
        registry
            .stage(ModelSpec {
                name: "m".into(),
                version,
                feature_spaces: vec![hashed],
                model: ExportedModel::LogReg(model.clone()),
            })
            .expect("stage faithful");
    }
    registry
        .stage(ModelSpec {
            name: "m".into(),
            version: SHIFTED_CANDIDATE,
            feature_spaces: vec![hashed],
            model: ExportedModel::LogReg(shifted),
        })
        .expect("stage shifted");
    registry.promote("m", 1).expect("promote v1");

    let probes: Vec<SparseVector> = (0..PROBES)
        .map(|_| h.bag_of_words(&doc(&mut rng)))
        .collect();
    ShadowFixture { registry, probes }
}

/// Sweep the probe pool through a windowed shadow eval of this shard's
/// candidate and return the closed window's `shadow` event — the score
/// histograms the monitor judges for PSI drift.
fn shadow_event(fixture: &ShadowFixture, shard_index: usize) -> Json {
    let candidate = if shard_index >= SHIFT_SHARD {
        SHIFTED_CANDIDATE
    } else {
        STABLE_CANDIDATE
    };
    let eval = ShadowEval::new(&fixture.registry, "m", candidate).expect("shadow eval");
    let mut shadow = WindowedShadow::new(eval, fixture.probes.len() as u64);
    let mut report = None;
    for probe in &fixture.probes {
        let (_score, closed) = shadow
            .observe(ScoreInput::Sparse(probe))
            .expect("probe scoring");
        report = closed.or(report);
    }
    report
        .expect("a full probe sweep closes exactly one window")
        .to_event()
        .to_json()
}

/// Everything one pass over the spool produces.
struct StreamRun {
    model: GenerativeModel,
    full_matrix: LabelMatrix,
    /// The stream minus the outage shards' rows — the quality-gate
    /// comparison runs on these, since the degraded rows are exactly
    /// the data the monitor flagged as untrustworthy.
    healthy_matrix: LabelMatrix,
    shards_delivered: u64,
    degraded_examples: u64,
    /// Events from the first outage event to the first gating window
    /// verdict, inclusive (None: the outage was never flagged).
    detect_events: Option<u64>,
    /// Gating signal names of the first flagged window.
    first_gating: Vec<String>,
    /// Gating windows seen before any outage event (must stay 0).
    false_positives: u64,
    /// Events from the first shifted-candidate shadow event to the
    /// first window gating on a score-distribution PSI signal,
    /// inclusive (None: the shift was never flagged).
    shift_detect_events: Option<u64>,
    /// Score-distribution signals of the first PSI-gating window.
    shift_gating: Vec<String>,
    /// Windows gating on score PSI while the candidate was still
    /// faithful (must stay 0).
    psi_false_positives: u64,
    windows_closed: u64,
    events_seen: u64,
    param_checksum: u64,
    posterior_checksum: u64,
}

/// Consume the whole spool: poll, execute, fold, monitor.
///
/// With `trickle` set, shards are committed just-in-time between polls
/// (the live run, including the torn-file chaos); without it the spool
/// is already fully populated and a single poll drains it in name order
/// (the replay run). Both paths process the identical shard sequence.
fn run_stream(
    task: &ContentTask<TopicDoc>,
    shadow: &ShadowFixture,
    spool: &Path,
    trickle: bool,
    seed: u64,
    workers: usize,
) -> StreamRun {
    let telemetry = Telemetry::new();
    let mut ingestor = StreamIngestor::new(spool).with_telemetry(telemetry.clone());

    let docs = task.unlabeled.len();
    let per_shard = docs.div_ceil(SHARDS);
    let fold_cfg = TrainConfig {
        steps: FOLD_STEPS,
        batch_size: 256,
        class_prior: 0.5,
        seed,
        ..TrainConfig::default()
    };
    let mut model = GenerativeModel::new(task.lf_set.len(), 0.7);
    let mut state = model
        .begin_incremental(&fold_cfg)
        .expect("begin incremental");
    let mut full_matrix = LabelMatrix::with_capacity(task.lf_set.len(), docs);
    let mut healthy_matrix = LabelMatrix::with_capacity(task.lf_set.len(), docs);

    let mut baseline_folder = Some(WindowFolder::new());
    let mut monitor: Option<StreamMonitor> = None;
    let mut folds = 0usize;
    let mut degraded_examples = 0u64;
    let mut outage_started_at: Option<u64> = None;
    let mut detect_events = None;
    let mut first_gating = Vec::new();
    let mut false_positives = 0u64;
    let mut shift_started_at: Option<u64> = None;
    let mut shift_detect_events = None;
    let mut shift_gating = Vec::new();
    let mut psi_false_positives = 0u64;

    let mut next_to_commit = 0usize;
    let mut processed = 0usize;
    while processed < SHARDS {
        if trickle && next_to_commit < SHARDS {
            let (lo, hi) = (
                next_to_commit * per_shard,
                (next_to_commit * per_shard + per_shard).min(docs),
            );
            if next_to_commit == TORN_SHARD {
                // Plant a torn file at the shard's final name: bytes but
                // no CRC footer. The ingestor must skip it this poll.
                std::fs::write(shard_path(spool, TORN_SHARD), b"torn mid-write")
                    .expect("plant torn shard");
                let arrivals = ingestor.poll().expect("poll over torn shard");
                assert!(
                    arrivals.is_empty(),
                    "a footer-less shard must never be delivered"
                );
                // The writer stages to `.tmp` and renames over the torn
                // file — exactly how a producer retry heals a tear.
            }
            commit_shard(spool, next_to_commit, lo, hi);
            next_to_commit += 1;
        }

        for arrived in ingestor.poll().expect("poll spool") {
            let shard_index = arrived.sequence as usize;
            let ids: Vec<u64> = ShardReader::<u64>::open(&arrived.path)
                .expect("open delivered shard")
                .map(|r| r.expect("read record"))
                .collect();
            let (lo, hi) = (
                ids[0] as usize,
                *ids.last().expect("non-empty shard") as usize + 1,
            );
            assert_eq!(hi - lo, ids.len(), "shard ids must be contiguous");
            let shard_docs = &task.unlabeled[lo..hi];

            let mut opts = ExecOptions::new().with_telemetry(telemetry.clone());
            if OUTAGE_SHARDS.contains(&shard_index) {
                opts = opts.with_nlp_faults(
                    FaultPlan::seeded(seed ^ 0x6f75_7461_6765).with_nlp_error_rate(1.0),
                );
            }
            let (matrix, stats) = execute_in_memory_observed(
                &task.lf_set,
                task.text.as_ref(),
                shard_docs,
                workers,
                &opts,
            )
            .expect("LF execution over shard");
            degraded_examples += stats.nlp_degraded;

            // Fold the shard into the warm-started model with the
            // Robbins–Monro decay, and into the full-stream matrix for
            // the end-of-run refit comparison.
            state.set_optimizer(Optimizer::adam(BASE_LR / (folds + 1) as f64));
            model
                .fit_incremental(&matrix, &fold_cfg, &mut state)
                .expect("incremental fold");
            folds += 1;
            for row in 0..matrix.num_examples() {
                full_matrix
                    .push_raw_row(matrix.row(row))
                    .expect("same arity");
                if stats.nlp_degraded == 0 {
                    healthy_matrix
                        .push_raw_row(matrix.row(row))
                        .expect("same arity");
                }
            }

            // Feed the monitor: metric deltas first, then the shard's
            // event pair — `lf_execution`, then the probe pool's
            // `shadow` histograms — so the window that closes on the
            // second event sees its own shard on both signal families.
            let events = [lf_event(&stats), shadow_event(shadow, shard_index)];
            let snapshot = telemetry.metrics().snapshot();
            if let Some(folder) = baseline_folder.as_mut() {
                folder.fold_metrics(&snapshot);
                for event in &events {
                    folder.fold_event(event);
                }
                if folder.events() >= WINDOW_EVENTS {
                    let mut folder = baseline_folder.take().expect("folder present");
                    let baseline = folder.take();
                    monitor = Some(
                        StreamMonitor::new(baseline, DoctorConfig::default(), WINDOW_EVENTS)
                            .with_telemetry(telemetry.clone())
                            .with_folder(folder),
                    );
                }
            } else {
                let m = monitor.as_mut().expect("monitor after baseline");
                m.observe_metrics(&snapshot);
                if stats.nlp_degraded > 0 && outage_started_at.is_none() {
                    outage_started_at = Some(m.events_seen() + 1);
                }
                if shard_index >= SHIFT_SHARD && shift_started_at.is_none() {
                    // The shifted histograms ride the second event of
                    // this shard's pair.
                    shift_started_at = Some(m.events_seen() + 2);
                }
                for event in &events {
                    let Some(verdict) = m.observe_event(event) else {
                        continue;
                    };
                    if !verdict.gates() {
                        continue;
                    }
                    let signals: Vec<String> =
                        verdict.report.gating().map(|v| v.signal.clone()).collect();
                    let on_psi = signals.iter().any(|s| s.contains("score_dist"));
                    let on_outage = signals.iter().any(|s| {
                        s == "nlp/degraded" || (s.starts_with("lf/") && s.ends_with("/degraded"))
                    });
                    if on_outage {
                        match outage_started_at {
                            Some(start) if detect_events.is_none() => {
                                detect_events = Some(m.events_seen() - start + 1);
                                first_gating = signals.clone();
                            }
                            Some(_) => {}
                            None => false_positives += 1,
                        }
                    }
                    if on_psi {
                        match shift_started_at {
                            Some(start) if shift_detect_events.is_none() => {
                                shift_detect_events = Some(m.events_seen() - start + 1);
                                shift_gating = signals
                                    .iter()
                                    .filter(|s| s.contains("score_dist"))
                                    .cloned()
                                    .collect();
                            }
                            Some(_) => {}
                            None => psi_false_positives += 1,
                        }
                    }
                    if !on_outage && !on_psi {
                        false_positives += 1;
                    }
                }
            }
            processed += 1;
        }
    }

    // The spool is drained: a re-poll must deliver nothing (committed
    // shards are remembered and never re-delivered).
    assert!(
        ingestor.poll().expect("drained poll").is_empty(),
        "re-polling a drained spool re-delivered a shard"
    );

    let posteriors = model.predict_proba_threads(&full_matrix, workers);
    let param_checksum = bits_checksum(
        model
            .alphas()
            .iter()
            .chain(model.betas().iter())
            .copied()
            .chain(std::iter::once(model.eta())),
    );
    StreamRun {
        shards_delivered: ingestor.shards_seen(),
        degraded_examples,
        detect_events,
        first_gating,
        false_positives,
        shift_detect_events,
        shift_gating,
        psi_false_positives,
        windows_closed: monitor.as_ref().map_or(0, |m| m.windows_closed()),
        events_seen: monitor.as_ref().map_or(0, |m| m.events_seen()),
        param_checksum,
        posterior_checksum: bits_checksum(posteriors.into_iter()),
        model,
        full_matrix,
        healthy_matrix,
    }
}

fn main() {
    let args = ExpArgs::parse();
    let quiet = args.json;
    let say = |s: String| {
        if !quiet {
            println!("{s}");
        }
    };
    let telemetry = args.telemetry_or_exit().unwrap_or_default();
    args.emit_header(&telemetry, "streaming");
    let _live_server = args.serve_live_or_exit(&telemetry);

    let seed = args.seed.unwrap_or(11);
    let task = ContentTask::topic(args.scale, Some(seed), args.workers);
    let shadow = build_shadow_fixture(seed ^ 0x7368_6164);
    let spool = tempfile::tempdir().expect("spool dir");
    say(format!(
        "== stream: {} docs over {SHARDS} shards, outage on shards {}..{}, candidate shift at shard {SHIFT_SHARD}, window {WINDOW_EVENTS} events ==\n",
        task.unlabeled.len(),
        OUTAGE_SHARDS.start,
        OUTAGE_SHARDS.end,
    ));

    // ---- Pass 1: live trickle with torn-shard chaos --------------------
    let live = run_stream(&task, &shadow, spool.path(), true, seed, args.workers);
    assert_eq!(live.shards_delivered, SHARDS as u64);
    assert_eq!(live.false_positives, 0, "healthy windows must stay quiet");
    let detect_events = live
        .detect_events
        .expect("the seeded outage was never flagged by a window verdict");
    assert!(
        live.first_gating.iter().any(|s| s == "nlp/degraded"),
        "outage window must gate on nlp/degraded, got {:?}",
        live.first_gating
    );
    assert!(
        live.first_gating
            .iter()
            .any(|s| s.starts_with("lf/") && s.ends_with("/degraded")),
        "outage window must name the degraded LF, got {:?}",
        live.first_gating
    );
    say(format!(
        "outage flagged {detect_events} event(s) after onset; gating signals: {}",
        live.first_gating.join(", ")
    ));

    // The seeded candidate-model score shift: flagged by the shadow-PSI
    // window within the same event budget as the outage, with zero PSI
    // false positives on the healthy (faithful-candidate) prefix.
    assert_eq!(
        live.psi_false_positives, 0,
        "no window may gate on score PSI while the candidate is faithful"
    );
    let shift_detect_events = live
        .shift_detect_events
        .expect("the seeded candidate score shift was never flagged by a window verdict");
    assert!(
        live.shift_gating
            .iter()
            .any(|s| s == "serving/score_dist_candidate"),
        "shift window must gate on the candidate score distribution, got {:?}",
        live.shift_gating
    );
    let detect_budget = DoctorConfig::default()
        .budget("streaming.detect_events")
        .expect("default detect_events budget");
    assert!(
        shift_detect_events as f64 <= detect_budget,
        "score shift flagged after {shift_detect_events} events, budget {detect_budget}"
    );
    say(format!(
        "candidate score shift flagged {shift_detect_events} event(s) after onset; PSI signals: {}",
        live.shift_gating.join(", ")
    ));

    // ---- Pass 2: replay the same spool, byte-identical -----------------
    let replay = run_stream(&task, &shadow, spool.path(), false, seed, args.workers);
    let replay_identical = replay.param_checksum == live.param_checksum
        && replay.posterior_checksum == live.posterior_checksum;
    assert!(
        replay_identical,
        "replaying the spool must reproduce parameters and posteriors byte-for-byte"
    );
    assert_eq!(replay.detect_events, live.detect_events);
    assert_eq!(replay.shift_detect_events, live.shift_detect_events);
    say(format!(
        "replay: params {:016x} posteriors {:016x} (identical: {replay_identical})",
        replay.param_checksum, replay.posterior_checksum
    ));

    // ---- Batch refit comparison ----------------------------------------
    // The reference is a from-scratch batch fit on the healthy rows,
    // and both models are scored on those rows. The incremental model
    // streamed *through* the outage — its decayed folds must wash the
    // transient out and land where a batch fit on trustworthy data
    // lands. Refitting or scoring on the outage rows would anchor the
    // gate on exactly the data the monitor flagged as untrustworthy
    // (and reward fitting the corruption).
    let refit = task.fit_label_model(&live.healthy_matrix);
    let nll_incremental = live
        .model
        .nll_threads(&live.healthy_matrix, args.workers)
        .expect("incremental NLL");
    let nll_refit = refit
        .nll_threads(&live.healthy_matrix, args.workers)
        .expect("refit NLL");
    let nll_gap = (nll_incremental - nll_refit).abs();
    let inc_posteriors = live
        .model
        .predict_proba_threads(&live.full_matrix, args.workers);
    let refit_posteriors = refit.predict_proba_threads(&live.full_matrix, args.workers);
    let (mut diff_sum, mut diff_max) = (0.0f64, 0.0f64);
    for (a, b) in inc_posteriors.iter().zip(&refit_posteriors) {
        let d = (a - b).abs();
        diff_sum += d;
        diff_max = diff_max.max(d);
    }
    let posterior_mean_abs_diff = diff_sum / inc_posteriors.len().max(1) as f64;
    say(format!(
        "\nincremental NLL {nll_incremental:.4} vs refit {nll_refit:.4} (gap {nll_gap:.4}); \
         posterior diff mean {posterior_mean_abs_diff:.4} max {diff_max:.4}"
    ));

    let doc = Json::obj(vec![
        ("bench", Json::from("streaming")),
        ("seed", Json::from(seed)),
        ("docs", Json::from(task.unlabeled.len())),
        (
            "healthy_examples",
            Json::from(live.healthy_matrix.num_examples()),
        ),
        ("shards", Json::from(SHARDS)),
        ("window_events", Json::from(WINDOW_EVENTS)),
        (
            "outage_shards",
            Json::from((OUTAGE_SHARDS.end - OUTAGE_SHARDS.start) as u64),
        ),
        ("detect_events", Json::from(detect_events)),
        ("score_shift_shard", Json::from(SHIFT_SHARD)),
        ("score_shift_detect_events", Json::from(shift_detect_events)),
        ("psi_false_positives", Json::from(live.psi_false_positives)),
        ("nll_gap", Json::from(nll_gap)),
        ("nll_incremental", Json::from(nll_incremental)),
        ("nll_refit", Json::from(nll_refit)),
        (
            "posterior_mean_abs_diff",
            Json::from(posterior_mean_abs_diff),
        ),
        ("posterior_max_abs_diff", Json::from(diff_max)),
        ("replay_identical", Json::from(replay_identical)),
        ("degraded_examples", Json::from(live.degraded_examples)),
        ("windows_closed", Json::from(live.windows_closed)),
        ("monitored_events", Json::from(live.events_seen)),
        (
            "first_gating",
            Json::Arr(
                live.first_gating
                    .iter()
                    .map(|s| Json::from(s.clone()))
                    .collect(),
            ),
        ),
        (
            "score_shift_gating",
            Json::Arr(
                live.shift_gating
                    .iter()
                    .map(|s| Json::from(s.clone()))
                    .collect(),
            ),
        ),
    ]);

    telemetry.emit(
        drybell_obs::Event::new("streaming_bench")
            .field("shards", SHARDS as u64)
            .field("detect_events", detect_events)
            .field("score_shift_detect_events", shift_detect_events)
            .field("nll_gap", nll_gap)
            .field("replay_identical", replay_identical)
            .field("degraded_examples", live.degraded_examples),
    );

    let out_dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let out_path = out_dir.join("BENCH_streaming.json");
    if let Err(e) = std::fs::write(&out_path, format!("{}\n", doc.to_pretty())) {
        eprintln!("cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    say(format!("\nwrote {}", out_path.display()));

    args.finish_trace_or_exit(&telemetry);
    args.write_summary_or_exit(&telemetry);
    if args.json {
        println!("{}", doc.to_pretty());
    }
}
