//! End-to-end quickstart: the smallest run that exercises every
//! telemetry surface the doctor reads.
//!
//! Generates the topic task, executes the LFs through the *sharded*
//! dataflow path (so job/phase events and per-LF vote + degradation
//! counters are journaled), fits the generative label model, journals
//! the LF diagnostics report, trains the discriminative model, stages
//! it behind a shadowed candidate (journaling both score
//! distributions), and writes the `--summary` RunSummary for
//! `doctor baseline` / `doctor check`.
//!
//! ```text
//! quickstart_pipeline --scale 0.02 --seed 7 --summary results/run.json
//! quickstart_pipeline --scale 0.02 --seed 7 --nlp-outage 0.35 --summary results/outage.json
//! ```
//!
//! `--nlp-outage <rate>` injects a seeded, deterministic NLP-service
//! outage (`FaultPlan::with_nlp_error_rate`): the NLP LFs degrade to
//! abstain on the affected examples, which is exactly the §3.3 failure
//! mode the doctor exists to flag.

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_core::analysis::LfReport;
use drybell_dataflow::{write_all, FaultPlan, JobConfig, ShardSpec};
use drybell_features::{FeatureHasher, FeatureSpace, SpaceRegistry};
use drybell_lf::executor::{execute_sharded_observed, ExecOptions};
use drybell_serving::{ExportedModel, ModelSpec, ScoreInput, ServingRegistry, ShadowEval};

const TASK: &str = "quickstart";

fn main() {
    let args = ExpArgs::parse();
    let telemetry = args.telemetry_or_exit();
    if let Some(t) = &telemetry {
        args.emit_header(t, TASK);
    }

    // Root of the span tree: every stage below nests under this via
    // the tracer's thread-local open-span stack, so a `--trace` file
    // shows run → lf_exec/sharded → job/* → lf/* as one hierarchy.
    let run_span = telemetry.as_ref().map(|t| t.span("run"));

    let task = ContentTask::topic(args.scale, args.seed, args.workers);
    let lf_names: Vec<String> = task
        .lf_set
        .lfs()
        .iter()
        .map(|lf| lf.metadata().name.clone())
        .collect();

    // Stage 1: sharded LF execution (journal: phase/job events; job
    // counters: votes, degradations, cache traffic).
    let dir = tempfile::tempdir().expect("tempdir");
    let input = ShardSpec::new(dir.path(), "docs", 4);
    write_all(&input, &task.unlabeled).expect("write input shards");
    let output = input.derive("votes");
    let job = JobConfig::new("quickstart-lfs").with_workers(args.workers);
    let mut opts = ExecOptions::new().with_nlp_cache(4096);
    if let Some(t) = &telemetry {
        opts = opts.with_telemetry(t.clone());
    }
    if let Some(rate) = args.nlp_outage {
        opts = opts.with_nlp_faults(FaultPlan::seeded(task.seed).with_nlp_error_rate(rate));
    }
    let (matrix, stats) = execute_sharded_observed(
        &task.lf_set,
        task.text.as_ref(),
        &input,
        &output,
        &job,
        |d| d.id,
        &opts,
    )
    .expect("sharded LF execution");
    eprintln!(
        "lf execution: {} examples in {:.2}s over {} workers",
        stats.records_in, stats.seconds, stats.workers
    );

    // Stage 2: generative label model (journal: train_epoch/train).
    let label_model = task.fit_label_model_observed(&matrix, telemetry.as_ref());

    // Stage 3: LF diagnostics — §3.3's monitored statistics, journaled
    // as an lf_report event and exported as registry-named gauges.
    let report = LfReport::build(&matrix, &label_model, &lf_names, None).expect("lf report");
    if let Some(t) = &telemetry {
        if let Some(journal) = t.journal() {
            report.emit_to(journal);
        }
        report.export_to(t.metrics());
    }

    // Stage 4: discriminative model + shadowed candidate. The serving
    // incumbent trains on the full iteration budget; the candidate on
    // half — a deterministic stand-in for "the next model version".
    let posteriors = label_model.predict_proba(&matrix);
    let serving_lr = task.train_drybell_lr(&posteriors);
    let drybell = task.eval_on_test(&serving_lr);
    let candidate_lr = {
        let feats = task.featurize_all(&task.unlabeled);
        let examples: Vec<_> = feats.into_iter().zip(posteriors.iter().copied()).collect();
        task.train_lr(&examples, task.lr_iterations / 2)
    };

    let mut spaces = SpaceRegistry::new();
    spaces
        .register(FeatureSpace::servable("hashed-text", 40))
        .expect("feature space");
    let hashed = spaces.lookup("hashed-text").expect("registered above");
    let mut registry = ServingRegistry::new(spaces, 10_000);
    if let Some(t) = &telemetry {
        registry = registry.with_telemetry(t);
    }
    registry
        .stage(ModelSpec {
            name: TASK.into(),
            version: 1,
            feature_spaces: vec![hashed],
            model: ExportedModel::LogReg(serving_lr),
        })
        .expect("stage v1");
    registry
        .stage(ModelSpec {
            name: TASK.into(),
            version: 2,
            feature_spaces: vec![hashed],
            model: ExportedModel::LogReg(candidate_lr),
        })
        .expect("stage v2");
    registry.promote(TASK, 1).expect("promote v1");

    let mut shadow = ShadowEval::new(&registry, TASK, 2).expect("shadow v2");
    let hasher = FeatureHasher::new(task.hash_dims);
    for doc in &task.test {
        let x = (task.featurizer)(doc, &hasher);
        shadow
            .observe(ScoreInput::Sparse(&x))
            .expect("shadow scoring");
    }
    // Dropping the evaluator drains its thread-locally batched scoring
    // latencies into the registry before anything snapshots metrics.
    let shadow_report = shadow.report().clone();
    drop(shadow);
    if let Some(t) = &telemetry {
        if let Some(journal) = t.journal() {
            shadow_report.emit_to(journal);
            // The end-model quality signal the doctor gates on.
            journal.emit(
                drybell_obs::Event::new("content_report")
                    .field("task", task.name)
                    .field("examples", matrix.num_examples() as u64)
                    .field("drybell_f1", drybell.f1())
                    .field("drybell_precision", drybell.precision())
                    .field("drybell_recall", drybell.recall())
                    .field("lf_seconds", stats.seconds),
            );
        }
    }

    // Close the root span, then export the trace: the Chrome file, the
    // journaled trace_summary, and the obs/selftime/* gauges all need
    // the full tree finished before the metrics report is rendered.
    drop(run_span);
    if let Some(t) = &telemetry {
        args.finish_trace_or_exit(t);
    }

    if args.json {
        if let Some(t) = &telemetry {
            println!("{}", t.report_json().to_pretty());
        }
    } else {
        println!(
            "quickstart: {} examples, drybell f1 {:.4}, shadow flip rate {:.4}",
            matrix.num_examples(),
            drybell.f1(),
            shadow_report.flip_rate()
        );
        println!("{}", report.to_table());
    }

    if let Some(t) = &telemetry {
        if let Some(journal) = t.journal() {
            journal.flush().expect("flush journal");
        }
        args.write_summary_or_exit(t);
    }
}
