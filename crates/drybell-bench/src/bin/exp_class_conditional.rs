//! Extension experiment: the class-conditional (MeTaL-style) label model
//! vs the paper's conditionally-independent model, on the LF structure
//! that separates them — a fully *unipolar* LF set over a rare class.
//!
//! §5.2's future-work paragraph suggests plugging richer matrix-style
//! models into the same sampling-free framework; this binary measures
//! what that buys. On bipolar LF sets the two families agree; on unipolar
//! sets the CI model's maximum marginal likelihood is the degenerate
//! "rare-class LFs are always wrong" solution, while the class-conditional
//! model (given the class balance, as MeTaL assumes) recovers the truth.

use drybell_bench::args::ExpArgs;
use drybell_core::class_conditional::{CcTrainConfig, ClassConditionalModel};
use drybell_core::generative::{GenerativeModel, TrainConfig};
use drybell_core::LabelMatrix;
use drybell_ml::metrics::BinaryMetrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn unipolar_matrix(examples: usize, pos_rate: f64, seed: u64) -> (LabelMatrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = LabelMatrix::with_capacity(6, examples);
    let mut gold = Vec::with_capacity(examples);
    for _ in 0..examples {
        let y = rng.gen_bool(pos_rate);
        let fire = |rng: &mut StdRng, tp: f64, fp: f64, y: bool| -> bool {
            if y {
                rng.gen_bool(tp)
            } else {
                rng.gen_bool(fp)
            }
        };
        let row = [
            i8::from(fire(&mut rng, 0.70, 0.005, y)),
            i8::from(fire(&mut rng, 0.50, 0.003, y)),
            i8::from(fire(&mut rng, 0.35, 0.002, y)),
            -i8::from(fire(&mut rng, 0.60, 0.02, !y)),
            -i8::from(fire(&mut rng, 0.45, 0.015, !y)),
            -i8::from(fire(&mut rng, 0.30, 0.01, !y)),
        ];
        matrix.push_raw_row(&row).expect("row");
        gold.push(y);
    }
    (matrix, gold)
}

fn report(name: &str, post: &[f64], gold: &[bool]) {
    let m = BinaryMetrics::at_threshold(post, gold, 0.5 + 1e-9);
    println!(
        "{name:<28} P={:.3} R={:.3} F1={:.3} (predicted positives: {})",
        m.precision(),
        m.recall(),
        m.f1(),
        m.predicted_positives()
    );
}

fn main() {
    let args = ExpArgs::parse();
    let examples = ((400_000.0 * args.scale) as usize).max(20_000);
    let pos_rate = 0.05;
    println!(
        "== class-conditional vs conditionally-independent (unipolar LFs, {} examples, {}% positive) ==\n",
        examples,
        pos_rate * 100.0
    );
    let (matrix, gold) = unipolar_matrix(examples, pos_rate, args.seed.unwrap_or(1));

    let mut ci = GenerativeModel::new(6, 0.7);
    ci.fit(
        &matrix,
        &TrainConfig {
            steps: 6000,
            batch_size: 256,
            ..TrainConfig::default()
        },
    )
    .expect("ci fit");
    report(
        "conditionally independent",
        &ci.predict_proba(&matrix),
        &gold,
    );

    let mut cc = ClassConditionalModel::new(6);
    cc.fit(
        &matrix,
        &CcTrainConfig {
            class_prior: pos_rate,
            ..CcTrainConfig::default()
        },
    )
    .expect("cc fit");
    report(
        "class-conditional (MeTaL)",
        &cc.predict_proba(&matrix),
        &gold,
    );

    println!("\nlearned vote tables (class-conditional), LF 0 (positive-only, 70%/0.5%):");
    let c = cc.confusion(0);
    println!(
        "  P(fire|+1) = {:.3}   P(fire|-1) = {:.3}",
        c[0][0], c[1][0]
    );
    println!("\nThe CI model ties both classes to one accuracy parameter, so a fully");
    println!("unipolar set admits the degenerate 'rare-class LFs are always wrong'");
    println!("optimum; the class-conditional family, given the class balance,");
    println!("recovers the planted firing rates. DryBell's applications avoid the");
    println!("degenerate case by including bipolar LFs (see README notes).");
}
