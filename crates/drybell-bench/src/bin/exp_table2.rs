//! Table 2: evaluation of Snorkel DryBell on the content classification
//! tasks, optimizing for F1.
//!
//! Reports precision/recall/F1 *relative to the baseline of training the
//! discriminative classifier directly on the hand-labeled development
//! set*, for (a) the generative model used directly as a classifier and
//! (b) the full DryBell pipeline (LR trained on probabilistic labels) —
//! the paper's exact presentation.

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::{ContentReport, ContentTask};

fn print_task(name: &str, report: &ContentReport) {
    let (gen_rel, db_rel) = report.table2_rows();
    println!("{name}");
    println!(
        "  absolute baseline: P={:.3} R={:.3} F1={:.3}",
        report.baseline.precision(),
        report.baseline.recall(),
        report.baseline.f1()
    );
    println!(
        "  {:<28} {:>8} {:>8} {:>8} {:>8}",
        "relative:", "P", "R", "F1", "Lift"
    );
    println!(
        "  {:<28} {} {:>+7.1}%",
        "Generative Model Only",
        gen_rel.row(),
        gen_rel.lift() * 100.0
    );
    println!(
        "  {:<28} {} {:>+7.1}%",
        "Snorkel DryBell",
        db_rel.row(),
        db_rel.lift() * 100.0
    );
    println!(
        "  LF execution: {} examples in {:.1}s ({:.0}/s)",
        report.lf_stats.examples,
        report.lf_stats.seconds,
        report.lf_stats.throughput()
    );
    println!();
}

fn main() {
    let args = ExpArgs::parse();
    // `--journal <path>`: both tasks append to one JSONL journal
    // (`lf_execution`, `train_epoch`, `train`, `content_report` events).
    let telemetry = args.telemetry_or_exit();
    println!(
        "== Table 2: relative P/R/F1 vs dev-set baseline (scale {}) ==\n",
        args.scale
    );
    let topic = ContentTask::topic(args.scale, args.seed, args.workers);
    print_task(topic.name, &topic.run_full_observed(telemetry.as_ref()));
    let product = ContentTask::product(args.scale, args.seed, args.workers);
    print_task(product.name, &product.run_full_observed(telemetry.as_ref()));
    if let Some(journal) = telemetry.as_ref().and_then(|t| t.journal()) {
        journal.flush().expect("flush journal");
    }
    println!("Paper: Topic  gen-only 84.4/101.7/93.9 (-6.1%), DryBell 100.6/132.1/117.5 (+17.5%)");
    println!("       Product gen-only 103.8/102.0/102.7 (+2.7%), DryBell 99.2/110.1/105.2 (+5.2%)");
}
