//! Table 4: ablation — equal LF weights vs the generative model.
//!
//! "We also measured the importance of using the generative model to
//! estimate the weights of the labeling function votes by training an
//! identical logistic regression classifier giving equal weight to all
//! the labeling functions ... using the generative model ... leads to a
//! 4.8% average performance improvement."

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;
use drybell_ml::metrics::RelativeMetrics;

fn print_task<X: Sync + Send>(task: &ContentTask<X>) -> f64 {
    let baseline = task.baseline();
    let equal = task.run_equal_weights();
    let full = task.run_full().drybell;
    let lift = full.f1() / equal.f1().max(1e-12) - 1.0;
    let equal_rel = RelativeMetrics::versus(&equal, &baseline);
    let full_rel = RelativeMetrics::versus(&full, &baseline);
    println!("{}", task.name);
    println!(
        "  {:<24} {:>8} {:>8} {:>8} {:>8}",
        "relative:", "P", "R", "F1", "Lift"
    );
    println!("  {:<24} {}", "Equal Weights", equal_rel.row());
    println!(
        "  {:<24} {} {:>+7.1}%",
        "+ Generative Model",
        full_rel.row(),
        lift * 100.0
    );
    println!();
    lift
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Table 4: equal weights vs generative model (scale {}) ==\n",
        args.scale
    );
    let topic = ContentTask::topic(args.scale, args.seed, args.workers);
    let l1 = print_task(&topic);
    let product = ContentTask::product(args.scale, args.seed, args.workers);
    let l2 = print_task(&product);
    println!(
        "Average lift from generative weighting: {:+.1}%",
        50.0 * (l1 + l2)
    );
    println!();
    println!("Paper: Topic equal 54.1/163.7/109.0 -> gen 100.6/132.1/117.5 (+7.7%)");
    println!("       Product equal 94.3/110.9/103.2 -> gen 99.2/110.1/105.2 (+1.9%)");
    println!("       Average +4.8%");
}
