//! Figure 5: trade-off between weak supervision and hand-labeled data.
//!
//! Trains the discriminative classifier on increasingly large hand-labeled
//! training sets and reports relative F1 vs the number of labels, together
//! with the (constant) DryBell line. The paper finds crossovers at roughly
//! 80K labels (topic) and 12K labels (product).
//!
//! Sweep points scale with `--scale`; at `--scale 1.0` they match the
//! paper's axis ranges (25K–145K topic, 7K–17K product).

use drybell_bench::args::ExpArgs;
use drybell_bench::harness::ContentTask;

fn sweep<X: Sync + Send>(task: &ContentTask<X>, points: &[usize]) {
    let baseline = task.baseline();
    let drybell = task.run_full().drybell;
    let db_rel = drybell.f1() / baseline.f1().max(1e-12);
    println!("{}", task.name);
    println!(
        "  Snorkel DryBell ({} unlabeled): relative F1 = {:.1}%",
        task.unlabeled.len(),
        db_rel * 100.0
    );
    println!("  {:>12} {:>12} {:>10}", "hand labels", "relative F1", "");
    let mut crossover: Option<usize> = None;
    for &n in points {
        if n > task.unlabeled.len() {
            continue;
        }
        let m = task.supervised_with_n_labels(n);
        let rel = m.f1() / baseline.f1().max(1e-12);
        let marker = if rel >= db_rel { "<= crossover" } else { "" };
        if rel >= db_rel && crossover.is_none() {
            crossover = Some(n);
        }
        println!("  {:>12} {:>11.1}% {:>10}", n, rel * 100.0, marker);
    }
    match crossover {
        Some(n) => println!("  fully-supervised matches DryBell at ~{n} hand labels\n"),
        None => println!("  fully-supervised never reaches DryBell within the sweep\n"),
    }
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Figure 5: hand-label trade-off (scale {}) ==\n",
        args.scale
    );
    let s = args.scale;
    // Sweep points as fractions of the unlabeled pool, so the crossover is
    // findable at any --scale. At --scale 1.0 the absolute counts cover
    // the paper's axes (25K–145K topic, 7K–17K product).
    let fractions = [
        0.002, 0.01, 0.03, 0.06, 0.1, 0.15, 0.21, 0.3, 0.5, 0.75, 1.0,
    ];
    let points = |pool: usize| -> Vec<usize> {
        fractions
            .iter()
            .map(|f| ((pool as f64 * f).round() as usize).max(10))
            .collect()
    };
    let topic = ContentTask::topic(s, args.seed, args.workers);
    let pts = points(topic.unlabeled.len());
    sweep(&topic, &pts);
    let product = ContentTask::product(s, args.seed, args.workers);
    let pts = points(product.unlabeled.len());
    sweep(&product, &pts);
    println!("Paper: crossover ~80K labels (topic), ~12K labels (product).");
}
