//! # drybell-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§6), plus criterion micro-benchmarks. The shared pipeline
//! logic lives in [`harness`]; each `exp_*` binary parameterizes it and
//! prints the rows the paper reports. See `EXPERIMENTS.md` at the
//! workspace root for the paper-vs-measured record.
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_table1` | Table 1 — dataset statistics |
//! | `exp_figure2` | Figure 2 — LF category distribution |
//! | `exp_table2` | Table 2 — generative vs discriminative, relative P/R/F1 |
//! | `exp_figure5` | Figure 5 — hand-label trade-off sweeps |
//! | `exp_table3` | Table 3 — servable-only vs +non-servable ablation |
//! | `exp_table4` | Table 4 — equal weights vs generative model ablation |
//! | `exp_speed` | §5.2 — sampling-free vs Gibbs throughput |
//! | `exp_realtime` | §6.4 + Figure 6 — events app vs Logical-OR |
//! | `exp_scaling` | §1 — end-to-end throughput at 6M+ scale |
//!
//! Every binary accepts `--scale <f>` (default 0.1) and `--seed <n>`;
//! `--scale 1.0` reproduces paper-scale dataset sizes.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod harness;
