//! Shared experiment pipeline.
//!
//! Implements the full §6 methodology once, parameterized by task:
//! run the labeling functions over the unlabeled pool, fit the
//! sampling-free generative model (with the class prior estimated from the
//! dev split, as a developer would), train the discriminative logistic
//! regression on the probabilistic labels with the noise-aware loss, and
//! evaluate everything *relative to the baseline of training directly on
//! the hand-labeled development set* — the paper's reporting convention.

use drybell_core::baselines::{equal_weight_labels, logical_or_labels};
use drybell_core::generative::{GenerativeModel, TrainConfig};
use drybell_core::vote::Label;
use drybell_core::LabelMatrix;
use drybell_dataflow::par_map_vec;
use drybell_datagen::{events, product, topic};
use drybell_features::{FeatureHasher, SparseVector};
use drybell_lf::executor::{
    execute_in_memory, execute_in_memory_observed, ExecOptions, ExecutionStats, TextExtractor,
};
use drybell_lf::LfSet;
use drybell_ml::metrics::{score_histogram, BinaryMetrics, RelativeMetrics};
use drybell_ml::{FtrlConfig, LogisticRegression, Mlp, MlpConfig};
use drybell_obs::Telemetry;
use std::sync::Arc;

/// Servable featurization callback shared across pipeline stages.
pub type Featurizer<X> = Arc<dyn Fn(&X, &FeatureHasher) -> SparseVector + Send + Sync>;

/// A content-classification task instance (topic or product), bundling
/// data, LFs, featurization, and training hyperparameters.
pub struct ContentTask<X: Sync + Send> {
    /// Task name for report headers.
    pub name: &'static str,
    /// Unlabeled pool.
    pub unlabeled: Vec<X>,
    /// Hidden gold for the pool (hand-label sweeps only).
    pub unlabeled_gold: Vec<Label>,
    /// Development split and labels.
    pub dev: Vec<X>,
    /// Development labels.
    pub dev_gold: Vec<Label>,
    /// Test split and labels.
    pub test: Vec<X>,
    /// Test labels.
    pub test_gold: Vec<Label>,
    /// The application's labeling functions.
    pub lf_set: LfSet<X>,
    /// Text extractor for NLP LFs.
    pub text: Option<TextExtractor<X>>,
    /// Servable featurization.
    pub featurizer: Featurizer<X>,
    /// Positive class rate (for the label-model prior; in practice the
    /// developer estimates this from the dev split).
    pub pos_rate: f64,
    /// FTRL iterations for the discriminative model (paper: 10K topic,
    /// 100K product).
    pub lr_iterations: usize,
    /// Hashed feature dimensionality.
    pub hash_dims: u32,
    /// Worker threads.
    pub workers: usize,
    /// Seed for all trainers.
    pub seed: u64,
}

/// Everything `run_full` measures for Table 2.
pub struct ContentReport {
    /// Baseline: LR trained directly on the dev split (the denominator of
    /// every relative number).
    pub baseline: BinaryMetrics,
    /// The generative model's own predictions on the test LF votes
    /// (Table 2 "Generative Model Only" — not servable in production).
    pub generative: BinaryMetrics,
    /// DryBell: LR trained on the probabilistic labels.
    pub drybell: BinaryMetrics,
    /// LF execution stats over the unlabeled pool.
    pub lf_stats: ExecutionStats,
    /// The fitted label model (for diagnostics reports).
    pub label_model: GenerativeModel,
    /// The label matrix over the unlabeled pool.
    pub matrix: LabelMatrix,
    /// Training labels produced by the generative model.
    pub posteriors: Vec<f64>,
}

impl ContentReport {
    /// Table 2 rows: (generative-only, drybell), both relative to the
    /// baseline.
    pub fn table2_rows(&self) -> (RelativeMetrics, RelativeMetrics) {
        (
            RelativeMetrics::versus(&self.generative, &self.baseline),
            RelativeMetrics::versus(&self.drybell, &self.baseline),
        )
    }

    /// Emit one `content_report` event with the headline metrics to a run
    /// journal, closing the journal's account of a `run_full` pipeline.
    pub fn emit_to(&self, task: &str, journal: &drybell_obs::RunJournal) {
        journal.emit(
            drybell_obs::Event::new("content_report")
                .field("task", task)
                .field("examples", self.matrix.num_examples() as u64)
                .field("baseline_f1", self.baseline.f1())
                .field("generative_f1", self.generative.f1())
                .field("drybell_f1", self.drybell.f1())
                .field("drybell_precision", self.drybell.precision())
                .field("drybell_recall", self.drybell.recall())
                .field("lf_seconds", self.lf_stats.seconds),
        );
    }
}

impl ContentTask<topic::TopicDoc> {
    /// Build the topic task at `scale` of the paper's unlabeled-pool size
    /// (dev/test stay at full Table 1 size — they are small and the
    /// baseline needs them).
    pub fn topic(scale: f64, seed: Option<u64>, workers: usize) -> ContentTask<topic::TopicDoc> {
        let mut cfg = topic::TopicTaskConfig::paper();
        cfg.num_unlabeled = ((cfg.num_unlabeled as f64 * scale).round() as usize).max(100);
        if let Some(s) = seed {
            cfg.seed = s;
        }
        let ds = topic::generate(&cfg);
        ContentTask {
            name: "Topic Classification",
            lf_set: topic::lf_set(ds.crawl_table.clone()),
            text: Some(topic::text_extractor()),
            featurizer: Arc::new(topic::featurize),
            unlabeled: ds.unlabeled,
            unlabeled_gold: ds.unlabeled_gold,
            dev: ds.dev,
            dev_gold: ds.dev_gold,
            test: ds.test,
            test_gold: ds.test_gold,
            pos_rate: cfg.pos_rate,
            lr_iterations: 10_000,
            hash_dims: 1 << 18,
            workers,
            seed: cfg.seed,
        }
    }
}

impl ContentTask<product::ProductDoc> {
    /// Build the product task at `scale` of the paper's unlabeled-pool
    /// size.
    pub fn product(
        scale: f64,
        seed: Option<u64>,
        workers: usize,
    ) -> ContentTask<product::ProductDoc> {
        let mut cfg = product::ProductTaskConfig::paper();
        cfg.num_unlabeled = ((cfg.num_unlabeled as f64 * scale).round() as usize).max(100);
        if let Some(s) = seed {
            cfg.seed = s;
        }
        let ds = product::generate(&cfg);
        ContentTask {
            name: "Product Classification",
            lf_set: product::lf_set(ds.kg.clone()),
            text: Some(product::text_extractor()),
            featurizer: Arc::new(product::featurize),
            unlabeled: ds.unlabeled,
            unlabeled_gold: ds.unlabeled_gold,
            dev: ds.dev,
            dev_gold: ds.dev_gold,
            test: ds.test,
            test_gold: ds.test_gold,
            pos_rate: cfg.pos_rate,
            lr_iterations: 100_000,
            hash_dims: 1 << 16,
            workers,
            seed: cfg.seed,
        }
    }
}

impl<X: Sync + Send> ContentTask<X> {
    /// The paper-default label-model training config for this task.
    ///
    /// `P(Y)` is uniform, exactly as §5.2 states ("for simplicity, here we
    /// assume that `P(Y_i)` is uniform"). With sub-1% positive rates a
    /// *fixed* informative prior turns out to be actively harmful: the
    /// marginal likelihood then prefers an inverted basin in which rare
    /// positive-voting LFs are deemed inaccurate, because flipping a
    /// handful of positives costs less than paying `logit(π)` per example.
    /// The uniform prior lets agreement structure, not the prior, assign
    /// the clusters (the `exp_table4`-adjacent ablation in
    /// `benches/label_model.rs` measures this).
    pub fn label_model_config(&self) -> TrainConfig {
        TrainConfig {
            steps: 6000,
            batch_size: 256,
            class_prior: 0.5,
            seed: self.seed,
            ..TrainConfig::default()
        }
    }

    /// Run every LF over the unlabeled pool.
    pub fn run_lfs(&self) -> (LabelMatrix, ExecutionStats) {
        self.run_lfs_observed(None)
    }

    /// Run every LF over the unlabeled pool, instrumenting per-LF vote
    /// counters, latency histograms, and the `lf_execution` journal event
    /// when telemetry is supplied.
    pub fn run_lfs_observed(&self, telemetry: Option<&Telemetry>) -> (LabelMatrix, ExecutionStats) {
        let mut opts = ExecOptions::new();
        if let Some(t) = telemetry {
            opts = opts.with_telemetry(t.clone());
        }
        execute_in_memory_observed(
            &self.lf_set,
            self.text.as_ref(),
            &self.unlabeled,
            self.workers,
            &opts,
        )
        .expect("LF execution")
    }

    /// Run every LF over an arbitrary slice (e.g. the test split, for the
    /// generative-model-only evaluation).
    pub fn run_lfs_on(&self, docs: &[X]) -> LabelMatrix {
        execute_in_memory(&self.lf_set, self.text.as_ref(), docs, self.workers)
            .expect("LF execution")
            .0
    }

    /// Fit the sampling-free generative model on a label matrix.
    pub fn fit_label_model(&self, matrix: &LabelMatrix) -> GenerativeModel {
        self.fit_label_model_observed(matrix, None)
    }

    /// Fit the generative model with per-epoch telemetry (`train_epoch`
    /// journal events, `obs/train/step_us` histogram) when supplied.
    pub fn fit_label_model_observed(
        &self,
        matrix: &LabelMatrix,
        telemetry: Option<&Telemetry>,
    ) -> GenerativeModel {
        let mut model = GenerativeModel::new(matrix.num_lfs(), 0.7);
        model
            .fit_observed(matrix, &self.label_model_config(), telemetry)
            .expect("label model training");
        model
    }

    /// Featurize a slice in parallel.
    pub fn featurize_all(&self, docs: &[X]) -> Vec<SparseVector> {
        let hasher = FeatureHasher::new(self.hash_dims);
        let f = self.featurizer.clone();
        par_map_vec(
            docs,
            self.workers,
            |_| Ok(()),
            move |_s: &mut (), d: &X| Ok(f(d, &hasher)),
        )
        .expect("featurization")
    }

    /// FTRL config with this task's iteration budget.
    pub fn lr_config(&self, iterations: usize) -> FtrlConfig {
        FtrlConfig {
            alpha: 0.2,
            iterations,
            batch_size: 64,
            seed: self.seed,
            ..FtrlConfig::default()
        }
    }

    /// Train a logistic regression on `(features, soft target)` pairs.
    pub fn train_lr(
        &self,
        examples: &[(SparseVector, f64)],
        iterations: usize,
    ) -> LogisticRegression {
        let mut model =
            LogisticRegression::new(self.hash_dims as usize, self.lr_config(iterations));
        model.fit(examples).expect("harness datasets are non-empty");
        model
    }

    /// Evaluate a trained LR on the test split (threshold 0.5, as §6.1).
    pub fn eval_on_test(&self, model: &LogisticRegression) -> BinaryMetrics {
        let feats = self.featurize_all(&self.test);
        let scores: Vec<f64> = feats.iter().map(|x| model.predict_proba(x)).collect();
        let gold: Vec<bool> = self
            .test_gold
            .iter()
            .map(|l| *l == Label::Positive)
            .collect();
        BinaryMetrics::at_threshold(&scores, &gold, 0.5)
    }

    /// The baseline: LR trained directly on the hand-labeled dev split.
    pub fn baseline(&self) -> BinaryMetrics {
        let feats = self.featurize_all(&self.dev);
        let examples: Vec<(SparseVector, f64)> = feats
            .into_iter()
            .zip(&self.dev_gold)
            .map(|(x, y)| (x, y.as_prob()))
            .collect();
        let model = self.train_lr(&examples, self.lr_iterations);
        self.eval_on_test(&model)
    }

    /// A supervised LR trained on the first `n` (features, gold) pairs of
    /// the unlabeled pool — Figure 5's hand-label sweep points.
    pub fn supervised_with_n_labels(&self, n: usize) -> BinaryMetrics {
        let n = n.min(self.unlabeled.len());
        let feats = self.featurize_all(&self.unlabeled[..n]);
        let examples: Vec<(SparseVector, f64)> = feats
            .into_iter()
            .zip(&self.unlabeled_gold[..n])
            .map(|(x, y)| (x, y.as_prob()))
            .collect();
        let model = self.train_lr(&examples, self.lr_iterations);
        self.eval_on_test(&model)
    }

    /// Train the DryBell discriminative model from probabilistic labels
    /// over the unlabeled pool.
    pub fn train_drybell_lr(&self, posteriors: &[f64]) -> LogisticRegression {
        let feats = self.featurize_all(&self.unlabeled);
        let examples: Vec<(SparseVector, f64)> =
            feats.into_iter().zip(posteriors.iter().copied()).collect();
        self.train_lr(&examples, self.lr_iterations)
    }

    /// The full Table 2 pipeline.
    pub fn run_full(&self) -> ContentReport {
        self.run_full_observed(None)
    }

    /// The full Table 2 pipeline with end-to-end telemetry: LF execution
    /// and label-model training emit through the bundle, and the final
    /// report lands in the journal as a `content_report` event.
    pub fn run_full_observed(&self, telemetry: Option<&Telemetry>) -> ContentReport {
        let (matrix, lf_stats) = self.run_lfs_observed(telemetry);
        let label_model = self.fit_label_model_observed(&matrix, telemetry);
        let posteriors = label_model.predict_proba(&matrix);
        let drybell_lr = self.train_drybell_lr(&posteriors);
        let drybell = self.eval_on_test(&drybell_lr);

        // Generative model only: posterior over the *test* LF votes.
        // All-abstain rows sit at exactly the uniform prior 0.5; the
        // paper's 0.5 threshold is interpreted as "strictly more likely
        // positive than negative", so ties go negative (the majority
        // class) rather than counting every uncovered example as a
        // predicted positive.
        let test_matrix = self.run_lfs_on(&self.test);
        let gen_scores = label_model.predict_proba(&test_matrix);
        let gold: Vec<bool> = self
            .test_gold
            .iter()
            .map(|l| *l == Label::Positive)
            .collect();
        let generative = BinaryMetrics::at_threshold(&gen_scores, &gold, 0.5 + 1e-9);

        let baseline = self.baseline();
        let report = ContentReport {
            baseline,
            generative,
            drybell,
            lf_stats,
            label_model,
            matrix,
            posteriors,
        };
        if let Some(journal) = telemetry.and_then(Telemetry::journal) {
            report.emit_to(self.name, journal);
        }
        report
    }

    /// Table 3 ablation: keep only the servable LF columns, refit, retrain.
    pub fn run_servable_only(&self) -> BinaryMetrics {
        let (matrix, _) = self.run_lfs();
        let mask = self.lf_set.servable_mask();
        let sub = matrix.select_columns(&mask).expect("mask length");
        let mut model = GenerativeModel::new(sub.num_lfs(), 0.7);
        model
            .fit(&sub, &self.label_model_config())
            .expect("training");
        let posteriors = model.predict_proba(&sub);
        let lr = self.train_drybell_lr(&posteriors);
        self.eval_on_test(&lr)
    }

    /// Table 4 ablation: unweighted average of LF votes as labels.
    pub fn run_equal_weights(&self) -> BinaryMetrics {
        let (matrix, _) = self.run_lfs();
        let labels = equal_weight_labels(&matrix, self.pos_rate);
        let lr = self.train_drybell_lr(&labels);
        self.eval_on_test(&lr)
    }
}

// ---------------------------------------------------------------------------
// Real-time events harness (§6.4, Figure 6)
// ---------------------------------------------------------------------------

/// Results of the events comparison.
pub struct EventsReport {
    /// DNN trained on DryBell's probabilistic labels: test metrics at 0.5.
    pub drybell: BinaryMetrics,
    /// DNN trained on Logical-OR labels.
    pub logical_or: BinaryMetrics,
    /// True events found in the top-k of each ranking (k = expected
    /// positives) — the "events of interest identified" comparison.
    pub drybell_tp_at_k: u64,
    /// Logical-OR's top-k true positives.
    pub or_tp_at_k: u64,
    /// Precision@k for DryBell (the "internal quality metric" analog).
    pub drybell_quality: f64,
    /// Precision@k for Logical-OR.
    pub or_quality: f64,
    /// Figure 6 histograms (20 bins over [0,1]) of test scores.
    pub drybell_hist: Vec<u64>,
    /// Logical-OR's score histogram.
    pub or_hist: Vec<u64>,
    /// Threshold-free ranking quality (average precision) of each model.
    pub drybell_pr_auc: f64,
    /// Logical-OR's average precision.
    pub or_pr_auc: f64,
    /// Expected calibration error of each model (10 bins).
    pub drybell_ece: f64,
    /// Logical-OR's calibration error.
    pub or_ece: f64,
}

impl EventsReport {
    /// §6.4's headline: relative increase in events of interest found.
    pub fn more_events_frac(&self) -> f64 {
        self.drybell_tp_at_k as f64 / (self.or_tp_at_k.max(1)) as f64 - 1.0
    }

    /// §6.4's quality improvement.
    pub fn quality_improvement(&self) -> f64 {
        self.drybell_quality / self.or_quality.max(1e-12) - 1.0
    }
}

/// Run the full real-time events comparison.
pub fn run_events(
    cfg: &events::EventTaskConfig,
    workers: usize,
    dnn_iterations: usize,
) -> EventsReport {
    let ds = events::generate(cfg);
    let set = events::lf_set(cfg.num_lfs, cfg.seed);
    let (matrix, _) = execute_in_memory(&set, None, &ds.unlabeled, workers).expect("LF exec");

    // DryBell labels.
    let mut label_model = GenerativeModel::new(matrix.num_lfs(), 0.7);
    label_model
        .fit(
            &matrix,
            &TrainConfig {
                steps: 6000,
                batch_size: 256,
                class_prior: 0.5,
                seed: cfg.seed,
                ..TrainConfig::default()
            },
        )
        .expect("label model");
    let drybell_labels = label_model.predict_proba(&matrix);
    // Logical-OR labels (§6.4 baseline).
    let or_labels = logical_or_labels(&matrix);

    let train_dnn = |targets: &[f64], seed: u64| -> Mlp {
        let data: Vec<(Vec<f64>, f64)> = ds
            .unlabeled
            .iter()
            .zip(targets)
            .map(|(e, &t)| (e.servable.clone(), t))
            .collect();
        let mut net = Mlp::new(
            events::SERVABLE_DIMS,
            MlpConfig {
                hidden: vec![32, 16],
                iterations: dnn_iterations,
                seed,
                ..MlpConfig::default()
            },
        );
        net.fit(&data);
        net
    };
    let drybell_net = train_dnn(&drybell_labels, cfg.seed);
    let or_net = train_dnn(&or_labels, cfg.seed);

    let gold: Vec<bool> = ds.test_gold.iter().map(|l| *l == Label::Positive).collect();
    let score = |net: &Mlp| -> Vec<f64> {
        ds.test
            .iter()
            .map(|e| net.predict_proba(&e.servable))
            .collect()
    };
    let drybell_scores = score(&drybell_net);
    let or_scores = score(&or_net);

    // Fixed review budget: k = expected number of true events.
    let k = ((ds.test.len() as f64) * cfg.pos_rate).round() as usize;
    let tp_at_k = |scores: &[f64]| -> u64 {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
        idx.iter().take(k).filter(|&&i| gold[i]).count() as u64
    };
    let drybell_tp_at_k = tp_at_k(&drybell_scores);
    let or_tp_at_k = tp_at_k(&or_scores);

    EventsReport {
        drybell: BinaryMetrics::at_threshold(&drybell_scores, &gold, 0.5),
        logical_or: BinaryMetrics::at_threshold(&or_scores, &gold, 0.5),
        drybell_tp_at_k,
        or_tp_at_k,
        drybell_quality: drybell_tp_at_k as f64 / k.max(1) as f64,
        or_quality: or_tp_at_k as f64 / k.max(1) as f64,
        drybell_hist: score_histogram(&drybell_scores, 20),
        or_hist: score_histogram(&or_scores, 20),
        drybell_pr_auc: drybell_ml::ranking::average_precision(&drybell_scores, &gold),
        or_pr_auc: drybell_ml::ranking::average_precision(&or_scores, &gold),
        drybell_ece: drybell_ml::ranking::expected_calibration_error(&drybell_scores, &gold, 10),
        or_ece: drybell_ml::ranking::expected_calibration_error(&or_scores, &gold, 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run of the topic pipeline. This is the
    /// repo's smoke test for the whole §6.1 methodology — run through the
    /// observed path so it doubles as the harness telemetry check.
    #[test]
    fn topic_pipeline_end_to_end_smoke() {
        let mut task = ContentTask::topic(0.02, Some(11), 4); // ~13.7K docs
        task.lr_iterations = 2000;
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        let telemetry = Telemetry::with_journal(journal);
        let report = task.run_full_observed(Some(&telemetry));
        // DryBell must beat the baseline on F1 (the paper's headline).
        assert!(
            report.drybell.f1() > report.baseline.f1(),
            "drybell {:.3} vs baseline {:.3}",
            report.drybell.f1(),
            report.baseline.f1()
        );
        // The posteriors must be informative about the hidden gold
        // (strict > 0.5 so the all-abstain rows' uniform 0.5 posterior is
        // not counted as a positive prediction).
        let correct = report
            .posteriors
            .iter()
            .zip(&task.unlabeled_gold)
            .filter(|(p, y)| (**p > 0.5) == (**y == Label::Positive))
            .count() as f64
            / task.unlabeled_gold.len() as f64;
        assert!(correct > 0.97, "posterior accuracy {correct:.3}");

        // The journal tells the run's whole story: LF execution, training
        // epochs, the training summary, and the closing report.
        let events = buffer.parsed_lines().unwrap();
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| e.get("kind").and_then(|k| k.as_str()).unwrap())
            .collect();
        assert_eq!(kinds.iter().filter(|k| **k == "lf_execution").count(), 1);
        assert!(kinds.contains(&"train_epoch"));
        assert!(kinds.contains(&"train"));
        assert_eq!(kinds.last(), Some(&"content_report"));
        let closing = events.last().unwrap();
        assert_eq!(
            closing.get("task").and_then(|v| v.as_str()),
            Some("Topic Classification")
        );
        assert!(
            (closing.get("drybell_f1").and_then(|v| v.as_f64()).unwrap() - report.drybell.f1())
                .abs()
                < 1e-12
        );
        // Metrics side: every LF has a vote counter and a latency
        // histogram; training recorded its step latencies.
        let snap = telemetry.metrics().snapshot();
        let mut total_votes = 0;
        for name in task.lf_set.names() {
            total_votes += snap.counter(&format!("votes/{name}"));
            let hist = snap.histogram(&format!("obs/lf/{name}/eval_us")).unwrap();
            assert_eq!(
                hist.count(),
                task.unlabeled.len() as u64,
                "obs/lf/{name}/eval_us"
            );
        }
        assert!(total_votes > 0);
        assert_eq!(
            snap.histogram("obs/train/step_us").map(|h| h.count()),
            Some(6000)
        );
    }

    #[test]
    fn events_pipeline_smoke() {
        let cfg = events::EventTaskConfig {
            num_unlabeled: 3000,
            num_test: 1500,
            pos_rate: 0.05,
            num_lfs: 140,
            seed: 5,
        };
        // Enough DNN steps for the OR-trained net to saturate its scores;
        // at a few hundred steps neither net reaches the top bin and the
        // histogram comparison below would be noise.
        let report = run_events(&cfg, 4, 1500);
        // DryBell must find at least as many true events in the review
        // budget and with better quality than the Logical-OR baseline.
        assert!(
            report.drybell_tp_at_k > report.or_tp_at_k,
            "drybell {} vs OR {}",
            report.drybell_tp_at_k,
            report.or_tp_at_k
        );
        // The OR-trained net piles mass at the top bins (Figure 6 left):
        // its top bin should hold far more than drybell's.
        let or_top = report.or_hist.last().copied().unwrap_or(0);
        let db_top = report.drybell_hist.last().copied().unwrap_or(0);
        assert!(
            or_top > db_top,
            "OR should saturate scores: top bin {or_top} vs {db_top}"
        );
    }
}
