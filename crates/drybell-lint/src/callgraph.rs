//! Cross-crate call-graph construction over the [`crate::model`]
//! symbol tables.
//!
//! Resolution is heuristic — name plus receiver-type hints, never
//! type inference — and every edge it cannot pin down is recorded as an
//! [`UnresolvedEdge`] with the reason, so the graph's blind spots are
//! visible in the output instead of silently shaping it. The order of
//! heuristics, from strongest to weakest:
//!
//! 1. **Typed receiver** (`self.m()` inside `impl T`, a local or
//!    parameter with a visible type head, `Type::m()`): resolve to the
//!    unique method `m` on an `impl T` block anywhere in the workspace.
//! 2. **`self.field.m()`**: look the field up in `T`'s struct
//!    definition; its type head becomes the receiver type. `Arc<Mlp>`
//!    fields record `Arc`, so a second lookup falls through to the
//!    unique-name heuristic — a known blind spot.
//! 3. **Enum payload binding** (`E::V(x) => x.m()`): the variant's
//!    single payload type, from the enum definition.
//! 4. **Free call**: unique function with that name in the caller's
//!    crate, else unique across the workspace.
//! 5. **Unknown receiver**: unique method name across every impl block
//!    in the workspace.
//!
//! Anything still ambiguous (or matching nothing, like std methods) is
//! an unresolved edge. Determinism is load-bearing: all maps are
//! `BTreeMap`s and the DOT export is sorted, so byte-identical output
//! across shuffled input file order is a tested property.

use crate::model::{EffectKind, FileModel, FnDef, Receiver};
use std::collections::{BTreeMap, BTreeSet};

/// Stable identity of a function node: `(impl type or "", name)` plus
/// the crate for display. Equal names on different impls are distinct
/// nodes; same-name fns in different crates are distinct too.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Owning crate.
    pub crate_name: String,
    /// Impl type head, or empty for free functions.
    pub impl_type: String,
    /// Function name.
    pub name: String,
}

impl FnId {
    fn of(def: &FnDef) -> FnId {
        FnId {
            crate_name: def.crate_name.clone(),
            impl_type: def.impl_type.clone().unwrap_or_default(),
            name: def.name.clone(),
        }
    }

    /// `crate::Type::name` / `crate::name`.
    pub fn display(&self) -> String {
        if self.impl_type.is_empty() {
            format!("{}::{}", self.crate_name, self.name)
        } else {
            format!("{}::{}::{}", self.crate_name, self.impl_type, self.name)
        }
    }
}

/// A call site the resolver could not link to a workspace function.
#[derive(Debug, Clone)]
pub struct UnresolvedEdge {
    /// Calling function.
    pub from: FnId,
    /// Called name.
    pub callee: String,
    /// Why resolution failed.
    pub reason: String,
    /// Call-site file.
    pub path: String,
    /// Call-site line.
    pub line: u32,
}

/// A resolved call edge with its site.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Target function.
    pub to: FnId,
    /// Call-site line (in the caller's file).
    pub line: u32,
    /// Call-site column.
    pub col: u32,
    /// Result value discarded via `let _ =`.
    pub discarded: bool,
    /// Lock ids (see [`Graph::lock_id`]) held at the call site.
    pub holding: Vec<String>,
}

/// The linked workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every function, by id.
    pub fns: BTreeMap<FnId, FnDef>,
    /// Resolved call edges, caller → sites.
    pub edges: BTreeMap<FnId, Vec<Edge>>,
    /// Call sites that did not resolve.
    pub unresolved: Vec<UnresolvedEdge>,
}

/// Whether a struct-field type head is a lock type.
fn is_lock_type(head: &str) -> bool {
    head == "Mutex" || head == "RwLock"
}

impl Graph {
    /// Link the per-file models into one graph.
    pub fn build(files: &[FileModel]) -> Graph {
        let mut g = Graph::default();

        // Symbol tables for resolution — all BTreeMaps for determinism.
        // method name → ids of every impl method with that name
        let mut by_method: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        // (impl type, method name) → ids
        let mut by_type_method: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        // free fn name → ids
        let mut free_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        // struct name → its def (field → type head)
        let mut structs: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();
        // enum name → its def (variant → payload head)
        let mut enums: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();

        for fm in files {
            for s in &fm.structs {
                structs.entry(&s.name).or_insert(&s.fields);
            }
            for e in &fm.enums {
                enums.entry(&e.name).or_insert(&e.variants);
            }
            for def in &fm.fns {
                let id = FnId::of(def);
                if let Some(t) = &def.impl_type {
                    by_type_method
                        .entry((t, &def.name))
                        .or_default()
                        .push(id.clone());
                    by_method.entry(&def.name).or_default().push(id.clone());
                } else {
                    free_by_name.entry(&def.name).or_default().push(id.clone());
                }
                g.fns.insert(id, def.clone());
            }
        }

        // Resolve each call site.
        for fm in files {
            for def in &fm.fns {
                let from = FnId::of(def);
                let mut edges = Vec::new();
                for call in &def.calls {
                    // Map held-lock indices to stable lock ids first.
                    let holding: Vec<String> = call
                        .holding
                        .iter()
                        .filter_map(|&idx| {
                            def.locks
                                .get(idx)
                                .and_then(|l| Self::lock_id_of(&l.recv, &structs))
                        })
                        .collect();

                    match Self::resolve(
                        &call.recv,
                        &call.callee,
                        &fm.crate_name,
                        &by_method,
                        &by_type_method,
                        &free_by_name,
                        &structs,
                        &enums,
                    ) {
                        Ok(Some(to)) => edges.push(Edge {
                            to,
                            line: call.line,
                            col: call.col,
                            discarded: call.discarded,
                            holding,
                        }),
                        Ok(None) => {} // confidently external (std/vendor) — not an edge
                        Err(reason) => g.unresolved.push(UnresolvedEdge {
                            from: from.clone(),
                            callee: call.callee.clone(),
                            reason,
                            path: def.path.clone(),
                            line: call.line,
                        }),
                    }
                }
                if !edges.is_empty() {
                    g.edges.entry(from).or_default().extend(edges);
                }
            }
        }
        g.unresolved
            .sort_by(|a, b| (&a.path, a.line, &a.callee).cmp(&(&b.path, b.line, &b.callee)));
        g
    }

    /// The stable lock identity for an acquisition receiver:
    /// `Struct.field` when the receiver is a lock-typed field, `None`
    /// when it isn't a field lock we can name.
    fn lock_id_of(
        recv: &Receiver,
        structs: &BTreeMap<&str, &BTreeMap<String, String>>,
    ) -> Option<String> {
        match recv {
            Receiver::SelfField(ty, field) => {
                let head = structs.get(ty.as_str())?.get(field)?;
                is_lock_type(head).then(|| format!("{ty}.{field}"))
            }
            Receiver::Typed(head) if is_lock_type(head) => None, // fn-local lock: no stable id
            _ => None,
        }
    }

    /// Public wrapper used by the lock-order rule.
    pub fn lock_id(&self, recv: &Receiver, files: &[FileModel]) -> Option<String> {
        let mut structs: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();
        for fm in files {
            for s in &fm.structs {
                structs.entry(&s.name).or_insert(&s.fields);
            }
        }
        Self::lock_id_of(recv, &structs)
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve(
        recv: &Receiver,
        callee: &str,
        caller_crate: &str,
        by_method: &BTreeMap<&str, Vec<FnId>>,
        by_type_method: &BTreeMap<(&str, &str), Vec<FnId>>,
        free_by_name: &BTreeMap<&str, Vec<FnId>>,
        structs: &BTreeMap<&str, &BTreeMap<String, String>>,
        enums: &BTreeMap<&str, &BTreeMap<String, String>>,
    ) -> Result<Option<FnId>, String> {
        let unique = |cands: &[FnId], what: &str| -> Result<Option<FnId>, String> {
            match cands {
                [one] => Ok(Some(one.clone())),
                [] => Ok(None),
                many => Err(format!(
                    "{what} is ambiguous across {} candidates: {}",
                    many.len(),
                    many.iter()
                        .map(FnId::display)
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            }
        };
        match recv {
            Receiver::Typed(ty) => {
                if let Some(c) = by_type_method.get(&(ty.as_str(), callee)) {
                    return unique(c, &format!("{ty}::{callee}"));
                }
                // A typed receiver whose type has no such method in the
                // workspace: almost always std/vendor (`Vec::push`).
                Ok(None)
            }
            Receiver::SelfField(ty, field) => {
                let Some(fields) = structs.get(ty.as_str()) else {
                    return Err(format!("struct {ty} not found for field receiver .{field}"));
                };
                let Some(head) = fields.get(field) else {
                    return Err(format!("field {ty}.{field} not found"));
                };
                if let Some(c) = by_type_method.get(&(head.as_str(), callee)) {
                    return unique(c, &format!("{head}::{callee}"));
                }
                // Wrapper heads (`Arc`, `Option`, …) hide the inner
                // type; fall back to the unique-method heuristic.
                match by_method.get(callee) {
                    Some(c) => unique(c, &format!("method {callee} via {ty}.{field}: {head}")),
                    None => Ok(None),
                }
            }
            Receiver::EnumPayload(en, variant) => {
                let Some(variants) = enums.get(en.as_str()) else {
                    return Err(format!("enum {en} not found for match binding"));
                };
                let Some(head) = variants.get(variant) else {
                    return Err(format!("variant {en}::{variant} payload not modeled"));
                };
                if let Some(c) = by_type_method.get(&(head.as_str(), callee)) {
                    return unique(c, &format!("{head}::{callee}"));
                }
                Ok(None)
            }
            Receiver::Free => {
                let cands = free_by_name.get(callee).map(Vec::as_slice).unwrap_or(&[]);
                let same_crate: Vec<FnId> = cands
                    .iter()
                    .filter(|id| id.crate_name == caller_crate)
                    .cloned()
                    .collect();
                if same_crate.len() == 1 {
                    return Ok(Some(same_crate[0].clone()));
                }
                if same_crate.len() > 1 {
                    return unique(&same_crate, &format!("fn {callee} in {caller_crate}"));
                }
                unique(cands, &format!("fn {callee}"))
            }
            Receiver::Unknown => match by_method.get(callee) {
                Some(c) if c.len() == 1 => Ok(Some(c[0].clone())),
                Some(c) => Err(format!(
                    "untyped receiver and {} workspace methods named {callee}",
                    c.len()
                )),
                None => Ok(None),
            },
        }
    }

    /// BFS from `roots`, returning each reachable fn and its parent in
    /// the BFS tree (for explaining *why* a fn is on a hot path).
    /// Test-only functions do not extend the frontier: a fixture or
    /// unit test calling a root must not drag the test tree in.
    pub fn reachable(&self, roots: &[FnId]) -> BTreeMap<FnId, Option<FnId>> {
        let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for r in roots {
            if self.fns.contains_key(r) && !parent.contains_key(r) {
                parent.insert(r.clone(), None);
                queue.push_back(r.clone());
            }
        }
        while let Some(cur) = queue.pop_front() {
            if let Some(edges) = self.edges.get(&cur) {
                for e in edges {
                    if !parent.contains_key(&e.to) {
                        if self.fns.get(&e.to).is_some_and(|d| d.is_test) {
                            continue;
                        }
                        parent.insert(e.to.clone(), Some(cur.clone()));
                        queue.push_back(e.to.clone());
                    }
                }
            }
        }
        parent
    }

    /// The chain `root → … → id` through the BFS tree, as display names.
    pub fn chain(parents: &BTreeMap<FnId, Option<FnId>>, id: &FnId) -> String {
        let mut names = vec![id.display()];
        let mut cur = id.clone();
        while let Some(Some(p)) = parents.get(&cur) {
            names.push(p.display());
            cur = p.clone();
        }
        names.reverse();
        names.join(" → ")
    }

    /// For every function, the set of named locks it may acquire
    /// transitively (its own acquisitions plus its callees', to a fixed
    /// point). Used by the lock-order rule for cross-function cycles.
    pub fn transitive_locks(&self, files: &[FileModel]) -> BTreeMap<FnId, BTreeSet<String>> {
        let mut structs: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();
        for fm in files {
            for s in &fm.structs {
                structs.entry(&s.name).or_insert(&s.fields);
            }
        }
        let mut own: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
        for (id, def) in &self.fns {
            let mut set = BTreeSet::new();
            for l in &def.locks {
                if let Some(lid) = Self::lock_id_of(&l.recv, &structs) {
                    set.insert(lid);
                }
            }
            own.insert(id.clone(), set);
        }
        // Fixed point over the call edges.
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot = own.clone();
            for (from, edges) in &self.edges {
                let mut add = BTreeSet::new();
                for e in edges {
                    if let Some(s) = snapshot.get(&e.to) {
                        add.extend(s.iter().cloned());
                    }
                }
                let cur = own.entry(from.clone()).or_default();
                let before = cur.len();
                cur.extend(add);
                if cur.len() != before {
                    changed = true;
                }
            }
        }
        own
    }

    /// Deterministic DOT export: nodes and edges sorted, unresolved
    /// edges as a comment block. Byte-identical across input orderings
    /// of the same workspace (a tested property).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph drybell {\n");
        for id in self.fns.keys() {
            out.push_str(&format!("  \"{}\";\n", id.display()));
        }
        let mut lines: Vec<String> = Vec::new();
        for (from, edges) in &self.edges {
            let mut targets: BTreeSet<String> = BTreeSet::new();
            for e in edges {
                targets.insert(e.to.display());
            }
            for t in targets {
                lines.push(format!("  \"{}\" -> \"{t}\";\n", from.display()));
            }
        }
        lines.sort();
        for l in lines {
            out.push_str(&l);
        }
        out.push_str(&format!("  // unresolved: {}\n", self.unresolved.len()));
        let mut unres: Vec<String> = self
            .unresolved
            .iter()
            .map(|u| {
                format!(
                    "  // {} -> {}? ({})\n",
                    u.from.display(),
                    u.callee,
                    u.reason
                )
            })
            .collect();
        unres.sort();
        for l in unres {
            out.push_str(&l);
        }
        out.push_str("}\n");
        out
    }
}

/// Direct effect summary of one function (used in rule messages).
pub fn effect_summary(def: &FnDef) -> Vec<(EffectKind, u32, u32, String)> {
    def.effects
        .iter()
        .map(|e| (e.kind, e.line, e.col, e.what.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{file_ctx, model};

    fn graph_of(files: &[(&str, &str)]) -> (Graph, Vec<FileModel>) {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(p, s)| model::parse(&file_ctx(p, s)))
            .collect();
        (Graph::build(&models), models)
    }

    fn id(krate: &str, ty: &str, name: &str) -> FnId {
        FnId {
            crate_name: krate.into(),
            impl_type: ty.into(),
            name: name.into(),
        }
    }

    #[test]
    fn cross_file_free_calls_resolve_same_crate_first() {
        let (g, _) = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn entry() { helper(); }\nfn helper() {}",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let edges = g.edges.get(&id("a", "", "entry")).unwrap();
        assert_eq!(edges[0].to, id("a", "", "helper"));
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn typed_receiver_resolves_across_crates() {
        let (g, _) = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "impl Model { fn score(&self) -> f64 { 0.0 } }",
            ),
            ("crates/b/src/lib.rs", "fn serve(m: &Model) { m.score(); }"),
        ]);
        let edges = g.edges.get(&id("b", "", "serve")).unwrap();
        assert_eq!(edges[0].to, id("a", "Model", "score"));
    }

    #[test]
    fn ambiguous_methods_become_unresolved_edges() {
        let (g, _) = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "impl X { fn run(&self) {} }\nimpl Y { fn run(&self) {} }\nfn f(v: &V) { v.thing.run(); }",
            ),
        ]);
        assert!(!g.edges.contains_key(&id("a", "", "f")));
        assert_eq!(g.unresolved.len(), 1);
        assert!(g.unresolved[0].reason.contains("2 workspace methods"));
    }

    #[test]
    fn self_field_resolves_via_struct_def() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "struct R { model: Mlp }\n\
             impl Mlp { fn forward(&self) {} }\n\
             impl R { fn go(&self) { self.model.forward(); } }",
        )]);
        let edges = g.edges.get(&id("a", "R", "go")).unwrap();
        assert_eq!(edges[0].to, id("a", "Mlp", "forward"));
    }

    #[test]
    fn reachability_stops_at_test_fns() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n\
             #[cfg(test)] mod tests { fn t() { leaf_t(); } fn leaf_t() {} }",
        )]);
        let reach = g.reachable(&[id("a", "", "root")]);
        assert!(reach.contains_key(&id("a", "", "leaf")));
        assert!(!reach.contains_key(&id("a", "", "t")));
        assert_eq!(
            Graph::chain(&reach, &id("a", "", "leaf")),
            "a::root → a::mid → a::leaf"
        );
    }

    #[test]
    fn transitive_locks_reach_fixed_point() {
        let (g, files) = graph_of(&[(
            "crates/a/src/lib.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn inner(&self) { let g = self.b.lock(); }\n\
               fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
             }",
        )]);
        let locks = g.transitive_locks(&files);
        let outer = locks.get(&id("a", "S", "outer")).unwrap();
        assert!(outer.contains("S.a") && outer.contains("S.b"), "{outer:?}");
    }
}
