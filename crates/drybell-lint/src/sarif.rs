//! SARIF 2.1.0 emission.
//!
//! CI uploads this to GitHub code scanning, which renders each
//! diagnostic as an annotation on the PR diff. The emitter uses
//! [`drybell_obs::json::Json`] (the workspace's own serializer) rather
//! than serde — the lint crate stays dependency-light and builds
//! offline. Only the slice of SARIF that code scanning consumes is
//! emitted: tool driver + rule metadata, and one `result` per
//! diagnostic with a physical location.

use crate::Diagnostic;
use drybell_obs::json::Json;

/// SARIF schema/version pinned by the acceptance criteria; CI validates
/// the emitted log against the published 2.1.0 JSON schema.
const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Render diagnostics as a single-run SARIF 2.1.0 log.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let rules: Vec<Json> = crate::RULES
        .iter()
        .map(|(id, desc)| {
            Json::obj(vec![
                ("id", Json::Str((*id).to_owned())),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::Str((*desc).to_owned()))]),
                ),
                (
                    "defaultConfiguration",
                    Json::obj(vec![("level", Json::Str("error".to_owned()))]),
                ),
            ])
        })
        .collect();

    let results: Vec<Json> = diags
        .iter()
        .map(|d| {
            let rule_index = crate::RULES
                .iter()
                .position(|(id, _)| *id == d.rule)
                .unwrap_or(0);
            Json::obj(vec![
                ("ruleId", Json::Str(d.rule.to_owned())),
                ("ruleIndex", Json::Int(rule_index as i64)),
                ("level", Json::Str("error".to_owned())),
                (
                    "message",
                    Json::obj(vec![("text", Json::Str(d.message.clone()))]),
                ),
                (
                    "locations",
                    Json::Arr(vec![Json::obj(vec![(
                        "physicalLocation",
                        Json::obj(vec![
                            (
                                "artifactLocation",
                                Json::obj(vec![
                                    ("uri", Json::Str(d.path.clone())),
                                    ("uriBaseId", Json::Str("SRCROOT".to_owned())),
                                ]),
                            ),
                            (
                                "region",
                                Json::obj(vec![
                                    ("startLine", Json::Int(i64::from(d.line.max(1)))),
                                    ("startColumn", Json::Int(i64::from(d.col.max(1)))),
                                ]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();

    let run = Json::obj(vec![
        (
            "tool",
            Json::obj(vec![(
                "driver",
                Json::obj(vec![
                    ("name", Json::Str("drybell-lint".to_owned())),
                    (
                        "informationUri",
                        Json::Str("https://github.com/drybell/drybell".to_owned()),
                    ),
                    ("rules", Json::Arr(rules)),
                ]),
            )]),
        ),
        (
            "originalUriBaseIds",
            Json::obj(vec![(
                "SRCROOT",
                Json::obj(vec![(
                    "description",
                    Json::obj(vec![("text", Json::Str("workspace root".to_owned()))]),
                )]),
            )]),
        ),
        ("results", Json::Arr(results)),
        ("columnKind", Json::Str("utf16CodeUnits".to_owned())),
    ]);

    Json::obj(vec![
        ("$schema", Json::Str(SCHEMA.to_owned())),
        ("version", Json::Str("2.1.0".to_owned())),
        ("runs", Json::Arr(vec![run])),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drybell_obs::json;

    fn diag(rule: &'static str) -> Diagnostic {
        Diagnostic {
            path: "crates/drybell-core/src/lib.rs".into(),
            line: 7,
            col: 3,
            rule,
            message: "msg with \"quotes\"".into(),
        }
    }

    #[test]
    fn sarif_is_valid_json_with_expected_shape() {
        let s = to_sarif(&[diag("no-panic"), diag("hot-path")]);
        let v = json::parse(&s).expect("emitted SARIF must parse");
        assert_eq!(v.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = v.get("runs").unwrap().items();
        assert_eq!(runs.len(), 1);
        let results = runs[0].get("results").unwrap().items();
        assert_eq!(results.len(), 2);
        let loc = results[0].get("locations").unwrap().at(0).unwrap();
        let region = loc.get("physicalLocation").unwrap().get("region").unwrap();
        assert_eq!(region.get("startLine").and_then(Json::as_i64), Some(7));
        // Every emitted ruleId exists in the driver's rules array.
        let rules = runs[0]
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .items();
        for r in results {
            let id = r.get("ruleId").and_then(Json::as_str).unwrap();
            assert!(
                rules
                    .iter()
                    .any(|ru| ru.get("id").and_then(Json::as_str) == Some(id)),
                "ruleId {id} missing from driver rules"
            );
        }
    }

    #[test]
    fn empty_run_still_emits_a_results_array() {
        let s = to_sarif(&[]);
        let v = json::parse(&s).unwrap();
        assert_eq!(
            v.get("runs")
                .unwrap()
                .at(0)
                .unwrap()
                .get("results")
                .unwrap()
                .items()
                .len(),
            0
        );
    }
}
