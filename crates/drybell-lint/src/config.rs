//! `lint.toml` (hot-path roots) and the error-discipline baseline file.
//!
//! Both are hand-rolled parsers over a deliberately tiny grammar, the
//! same idiom as `drybell-doctor`'s config: the workspace builds
//! offline, so no TOML crate. `lint.toml` needs exactly one table with
//! one string array; anything it doesn't understand is reported rather
//! than skipped, so a typo in a root declaration cannot silently turn
//! the hot-path rule off.
//!
//! The baseline file (`lint-baseline.txt`) holds one line per file that
//! had error-discipline findings when the rule landed:
//!
//! ```text
//! error-discipline crates/drybell-dataflow/src/mapreduce.rs 3
//! ```
//!
//! Only counts *above* the baseline are reported; counts *below* it
//! make the baseline stale (a `stale-baseline` diagnostic), which is
//! how fixed findings get locked in — regenerate with
//! `--update-baseline` to ratchet down.

use std::collections::BTreeMap;
use std::path::Path;

/// One declared hot-path root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Root {
    /// `crate::Type::fn` or `crate::fn`.
    pub spec: String,
    /// 1-based line in `lint.toml` (diagnostics point here when the
    /// root doesn't exist in the workspace).
    pub line: u32,
}

/// Parsed `lint.toml`.
#[derive(Debug, Default)]
pub struct LintConfig {
    /// `[hot-path] roots = [...]` entries.
    pub roots: Vec<Root>,
    /// Baseline path (workspace-relative), from
    /// `[error-discipline] baseline = "…"`. Defaults to
    /// `lint-baseline.txt`.
    pub baseline_path: String,
    /// Lines the parser could not interpret (reported as diagnostics).
    pub errors: Vec<(u32, String)>,
}

/// Parse the `lint.toml` text.
pub fn parse_config(src: &str) -> LintConfig {
    let mut cfg = LintConfig {
        baseline_path: "lint-baseline.txt".to_owned(),
        ..LintConfig::default()
    };
    let mut section = String::new();
    let mut in_roots_array = false;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if in_roots_array {
            let body = line.trim_end_matches(',').trim();
            if body == "]" || line.ends_with(']') {
                // A closing bracket, possibly after a final element.
                let elem = line
                    .trim_end_matches(']')
                    .trim()
                    .trim_end_matches(',')
                    .trim();
                if let Some(s) = unquote(elem) {
                    cfg.roots.push(Root {
                        spec: s,
                        line: line_no,
                    });
                }
                in_roots_array = false;
                continue;
            }
            match unquote(body) {
                Some(s) => cfg.roots.push(Root {
                    spec: s,
                    line: line_no,
                }),
                None => cfg
                    .errors
                    .push((line_no, format!("expected a quoted root, got {body:?}"))),
            }
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            cfg.errors
                .push((line_no, format!("expected `key = value`, got {line:?}")));
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        match (section.as_str(), key) {
            ("hot-path", "roots") => {
                if value == "[" {
                    in_roots_array = true;
                } else if let Some(inner) =
                    value.strip_prefix('[').and_then(|v| v.strip_suffix(']'))
                {
                    for elem in inner.split(',') {
                        let elem = elem.trim();
                        if elem.is_empty() {
                            continue;
                        }
                        match unquote(elem) {
                            Some(s) => cfg.roots.push(Root {
                                spec: s,
                                line: line_no,
                            }),
                            None => cfg
                                .errors
                                .push((line_no, format!("expected a quoted root, got {elem:?}"))),
                        }
                    }
                } else {
                    cfg.errors.push((
                        line_no,
                        format!("roots must be a string array, got {value:?}"),
                    ));
                }
            }
            ("error-discipline", "baseline") => match unquote(value) {
                Some(p) => cfg.baseline_path = p,
                None => cfg.errors.push((
                    line_no,
                    format!("baseline must be a quoted path, got {value:?}"),
                )),
            },
            _ => cfg.errors.push((
                line_no,
                format!("unknown key `{key}` in section [{section}]"),
            )),
        }
    }
    cfg
}

fn unquote(s: &str) -> Option<String> {
    s.strip_prefix('"')?.strip_suffix('"').map(str::to_owned)
}

/// Load `lint.toml` from the workspace root, if present.
pub fn load_config(root: &Path) -> std::io::Result<Option<LintConfig>> {
    let p = root.join("lint.toml");
    if !p.is_file() {
        return Ok(None);
    }
    Ok(Some(parse_config(&std::fs::read_to_string(p)?)))
}

/// Per-(rule, path) accepted finding counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, workspace-relative path) → accepted count`.
    pub counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parse the baseline text; lines are `rule path count`.
    pub fn parse(src: &str) -> Baseline {
        let mut counts = BTreeMap::new();
        for line in src.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), Some(n)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if let Ok(n) = n.parse::<usize>() {
                counts.insert((rule.to_owned(), path.to_owned()), n);
            }
        }
        Baseline { counts }
    }

    /// Load from `root/<rel>`, or an empty baseline when absent.
    pub fn load(root: &Path, rel: &str) -> std::io::Result<Baseline> {
        let p = root.join(rel);
        if !p.is_file() {
            return Ok(Baseline::default());
        }
        Ok(Baseline::parse(&std::fs::read_to_string(p)?))
    }

    /// Serialize, sorted, with a header explaining regeneration.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# drybell-lint accepted-findings baseline.\n\
             # One line per file: `<rule> <path> <count>`. Findings up to the count\n\
             # are accepted; new ones fail the lint. Regenerate (only to ratchet\n\
             # DOWN, after fixing findings) with:\n\
             #   cargo run -p drybell-lint -- check --update-baseline\n",
        );
        for ((rule, path), n) in &self.counts {
            out.push_str(&format!("{rule} {path} {n}\n"));
        }
        out
    }

    /// Build a baseline from observed per-(rule, path) counts.
    pub fn from_counts(observed: &BTreeMap<(String, String), usize>) -> Baseline {
        Baseline {
            counts: observed
                .iter()
                .filter(|(_, n)| **n > 0)
                .map(|(k, n)| (k.clone(), *n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_roots_and_baseline() {
        let cfg = parse_config(
            "# roots\n\
             [hot-path]\n\
             roots = [\n\
               \"drybell-core::GenerativeModel::joint_scores\", # gradient kernel\n\
               \"drybell-lf::Lf::try_vote\",\n\
             ]\n\
             [error-discipline]\n\
             baseline = \"lint-baseline.txt\"\n",
        );
        assert!(cfg.errors.is_empty(), "{:?}", cfg.errors);
        assert_eq!(cfg.roots.len(), 2);
        assert_eq!(
            cfg.roots[0].spec,
            "drybell-core::GenerativeModel::joint_scores"
        );
        assert_eq!(cfg.roots[0].line, 4);
        assert_eq!(cfg.baseline_path, "lint-baseline.txt");
    }

    #[test]
    fn inline_array_and_errors() {
        let cfg = parse_config("[hot-path]\nroots = [\"a::b\", \"c::d\"]\nbogus = 1\n");
        assert_eq!(cfg.roots.len(), 2);
        assert_eq!(cfg.errors.len(), 1);
        assert!(cfg.errors[0].1.contains("unknown key"));
    }

    #[test]
    fn baseline_round_trips() {
        let b = Baseline::parse("# header\nerror-discipline src/lib.rs 3\n");
        assert_eq!(
            b.counts
                .get(&("error-discipline".to_owned(), "src/lib.rs".to_owned())),
            Some(&3)
        );
        let b2 = Baseline::parse(&b.render());
        assert_eq!(b, b2);
    }
}
