//! # drybell-lint
//!
//! The workspace static-analysis pass: repo-specific invariants the
//! compiler cannot check, enforced as named, individually-suppressable
//! rules. DryBell's pipelines only reproduce (and only serve safely)
//! when LF execution is deterministic, library paths don't panic under
//! production inputs, and telemetry names stay consistent with the
//! [`drybell_obs::naming`] registry — this crate is where those
//! invariants live as code instead of review comments.
//!
//! Run it with `cargo run -p drybell-lint -- check`. Diagnostics print
//! as `file:line:col rule-id message` and any diagnostic makes the exit
//! code non-zero (`-D` semantics); CI and the in-tree
//! `tests/workspace_clean.rs` both gate on it.
//!
//! ## Rules
//!
//! | id | invariant |
//! |----|-----------|
//! | `no-panic` | no `unwrap`/`expect`/`panic!`-family in library-path production code |
//! | `no-panic-index` | no `x[i]` indexing in library-path production code (use `get`) |
//! | `determinism` | no unseeded RNG, wall-clock reads, or `HashMap`/`HashSet` iteration order leaking out |
//! | `telemetry-conventions` | metric/span/journal names at call sites must be in the naming registry |
//! | `lf-purity` | LF closures must not capture interior mutability or perform I/O |
//! | `bad-suppression` | suppression comments must name one rule and justify themselves |
//!
//! ## Suppressing
//!
//! One finding: put on the same line or the line above —
//!
//! ```text
//! // drybell-lint: allow(no-panic) — index bounds checked by split_at above
//! ```
//!
//! A whole file (dense numeric kernels, for example):
//!
//! ```text
//! // drybell-lint: allow-file(no-panic-index) — hot-loop math; bounds are loop invariants
//! ```
//!
//! The justification after the `—` (or `-`/`:`) is mandatory; a
//! suppression without one is itself a `bad-suppression` diagnostic, so
//! the workspace can be lint-clean only with *justified* suppressions
//! (the acceptance bar: zero blanket suppressions).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod sarif;

use lexer::{lex, Lexed, LineComment, Token, TokenKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// All rule ids, in diagnostic-priority order.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-panic",
        "no unwrap/expect/panic! in library-path production code",
    ),
    (
        "no-panic-index",
        "no [] indexing in library-path production code (use get)",
    ),
    (
        "determinism",
        "no unseeded RNG, wall-clock reads, or unordered map iteration",
    ),
    (
        "telemetry-conventions",
        "telemetry names must match drybell-obs's naming registry",
    ),
    (
        "lf-purity",
        "LF closures must not capture interior mutability or do I/O",
    ),
    (
        "bad-suppression",
        "suppression comments must name a rule and give a reason",
    ),
    (
        "hot-path",
        "fns reachable from lint.toml roots must not allocate, lock, panic, or sync-instrument",
    ),
    (
        "lock-order",
        "lock-acquisition order must be acyclic across the workspace",
    ),
    (
        "error-discipline",
        "Results must not be silently discarded in non-test library code",
    ),
    (
        "stale-baseline",
        "the error-discipline baseline overstates current findings; regenerate it",
    ),
    (
        "lint-config",
        "lint.toml must parse: hot-path roots and the baseline path",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path as given to [`lint_source`] (workspace-relative in the CLI).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A parsed suppression comment.
#[derive(Debug, Clone)]
struct Suppression {
    line: u32,
    rule: String,
    file_scoped: bool,
}

/// Everything a rule needs to look at one file.
pub struct FileCtx {
    /// Path as given (used verbatim in diagnostics).
    pub path: String,
    /// The crate the file belongs to (`drybell-core`, …), from its path.
    pub crate_name: String,
    /// Lexed tokens in source order.
    pub tokens: Vec<Token>,
    /// `in_test[i]` — token `i` is inside `#[cfg(test)]` / `#[test]`
    /// code (or the whole file is tests/benches).
    pub in_test: Vec<bool>,
    suppressions: Vec<Suppression>,
    bad_suppressions: Vec<Diagnostic>,
}

impl FileCtx {
    /// The identifier text of token `i`, or `""`.
    pub fn ident(&self, i: usize) -> &str {
        self.tokens
            .get(i)
            .and_then(|t| t.kind.ident())
            .unwrap_or("")
    }

    /// Whether token `i` is punctuation `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        self.tokens.get(i).is_some_and(|t| t.kind.is_punct(c))
    }

    /// Emit a diagnostic at token `i` unless a suppression covers it.
    pub fn report(&self, out: &mut Vec<Diagnostic>, i: usize, rule: &'static str, message: String) {
        let tok = &self.tokens[i];
        if self.suppressed(rule, tok.line) {
            return;
        }
        out.push(Diagnostic {
            path: self.path.clone(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        });
    }

    /// Emit a diagnostic at an explicit line/col unless a suppression
    /// covers it — the graph rules anchor to model positions, not token
    /// indices.
    pub(crate) fn report_at(
        &self,
        out: &mut Vec<Diagnostic>,
        line: u32,
        col: u32,
        rule: &'static str,
        message: String,
    ) {
        if self.suppressed(rule, line) {
            return;
        }
        out.push(Diagnostic {
            path: self.path.clone(),
            line,
            col,
            rule,
            message,
        });
    }

    fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && (s.file_scoped || s.line == line || s.line + 1 == line))
    }
}

/// Keywords that can precede `[` without it being an indexing
/// expression (`let [a, b] = …`, `for [x, y] in …`, `return [,]`…).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// Parse `// drybell-lint: allow(rule) — reason` comments. Malformed
/// ones become `bad-suppression` diagnostics (never suppressable).
fn parse_suppressions(path: &str, comments: &[LineComment]) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("drybell-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let mut complain = |message: String| {
            bad.push(Diagnostic {
                path: path.to_owned(),
                line: c.line,
                col: 1,
                rule: "bad-suppression",
                message,
            });
        };
        let (file_scoped, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
            (true, b)
        } else if let Some(b) = rest.strip_prefix("allow(") {
            (false, b)
        } else {
            complain(format!(
                "unrecognized directive {rest:?}; use allow(<rule>) or allow-file(<rule>)"
            ));
            continue;
        };
        let Some((rule, after)) = body.split_once(')') else {
            complain("missing closing parenthesis in suppression".to_owned());
            continue;
        };
        let rule = rule.trim();
        if !known_rule(rule) {
            complain(format!(
                "unknown rule {rule:?}; known rules: {}",
                RULES
                    .iter()
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            continue;
        }
        // The justification is mandatory: strip separator punctuation
        // and require real words after it.
        let reason = after
            .trim_start_matches([' ', '\u{2014}', '\u{2013}', '-', ':'])
            .trim();
        if reason.len() < 8 {
            complain(format!(
                "suppression of `{rule}` needs a one-line justification after a dash"
            ));
            continue;
        }
        sups.push(Suppression {
            line: c.line,
            rule: rule.to_owned(),
            file_scoped,
        });
    }
    (sups, bad)
}

/// Mark tokens inside `#[cfg(test)]` / `#[test]` items. After an
/// attribute whose bracket contents mention `test`, the next top-level
/// `{ … }` block is test code.
fn mark_test_regions(tokens: &[Token], whole_file: bool) -> Vec<bool> {
    let mut in_test = vec![whole_file; tokens.len()];
    if whole_file {
        return in_test;
    }
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('[')) {
            // Scan the attribute for the `test` ident.
            let mut j = i + 2;
            let mut depth = 1;
            let mut is_test_attr = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Ident(s) if s == "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr {
                // Find the item's opening brace, then its close.
                let mut k = j;
                while k < tokens.len() && !tokens[k].kind.is_punct('{') {
                    // A `;` first means a braceless item — nothing to mark.
                    if tokens[k].kind.is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if k < tokens.len() && tokens[k].kind.is_punct('{') {
                    let mut braces = 0i32;
                    let mut end = k;
                    while end < tokens.len() {
                        match &tokens[end].kind {
                            TokenKind::Punct('{') => braces += 1,
                            TokenKind::Punct('}') => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    let end = end.min(tokens.len() - 1);
                    for flag in &mut in_test[i..=end] {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Derive the owning crate from a workspace-relative path.
fn crate_of(rel_path: &str) -> String {
    let p = rel_path.replace('\\', "/");
    if let Some(rest) = p.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("").to_owned()
    } else if p.starts_with("vendor/") {
        "vendor".to_owned()
    } else {
        // Umbrella crate sources (src/, tests/, benches/).
        "drybell".to_owned()
    }
}

/// Lex + annotate one file into the context every rule consumes.
pub(crate) fn file_ctx(rel_path: &str, src: &str) -> FileCtx {
    let Lexed { tokens, comments } = lex(src);
    let whole_file_test = {
        let p = rel_path.replace('\\', "/");
        // Files named tests_*.rs / *_tests.rs are `#[cfg(test)] mod`
        // declarations in their parent — the attribute is invisible
        // from inside the file, so the convention carries the scope.
        let file = p.rsplit('/').next().unwrap_or("");
        p.contains("/tests/")
            || p.starts_with("tests/")
            || p.contains("/benches/")
            || file.starts_with("tests_")
            || file.ends_with("_tests.rs")
    };
    let in_test = mark_test_regions(&tokens, whole_file_test);
    let (suppressions, bad_suppressions) = parse_suppressions(rel_path, &comments);
    FileCtx {
        path: rel_path.to_owned(),
        crate_name: crate_of(rel_path),
        tokens,
        in_test,
        suppressions,
        bad_suppressions,
    }
}

/// Lint one file's source text. `rel_path` is used for diagnostics and
/// for crate/test-scope decisions.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = file_ctx(rel_path, src);
    let mut out = Vec::new();
    rules::no_panic::check(&ctx, &mut out);
    rules::determinism::check(&ctx, &mut out);
    rules::telemetry::check(&ctx, &mut out);
    rules::lf_purity::check(&ctx, &mut out);
    out.extend(ctx.bad_suppressions.iter().cloned());
    out.sort();
    out
}

/// Recursively collect the workspace `.rs` files the lint covers:
/// `src/`, `crates/*/src/` — production code only. `vendor/` (offline
/// stand-ins, upstream API shapes), `target/`, test trees, and this
/// crate's own lint fixtures are excluded.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = BTreeSet::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut files)?;
        }
    }
    Ok(files.into_iter().collect())
}

fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path);
        }
    }
    Ok(())
}

/// The result of a whole-workspace analysis: per-file diagnostics plus
/// the graph rules, with the baseline applied.
pub struct Analysis {
    /// All diagnostics (per-file + graph rules), sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// The linked call graph (for `--dot` and tests).
    pub graph: callgraph::Graph,
    /// Observed pre-baseline error-discipline counts per (rule, path)
    /// — the input to `--update-baseline`.
    pub observed_counts: std::collections::BTreeMap<(String, String), usize>,
}

/// Analyze a set of in-memory sources as one workspace: run the
/// per-file rules on each file, then link the call graph and run the
/// interprocedural rules (`hot-path`, `lock-order`, `error-discipline`)
/// with `cfg` roots and `baseline` applied. Sources are
/// `(workspace-relative path, text)`; order does not affect the output
/// (a tested property of the graph).
pub fn analyze_sources(
    sources: &[(String, String)],
    cfg: &config::LintConfig,
    baseline: &config::Baseline,
) -> Analysis {
    let ctxs: Vec<FileCtx> = sources.iter().map(|(p, s)| file_ctx(p, s)).collect();
    let mut out = Vec::new();
    for ctx in &ctxs {
        rules::no_panic::check(ctx, &mut out);
        rules::determinism::check(ctx, &mut out);
        rules::telemetry::check(ctx, &mut out);
        rules::lf_purity::check(ctx, &mut out);
        out.extend(ctx.bad_suppressions.iter().cloned());
    }
    let models: Vec<model::FileModel> = ctxs.iter().map(model::parse).collect();
    let graph = callgraph::Graph::build(&models);
    let by_path: std::collections::BTreeMap<String, &FileCtx> =
        ctxs.iter().map(|c| (c.path.clone(), c)).collect();
    for (line, msg) in &cfg.errors {
        out.push(Diagnostic {
            path: "lint.toml".to_owned(),
            line: *line,
            col: 1,
            rule: "lint-config",
            message: msg.clone(),
        });
    }
    rules::hot_path::check(&graph, &models, cfg, &by_path, &mut out);
    rules::lock_order::check(&graph, &models, &by_path, &mut out);
    let observed_counts =
        rules::error_discipline::check(&graph, &models, baseline, &by_path, &mut out);
    out.sort();
    Analysis {
        diagnostics: out,
        graph,
        observed_counts,
    }
}

/// Read every covered file under `root` as `(relative path, text)`.
pub fn read_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    for file in workspace_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(sources)
}

/// Analyze the workspace under `root`: covered files plus `lint.toml`
/// and the baseline it names (both optional — absent files mean no
/// hot-path roots and an empty baseline).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let sources = read_workspace_sources(root)?;
    let cfg = config::load_config(root)?.unwrap_or_default();
    let baseline = config::Baseline::load(root, &cfg.baseline_path)?;
    Ok(analyze_sources(&sources, &cfg, &baseline))
}

/// Lint every covered file under `root`, returning all diagnostics with
/// workspace-relative paths. Runs the full analysis — per-file rules
/// and the graph rules — which is what CI and the tier-1
/// `workspace_lints_clean` test gate on.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(analyze_workspace(root)?.diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_marked() {
        let src = r#"
            fn prod() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
        "#;
        let diags = lint_source("crates/drybell-core/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "no-panic");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn test_attribute_fn_is_exempt() {
        let src = r#"
            #[test]
            fn t() { y.unwrap(); }
            fn prod() { x.unwrap(); }
        "#;
        let diags = lint_source("crates/drybell-lf/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn suppression_with_reason_is_honored() {
        let src = "
            // drybell-lint: allow(no-panic) — invariant: map key inserted above
            fn prod() { x.unwrap(); }
        ";
        let diags = lint_source("crates/drybell-core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn suppression_without_reason_is_a_diagnostic() {
        let src = "
            // drybell-lint: allow(no-panic)
            fn prod() { x.unwrap(); }
        ";
        let diags = lint_source("crates/drybell-core/src/x.rs", src);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"bad-suppression"), "{diags:?}");
        assert!(rules.contains(&"no-panic"), "{diags:?}");
    }

    #[test]
    fn unknown_rule_suppression_is_a_diagnostic() {
        let src = "// drybell-lint: allow(no-such-rule) — because\n";
        let diags = lint_source("crates/drybell-core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "bad-suppression");
    }

    #[test]
    fn file_scoped_suppression_covers_every_line() {
        let src = "
            // drybell-lint: allow-file(no-panic) — fixture exercising file scope
            fn a() { x.unwrap(); }
            fn b() { y.expect(\"msg\"); }
        ";
        let diags = lint_source("crates/drybell-core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bench_and_test_trees_are_out_of_panic_scope() {
        let src = "fn a() { x.unwrap(); }";
        assert!(lint_source("tests/x.rs", src).is_empty());
        assert!(lint_source("crates/drybell-bench/src/x.rs", src).is_empty());
        assert!(lint_source("vendor/rand/src/lib.rs", src).is_empty());
    }
}
