//! CLI for the workspace lint: `cargo run -p drybell-lint -- check`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: drybell-lint check [--root <dir>]");
    eprintln!("       drybell-lint rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for (id, what) in drybell_lint::RULES {
                println!("{id:24} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut root: Option<PathBuf> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            // Default to the workspace root: this binary lives at
            // crates/drybell-lint, two levels below it.
            let root = root.unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .canonicalize()
                    .unwrap_or_else(|_| PathBuf::from("."))
            });
            let diags = match drybell_lint::lint_workspace(&root) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("drybell-lint: {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                eprintln!("drybell-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("drybell-lint: {} diagnostic(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
