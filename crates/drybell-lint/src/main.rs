//! CLI for the workspace lint: `cargo run -p drybell-lint -- check`.
//!
//! `check` (alias `--workspace`) runs the per-file rules plus the
//! interprocedural graph rules over the whole workspace. `--sarif`
//! writes a SARIF 2.1.0 log for CI annotation upload; `--dot` writes
//! the resolved call graph; `--update-baseline` regenerates the
//! accepted error-discipline findings file named by `lint.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: drybell-lint check [--root <dir>] [--sarif <path>] [--dot <path>]");
    eprintln!("                          [--update-baseline]");
    eprintln!("       drybell-lint --workspace   (alias for check)");
    eprintln!("       drybell-lint rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for (id, what) in drybell_lint::RULES {
                println!("{id:24} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("check") | Some("--workspace") => {
            let mut root: Option<PathBuf> = None;
            let mut sarif_path: Option<PathBuf> = None;
            let mut dot_path: Option<PathBuf> = None;
            let mut update_baseline = false;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => root = Some(PathBuf::from(dir)),
                        None => return usage(),
                    },
                    "--sarif" => match rest.next() {
                        Some(p) => sarif_path = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    "--dot" => match rest.next() {
                        Some(p) => dot_path = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    "--update-baseline" => update_baseline = true,
                    _ => return usage(),
                }
            }
            // Default to the workspace root: this binary lives at
            // crates/drybell-lint, two levels below it.
            let root = root.unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .canonicalize()
                    .unwrap_or_else(|_| PathBuf::from("."))
            });
            let analysis = match drybell_lint::analyze_workspace(&root) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("drybell-lint: {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if update_baseline {
                let cfg = match drybell_lint::config::load_config(&root) {
                    Ok(c) => c.unwrap_or_default(),
                    Err(e) => {
                        eprintln!("drybell-lint: lint.toml: {e}");
                        return ExitCode::from(2);
                    }
                };
                let baseline =
                    drybell_lint::config::Baseline::from_counts(&analysis.observed_counts);
                let path = root.join(&cfg.baseline_path);
                if let Err(e) = std::fs::write(&path, baseline.render()) {
                    eprintln!("drybell-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!(
                    "drybell-lint: wrote {} ({} file(s) baselined)",
                    path.display(),
                    baseline.counts.len()
                );
                // Re-run against the fresh baseline so the exit status
                // reflects the state a CI run would now see.
                let analysis = match drybell_lint::analyze_workspace(&root) {
                    Ok(a) => a,
                    Err(e) => {
                        eprintln!("drybell-lint: {}: {e}", root.display());
                        return ExitCode::from(2);
                    }
                };
                return finish(&analysis, sarif_path.as_deref(), dot_path.as_deref());
            }
            finish(&analysis, sarif_path.as_deref(), dot_path.as_deref())
        }
        _ => usage(),
    }
}

fn finish(
    analysis: &drybell_lint::Analysis,
    sarif_path: Option<&std::path::Path>,
    dot_path: Option<&std::path::Path>,
) -> ExitCode {
    if let Some(p) = sarif_path {
        if let Err(e) = std::fs::write(p, drybell_lint::sarif::to_sarif(&analysis.diagnostics)) {
            eprintln!("drybell-lint: {}: {e}", p.display());
            return ExitCode::from(2);
        }
        eprintln!("drybell-lint: wrote SARIF to {}", p.display());
    }
    if let Some(p) = dot_path {
        if let Err(e) = std::fs::write(p, analysis.graph.to_dot()) {
            eprintln!("drybell-lint: {}: {e}", p.display());
            return ExitCode::from(2);
        }
        eprintln!("drybell-lint: wrote call graph to {}", p.display());
    }
    for d in &analysis.diagnostics {
        println!("{d}");
    }
    if !analysis.graph.unresolved.is_empty() {
        eprintln!(
            "drybell-lint: {} unresolved call edge(s) (run with --dot to inspect)",
            analysis.graph.unresolved.len()
        );
    }
    if analysis.diagnostics.is_empty() {
        eprintln!("drybell-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("drybell-lint: {} diagnostic(s)", analysis.diagnostics.len());
        ExitCode::FAILURE
    }
}
