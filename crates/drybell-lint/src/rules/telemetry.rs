//! `telemetry-conventions`: names at instrumentation call sites must
//! come from the [`drybell_obs::naming`] registry.
//!
//! Dashboards, the run journal's consumers, and the report diffing in
//! CI all key on telemetry names. The registry is the single source of
//! truth; this rule closes the loop by checking every literal name at a
//! `counter(…)` / `gauge(…)` / `histogram(…)` / `span(…)` /
//! `Event::new(…)` / `Counters::{inc,add}(…)` call site against it.
//! Names built entirely at runtime (no literal prefix) are out of
//! static reach and skipped; `format!("votes/{}", …)`-style calls are
//! checked with their `{}` placeholders matched against the registry's
//! `{placeholder}` segments.

use crate::lexer::TokenKind;
use crate::{Diagnostic, FileCtx};
use drybell_obs::naming::{self, Family};

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "vendor" {
        return;
    }
    // The registry validates itself; a malformed table must fail the
    // lint run loudly rather than silently accept everything.
    debug_assert!(naming::validate().is_empty());
    for i in 0..ctx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let id = ctx.ident(i);
        let family = match id {
            // Method calls on a metrics registry / snapshot / span set.
            "counter" if ctx.punct(i.wrapping_sub(1), '.') => Family::Counter,
            "gauge" if ctx.punct(i.wrapping_sub(1), '.') => Family::Gauge,
            "histogram" if ctx.punct(i.wrapping_sub(1), '.') => Family::Histogram,
            "span" if ctx.punct(i.wrapping_sub(1), '.') => Family::Span,
            // The dataflow `Counters` API takes the name as an argument.
            "inc" | "add" if ctx.punct(i.wrapping_sub(1), '.') => Family::Counter,
            // Journal events: `Event::new("kind")` — `::` lexes as two
            // `:` tokens.
            "new"
                if ctx.punct(i.wrapping_sub(1), ':')
                    && ctx.punct(i.wrapping_sub(2), ':')
                    && ctx.ident(i.wrapping_sub(3)) == "Event" =>
            {
                Family::JournalKind
            }
            _ => continue,
        };
        if !ctx.punct(i + 1, '(') {
            continue;
        }
        let Some((name, name_tok)) = first_string_arg(ctx, i + 2) else {
            continue;
        };
        if naming::is_fully_dynamic(&name) {
            continue;
        }
        if !naming::is_registered(family, &name) {
            let known: Vec<_> = naming::templates(family).collect();
            ctx.report(
                out,
                name_tok,
                "telemetry-conventions",
                format!(
                    "{} name {:?} is not in drybell-obs's naming registry (known: {})",
                    family.as_str(),
                    name,
                    known.join(", ")
                ),
            );
        }
    }
}

/// The first argument starting at token `start` (just after the call's
/// `(`), if it is a string literal or a `format!("literal", …)` —
/// returning the literal and its token index. Leading `&` borrows are
/// skipped; anything else (a variable, a method call) is unjudgeable
/// statically and yields `None`.
fn first_string_arg(ctx: &FileCtx, start: usize) -> Option<(String, usize)> {
    let mut i = start;
    while ctx.punct(i, '&') {
        i += 1;
    }
    if let Some(TokenKind::Str(s)) = ctx.tokens.get(i).map(|t| &t.kind) {
        return Some((s.clone(), i));
    }
    if ctx.ident(i) == "format" && ctx.punct(i + 1, '!') && ctx.punct(i + 2, '(') {
        if let Some(TokenKind::Str(s)) = ctx.tokens.get(i + 3).map(|t| &t.kind) {
            return Some((s.clone(), i + 3));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules(src: &str) -> Vec<(&'static str, u32)> {
        lint_source("crates/drybell-lf/src/x.rs", src)
            .into_iter()
            .filter(|d| d.rule == "telemetry-conventions")
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn registered_names_pass() {
        let src = r#"
fn f(m: &MetricsRegistry, t: &Telemetry) {
    m.counter("nlp_calls").inc();
    m.gauge("nlp_cache/size").set(1);
    m.histogram("obs/nlp/annotate_us").record(2);
    t.span("lf_exec/in_memory");
    t.emit(Event::new("lf_execution"));
}
"#;
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn unregistered_names_fire_per_family() {
        let src = r#"
fn f(m: &MetricsRegistry, t: &Telemetry) {
    m.counter("votes");
    m.gauge("cache_size");
    m.histogram("train_step_ms");
    t.span("mystery/phase");
    t.emit(Event::new("vibes"));
}
"#;
        let got = rules(src);
        assert_eq!(
            got.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            [3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn format_literals_match_placeholders() {
        let src = r#"
fn f(m: &MetricsRegistry) {
    m.counter(&format!("votes/{}", name));
    m.histogram(&format!("obs/lf/{}/eval_us", name));
    m.counter(&format!("tallies/{}", name));
}
"#;
        assert_eq!(rules(src), [("telemetry-conventions", 5)]);
    }

    #[test]
    fn dynamic_names_are_out_of_scope() {
        let src = r#"
fn f(m: &MetricsRegistry, name: &str) {
    m.counter(name);
    m.counter(&format!("{}/{}", a, b));
}
"#;
        assert!(rules(src).is_empty());
    }

    #[test]
    fn counters_api_inc_add_are_checked() {
        let src = r#"
fn f(c: &Counters) {
    c.inc("nlp_calls");
    c.add("nlp_cache/hits", 3);
    c.inc("nlp_cals");
}
"#;
        assert_eq!(rules(src), [("telemetry-conventions", 5)]);
    }

    #[test]
    fn numeric_add_on_counters_is_ignored() {
        let src = "fn f(c: &Counter) { c.add(3); c.inc(); }";
        assert!(rules(src).is_empty());
    }
}
