//! `telemetry-conventions`: names at instrumentation call sites must
//! come from the [`drybell_obs::naming`] registry.
//!
//! Dashboards, the run journal's consumers, and the report diffing in
//! CI all key on telemetry names. The registry is the single source of
//! truth; this rule closes the loop by checking every literal name at a
//! `counter(…)` / `gauge(…)` / `histogram(…)` / `span(…)` /
//! `Event::new(…)` / `Counters::{inc,add}(…)` call site against it.
//! Names built entirely at runtime (no literal prefix) are out of
//! static reach and skipped; `format!("votes/{}", …)`-style calls are
//! checked with their `{}` placeholders matched against the registry's
//! `{placeholder}` segments.
//!
//! The rule also guards the hot path's *cost*: in the per-row crates
//! ([`HOT_CRATES`]) a synchronized instrument call inside a loop body —
//! `.inc()`, `.add(<non-name>)`, `.record(<non-name>)`,
//! `.record_duration(…)` — pays an atomic (or a histogram lock) per
//! row. Those sites must buffer into a `drybell_obs::LocalShard`
//! (whose `tally`/`bump`/`level`/`observe` methods are deliberately
//! not in the flagged set) and flush at a batch boundary, or carry a
//! justified suppression explaining why per-row synchronization is
//! acceptable there.

use crate::lexer::TokenKind;
use crate::{Diagnostic, FileCtx};
use drybell_obs::naming::{self, Family};

/// Crates whose loops run per example / per row: a synchronized
/// telemetry call inside one multiplies with the dataset size.
const HOT_CRATES: &[&str] = &[
    "drybell-core",
    "drybell-lf",
    "drybell-dataflow",
    "drybell-nlp",
    "drybell-serving",
];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "vendor" {
        return;
    }
    if HOT_CRATES.contains(&ctx.crate_name.as_str()) {
        check_hot_loops(ctx, out);
    }
    // The registry validates itself; a malformed table must fail the
    // lint run loudly rather than silently accept everything.
    debug_assert!(naming::validate().is_empty());
    for i in 0..ctx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let id = ctx.ident(i);
        let family = match id {
            // Method calls on a metrics registry / snapshot / span set.
            "counter" if ctx.punct(i.wrapping_sub(1), '.') => Family::Counter,
            "gauge" if ctx.punct(i.wrapping_sub(1), '.') => Family::Gauge,
            "histogram" if ctx.punct(i.wrapping_sub(1), '.') => Family::Histogram,
            "span" if ctx.punct(i.wrapping_sub(1), '.') => Family::Span,
            // The dataflow `Counters` API takes the name as an argument.
            "inc" | "add" if ctx.punct(i.wrapping_sub(1), '.') => Family::Counter,
            // Journal events: `Event::new("kind")` — `::` lexes as two
            // `:` tokens.
            "new"
                if ctx.punct(i.wrapping_sub(1), ':')
                    && ctx.punct(i.wrapping_sub(2), ':')
                    && ctx.ident(i.wrapping_sub(3)) == "Event" =>
            {
                Family::JournalKind
            }
            _ => continue,
        };
        if !ctx.punct(i + 1, '(') {
            continue;
        }
        let Some((name, name_tok)) = first_string_arg(ctx, i + 2) else {
            continue;
        };
        if naming::is_fully_dynamic(&name) {
            continue;
        }
        if !naming::is_registered(family, &name) {
            let known: Vec<_> = naming::templates(family).collect();
            ctx.report(
                out,
                name_tok,
                "telemetry-conventions",
                format!(
                    "{} name {:?} is not in drybell-obs's naming registry (known: {})",
                    family.as_str(),
                    name,
                    known.join(", ")
                ),
            );
        }
    }
}

/// Flag synchronized per-row instrument calls inside loop bodies.
fn check_hot_loops(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let in_loop = loop_body_mask(ctx);
    for (i, &in_loop) in in_loop.iter().enumerate() {
        if !in_loop || ctx.in_test[i] || !ctx.punct(i.wrapping_sub(1), '.') {
            continue;
        }
        let id = ctx.ident(i);
        let flagged = match id {
            // A bare `.inc()` is the atomic counter bump; the
            // name-addressed dataflow API `.inc("name")` has an
            // argument and aggregates per job, so it is exempt.
            "inc" => ctx.punct(i + 1, '(') && ctx.punct(i + 2, ')'),
            // `.add(n)` / `.record(v)` with a non-string argument are
            // the synchronized instrument calls; a leading string means
            // the name-addressed `Counters` API (per-job, exempt).
            "add" | "record" => {
                ctx.punct(i + 1, '(')
                    && !ctx.punct(i + 2, ')')
                    && first_string_arg(ctx, i + 2).is_none()
            }
            // Timer convenience: always a histogram lock per call.
            "record_duration" => ctx.punct(i + 1, '('),
            _ => continue,
        };
        if flagged {
            ctx.report(
                out,
                i,
                "telemetry-conventions",
                format!(
                    "synchronized `.{id}(…)` inside a loop in hot-path crate {}: \
                     buffer into a drybell_obs::LocalShard and flush at a batch \
                     boundary instead of paying an atomic/lock per row",
                    ctx.crate_name
                ),
            );
        }
    }
}

/// `mask[i]` — token `i` is inside some `for`/`while`/`loop` body.
/// Loop headers are scanned to their first `{` at parenthesis depth
/// zero (closure bodies inside the header are skipped), then the body
/// is brace-matched.
fn loop_body_mask(ctx: &FileCtx) -> Vec<bool> {
    let toks = &ctx.tokens;
    let mut mask = vec![false; toks.len()];
    for i in 0..toks.len() {
        if !matches!(ctx.ident(i), "for" | "while" | "loop") {
            continue;
        }
        // `for` also opens higher-ranked trait bounds (`for<'a> …`);
        // a following `<` disqualifies it as a loop.
        if ctx.punct(i + 1, '<') {
            continue;
        }
        // Find the body's `{`: skip anything nested in `(`/`[` (and
        // `{`…`}` groups inside those, e.g. closures in the iterator
        // expression).
        let mut j = i + 1;
        let mut depth = 0i32;
        let open = loop {
            let Some(tok) = toks.get(j) else { break None };
            match &tok.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => break Some(j),
                // A `;` before the body means this wasn't a loop
                // header after all.
                TokenKind::Punct(';') if depth == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let mut braces = 0i32;
        let mut end = open;
        while end < toks.len() {
            match &toks[end].kind {
                TokenKind::Punct('{') => braces += 1,
                TokenKind::Punct('}') => {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let end = end.min(toks.len().saturating_sub(1));
        for flag in &mut mask[open..=end] {
            *flag = true;
        }
    }
    mask
}

/// The first argument starting at token `start` (just after the call's
/// `(`), if it is a string literal or a `format!("literal", …)` —
/// returning the literal and its token index. Leading `&` borrows are
/// skipped; anything else (a variable, a method call) is unjudgeable
/// statically and yields `None`.
pub(crate) fn first_string_arg(ctx: &FileCtx, start: usize) -> Option<(String, usize)> {
    let mut i = start;
    while ctx.punct(i, '&') {
        i += 1;
    }
    if let Some(TokenKind::Str(s)) = ctx.tokens.get(i).map(|t| &t.kind) {
        return Some((s.clone(), i));
    }
    if ctx.ident(i) == "format" && ctx.punct(i + 1, '!') && ctx.punct(i + 2, '(') {
        if let Some(TokenKind::Str(s)) = ctx.tokens.get(i + 3).map(|t| &t.kind) {
            return Some((s.clone(), i + 3));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules(src: &str) -> Vec<(&'static str, u32)> {
        lint_source("crates/drybell-lf/src/x.rs", src)
            .into_iter()
            .filter(|d| d.rule == "telemetry-conventions")
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn registered_names_pass() {
        let src = r#"
fn f(m: &MetricsRegistry, t: &Telemetry) {
    m.counter("nlp_calls").inc();
    m.gauge("nlp_cache/size").set(1);
    m.histogram("obs/nlp/annotate_us").record(2);
    t.span("lf_exec/in_memory");
    t.emit(Event::new("lf_execution"));
}
"#;
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn unregistered_names_fire_per_family() {
        let src = r#"
fn f(m: &MetricsRegistry, t: &Telemetry) {
    m.counter("votes");
    m.gauge("cache_size");
    m.histogram("train_step_ms");
    t.span("mystery/phase");
    t.emit(Event::new("vibes"));
}
"#;
        let got = rules(src);
        assert_eq!(
            got.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            [3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn format_literals_match_placeholders() {
        let src = r#"
fn f(m: &MetricsRegistry) {
    m.counter(&format!("votes/{}", name));
    m.histogram(&format!("obs/lf/{}/eval_us", name));
    m.counter(&format!("tallies/{}", name));
}
"#;
        assert_eq!(rules(src), [("telemetry-conventions", 5)]);
    }

    #[test]
    fn dynamic_names_are_out_of_scope() {
        let src = r#"
fn f(m: &MetricsRegistry, name: &str) {
    m.counter(name);
    m.counter(&format!("{}/{}", a, b));
}
"#;
        assert!(rules(src).is_empty());
    }

    #[test]
    fn counters_api_inc_add_are_checked() {
        let src = r#"
fn f(c: &Counters) {
    c.inc("nlp_calls");
    c.add("nlp_cache/hits", 3);
    c.inc("nlp_cals");
}
"#;
        assert_eq!(rules(src), [("telemetry-conventions", 5)]);
    }

    #[test]
    fn numeric_add_on_counters_is_ignored() {
        let src = "fn f(c: &Counter) { c.add(3); c.inc(); }";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn per_row_instrument_calls_in_loops_are_flagged() {
        let src = r#"
fn f(votes: &Counter, eval: &Histogram, c: &Counters) {
    for row in rows {
        votes.inc();
        eval.record(row.us);
        eval.record_duration(t0.elapsed());
        c.inc("nlp_calls");
        c.add("nlp_cache/hits", 3);
    }
    votes.inc();
}
"#;
        let got = rules(src);
        assert_eq!(
            got.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            [4, 5, 6],
            "bare per-row calls flag; name-addressed and out-of-loop ones do not"
        );
    }

    #[test]
    fn while_and_bare_loops_are_covered() {
        let src = r#"
fn f(c: &Counter) {
    while budget > 0 {
        c.inc();
    }
    loop {
        c.inc();
    }
}
"#;
        let got = rules(src);
        assert_eq!(got.iter().map(|(_, l)| *l).collect::<Vec<_>>(), [4, 7]);
    }

    #[test]
    fn loop_headers_with_closures_are_parsed() {
        let src = "fn f() { for x in v.iter().map(|y| { y.id }) { c.inc(); } }";
        assert_eq!(rules(src).len(), 1);
    }

    #[test]
    fn shard_api_and_cold_crates_are_exempt() {
        let src = r#"
fn f(layout: &ShardLayout) {
    let mut shard = layout.shard();
    for row in rows {
        shard.tally(slot, 1);
        shard.bump(slot);
        shard.observe(h_slot, row.us);
        shard.observe_duration(h_slot, t0.elapsed());
    }
}
"#;
        assert!(rules(src).is_empty(), "{:?}", rules(src));
        let cold = "fn f(c: &Counter) { for r in rows { c.inc(); } }";
        let diags: Vec<_> = lint_source("crates/drybell-doctor/src/x.rs", cold)
            .into_iter()
            .filter(|d| d.rule == "telemetry-conventions")
            .collect();
        assert!(diags.is_empty(), "cold crates may pay per-row costs");
    }

    #[test]
    fn justified_suppressions_cover_per_row_calls() {
        let src = r#"
fn f(c: &Counter) {
    for row in rows {
        // drybell-lint: allow(telemetry-conventions) — outer loop runs once per shard, not per row
        c.inc();
    }
}
"#;
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }
}
