//! `error-discipline`: Results must not be silently discarded in
//! non-test library code.
//!
//! Three shapes, all of which have bitten degradation paths before:
//!
//! - `let _ = fallible();` where the callee resolves to a workspace
//!   function returning `Result` — the error vanishes without even a
//!   counter increment;
//! - `x.ok();` as a whole statement — converts the `Err` to `None` and
//!   drops it (binding the value, `let v = x.ok();`, is fine: the
//!   caller visibly chose a default path);
//! - `.unwrap()` / `.expect(…)` in non-test code of crates *outside*
//!   the `no-panic` scope — `no-panic` already owns the serving/core
//!   crates, so this closes the gap for the rest (ml, nlp, doctor,
//!   lint, umbrella) without double-reporting.
//!
//! The workspace predates the rule, so it ships with a baseline
//! (`lint-baseline.txt`): per-file accepted counts. A file at its
//! baselined count is silent; above it, every finding in the file is
//! reported (the ratchet can't tell old from new, so the file's debt
//! surfaces all at once); below it, a `stale-baseline` diagnostic
//! demands regeneration so the improvement is locked in and cannot
//! silently regress.

use crate::callgraph::Graph;
use crate::config::Baseline;
use crate::model::{EffectKind, FileModel};
use crate::rules::no_panic::PANIC_SCOPE;
use crate::{Diagnostic, FileCtx};
use std::collections::BTreeMap;

/// Crates exempt from the rule entirely: vendored stand-ins and the
/// bench harness (panicking on bad setup is what benches should do).
fn exempt(crate_name: &str) -> bool {
    crate_name == "vendor" || crate_name == "drybell-bench"
}

/// Run the rule. Returns observed per-path counts (pre-baseline) so the
/// CLI can regenerate the baseline file.
pub fn check(
    graph: &Graph,
    files: &[FileModel],
    baseline: &Baseline,
    ctxs: &BTreeMap<String, &FileCtx>,
    out: &mut Vec<Diagnostic>,
) -> BTreeMap<(String, String), usize> {
    // Gather raw findings per file (suppressions applied via report_at
    // into a scratch vec, so suppressed findings don't count against
    // the baseline either).
    let mut per_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();

    for fm in files {
        if exempt(&fm.crate_name) {
            continue;
        }
        let Some(ctx) = ctxs.get(&fm.path) else {
            continue;
        };
        let mut found: Vec<Diagnostic> = Vec::new();
        for def in &fm.fns {
            if def.is_test {
                continue;
            }
            // `let _ = fallible();` with a workspace-resolved Result.
            for call in &def.calls {
                if !call.discarded {
                    continue;
                }
                let returns_result = graph
                    .edges
                    .get(&crate::callgraph::FnId {
                        crate_name: def.crate_name.clone(),
                        impl_type: def.impl_type.clone().unwrap_or_default(),
                        name: def.name.clone(),
                    })
                    .into_iter()
                    .flatten()
                    .filter(|e| e.line == call.line && e.col == call.col)
                    .any(|e| {
                        graph
                            .fns
                            .get(&e.to)
                            .is_some_and(|d| d.ret_head.as_deref() == Some("Result"))
                    });
                if returns_result {
                    ctx.report_at(
                        &mut found,
                        call.line,
                        call.col,
                        "error-discipline",
                        format!(
                            "`let _ =` discards the Result of {}(); handle it or log it",
                            call.callee
                        ),
                    );
                }
            }
            // `x.ok();` statements.
            for okd in &def.ok_discards {
                ctx.report_at(
                    &mut found,
                    okd.line,
                    okd.col,
                    "error-discipline",
                    "`.ok();` drops the Err without handling or logging it".to_owned(),
                );
            }
            // unwrap/expect outside the no-panic crates.
            if !PANIC_SCOPE.contains(&fm.crate_name.as_str()) {
                for e in &def.effects {
                    if e.kind == EffectKind::Panic && e.what.starts_with('.') {
                        ctx.report_at(
                            &mut found,
                            e.line,
                            e.col,
                            "error-discipline",
                            format!("{} in non-test library code; return the error", e.what),
                        );
                    }
                }
            }
        }
        if !found.is_empty() {
            per_file.entry(fm.path.clone()).or_default().extend(found);
        }
    }

    // Apply the baseline per (rule, path).
    let mut observed: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (path, findings) in &per_file {
        observed.insert(
            ("error-discipline".to_owned(), path.clone()),
            findings.len(),
        );
    }
    // Paths in the baseline with zero current findings must also be
    // diffed (they've been fully fixed — the baseline is stale).
    for ((rule, path), accepted) in &baseline.counts {
        if rule != "error-discipline" {
            continue;
        }
        let key = ("error-discipline".to_owned(), path.clone());
        let now = observed.get(&key).copied().unwrap_or(0);
        if now < *accepted {
            out.push(Diagnostic {
                path: path.clone(),
                line: 1,
                col: 1,
                rule: "stale-baseline",
                message: format!(
                    "baseline accepts {accepted} error-discipline findings here but only \
                     {now} remain; regenerate with --update-baseline to lock the fix in"
                ),
            });
        }
    }
    for (path, findings) in per_file {
        let accepted = baseline
            .counts
            .get(&("error-discipline".to_owned(), path.clone()))
            .copied()
            .unwrap_or(0);
        if findings.len() > accepted {
            out.extend(findings);
        }
    }
    observed
}
