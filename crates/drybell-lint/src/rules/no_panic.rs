//! `no-panic` and `no-panic-index`: library paths must degrade with
//! typed errors, not process aborts.
//!
//! The paper's serving story (§5.2) assumes the classification service
//! keeps answering under malformed inputs; a panic in `drybell-serving`
//! or the dataflow engine takes a worker (and its shard) with it. The
//! rule covers the library crates on production paths —
//! `drybell-core`, `drybell-dataflow`, `drybell-lf`, `drybell-serving`,
//! and `drybell-obs` — and exempts test code, benches, and datagen
//! (which construct their own inputs).

use crate::{Diagnostic, FileCtx, KEYWORDS};

/// Crates whose non-test code must not panic.
pub(crate) const PANIC_SCOPE: &[&str] = &[
    "drybell-core",
    "drybell-dataflow",
    "drybell-lf",
    "drybell-serving",
    "drybell-obs",
];

/// Macro names that abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !PANIC_SCOPE.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let id = ctx.ident(i);
        // `.unwrap()` / `.expect(`: require the leading dot so the rule
        // matches calls, not definitions or mentions.
        if (id == "unwrap" || id == "expect")
            && i > 0
            && ctx.punct(i - 1, '.')
            && ctx.punct(i + 1, '(')
        {
            ctx.report(
                out,
                i,
                "no-panic",
                format!("`.{id}()` can abort a worker; return a typed error instead"),
            );
        }
        // `panic!(…)` and friends.
        if PANIC_MACROS.contains(&id) && ctx.punct(i + 1, '!') {
            ctx.report(
                out,
                i,
                "no-panic",
                format!("`{id}!` aborts the process; library paths must return errors"),
            );
        }
        // Indexing: `expr[...]` where expr ends in an identifier, `)`
        // or `]`. Keywords before `[` are patterns/types, not indexing
        // (`let [a, b] = …`); `#[…]` attributes and `vec![…]` macros are
        // excluded by their preceding punctuation.
        if ctx.punct(i, '[') && i > 0 {
            let prev = &ctx.tokens[i - 1].kind;
            let is_index = match prev {
                crate::lexer::TokenKind::Ident(s) => !KEYWORDS.contains(&s.as_str()),
                crate::lexer::TokenKind::Punct(')') | crate::lexer::TokenKind::Punct(']') => true,
                _ => false,
            };
            if is_index {
                ctx.report(
                    out,
                    i,
                    "no-panic-index",
                    "`[…]` indexing panics out of bounds; use `.get()` or justify the invariant"
                        .to_owned(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_source(path, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn unwrap_expect_and_macros_fire() {
        let src = "fn f() {\na.unwrap();\nb.expect(\"x\");\npanic!(\"y\");\nunreachable!();\n}";
        let got = rules("crates/drybell-serving/src/x.rs", src);
        assert_eq!(
            got,
            [
                ("no-panic", 2),
                ("no-panic", 3),
                ("no-panic", 4),
                ("no-panic", 5),
            ]
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }";
        assert!(rules("crates/drybell-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexing_fires_but_patterns_do_not() {
        let src = "fn f(v: &[u8], m: [u8; 2]) -> u8 {\nlet [a, b] = m;\nv[0] + a + b\n}";
        let got = rules("crates/drybell-dataflow/src/x.rs", src);
        assert_eq!(got, [("no-panic-index", 3)]);
    }

    #[test]
    fn attributes_and_macros_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { let v = vec![1, 2]; }";
        assert!(rules("crates/drybell-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn chained_and_call_result_indexing_fires() {
        let src = "fn f() { g()[0]; m[1][2]; }";
        let got = rules("crates/drybell-lf/src/x.rs", src);
        assert_eq!(got.len(), 3, "{got:?}");
    }

    #[test]
    fn out_of_scope_crates_are_exempt() {
        let src = "fn f() { a.unwrap(); v[0]; }";
        assert!(rules("crates/drybell-datagen/src/x.rs", src).is_empty());
        assert!(rules("crates/drybell-ml/src/x.rs", src).is_empty());
    }
}
