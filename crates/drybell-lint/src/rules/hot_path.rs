//! `hot-path`: functions transitively reachable from the roots declared
//! in `lint.toml` must not allocate, acquire locks, panic, or hit
//! synchronized telemetry.
//!
//! The roots name the workspace's per-row kernels: the label-model
//! gradient kernels, the LF vote body, and the serving score path. The
//! ROADMAP's columnar data plane depends on these staying lock- and
//! allocation-free per row; this rule generalizes PR-6's per-loop
//! telemetry check from "inside a `for` body in this file" to "anywhere
//! a root can reach, across all crates".
//!
//! Each diagnostic carries the BFS chain from the root so the reader
//! sees *why* the function is hot (`root → caller → offender`), and is
//! suppressable at the offending line with the usual justified
//! `drybell-lint: allow(hot-path)` comment.

use crate::callgraph::{FnId, Graph};
use crate::config::LintConfig;
use crate::model::{EffectKind, FileModel};
use crate::{Diagnostic, FileCtx};
use std::collections::BTreeMap;

/// Parse a `crate::Type::fn` / `crate::fn` root spec into an id.
fn parse_root(spec: &str) -> Option<FnId> {
    let parts: Vec<&str> = spec.split("::").collect();
    match parts.as_slice() {
        [krate, name] => Some(FnId {
            crate_name: (*krate).to_owned(),
            impl_type: String::new(),
            name: (*name).to_owned(),
        }),
        [krate, ty, name] => Some(FnId {
            crate_name: (*krate).to_owned(),
            impl_type: (*ty).to_owned(),
            name: (*name).to_owned(),
        }),
        _ => None,
    }
}

/// Run the rule over the linked workspace.
pub fn check(
    graph: &Graph,
    _files: &[FileModel],
    cfg: &LintConfig,
    ctxs: &BTreeMap<String, &FileCtx>,
    out: &mut Vec<Diagnostic>,
) {
    let mut roots = Vec::new();
    for root in &cfg.roots {
        match parse_root(&root.spec) {
            Some(id) if graph.fns.contains_key(&id) => roots.push(id),
            Some(_) | None => out.push(Diagnostic {
                path: "lint.toml".to_owned(),
                line: root.line,
                col: 1,
                rule: "hot-path",
                message: format!(
                    "hot-path root `{}` does not name a workspace function \
                     (expected crate::Type::fn or crate::fn)",
                    root.spec
                ),
            }),
        }
    }
    let parents = graph.reachable(&roots);

    for (id, _) in parents.iter() {
        let Some(def) = graph.fns.get(id) else {
            continue;
        };
        if def.is_test {
            continue;
        }
        let chain = Graph::chain(&parents, id);
        let Some(ctx) = ctxs.get(&def.path) else {
            continue;
        };
        // Call sites that resolved into workspace code outside drybell-obs:
        // the BFS descends into those bodies, so a name-based telemetry
        // effect at the same position (e.g. `.record(…)` on a plain
        // in-memory histogram) would double-count a call the graph already
        // analyzes. Calls into drybell-obs keep their effect — that crate's
        // shared instruments are synchronized by design.
        let resolved_non_obs: std::collections::BTreeSet<(u32, u32)> = graph
            .edges
            .get(id)
            .map(|edges| {
                edges
                    .iter()
                    .filter(|e| e.to.crate_name != "drybell-obs")
                    .map(|e| (e.line, e.col))
                    .collect()
            })
            .unwrap_or_default();
        for e in &def.effects {
            if e.kind == EffectKind::SyncTelemetry && resolved_non_obs.contains(&(e.line, e.col)) {
                continue;
            }
            let verb = match e.kind {
                EffectKind::Alloc => "allocates",
                EffectKind::Panic => "may panic",
                EffectKind::SyncTelemetry => "takes a synchronized telemetry hit",
                EffectKind::AnonymousLock => "acquires a lock",
            };
            ctx.report_at(
                out,
                e.line,
                e.col,
                "hot-path",
                format!("hot path `{chain}` {verb} per call ({})", e.what),
            );
        }
        for l in &def.locks {
            ctx.report_at(
                out,
                l.line,
                l.col,
                "hot-path",
                format!(
                    "hot path `{chain}` acquires a lock per call (.{}())",
                    l.method
                ),
            );
        }
    }
}
