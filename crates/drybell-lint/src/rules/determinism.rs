//! `determinism`: a seeded run must be exactly reproducible.
//!
//! Snorkel's label-model math (and this repo's
//! `pipelines_are_deterministic_given_seed` test) assumes identical
//! inputs produce identical posteriors. Three things silently break
//! that: RNGs seeded from the environment, wall-clock values flowing
//! into outputs, and `HashMap`/`HashSet` iteration order leaking into
//! label-model math, journal lines, or reducer emission. The rule flags
//! all three workspace-wide in production code; sites where order
//! provably cannot escape carry a justified suppression.
//!
//! Monotonic `Instant` reads are *not* flagged: latency telemetry is
//! expected to vary run-to-run, and durations never feed model math.

use crate::lexer::TokenKind;
use crate::{Diagnostic, FileCtx};
use std::collections::BTreeSet;

/// Identifiers that construct an unseeded (environment-dependent) RNG.
const UNSEEDED_RNG: &[&str] = &["thread_rng", "from_entropy", "OsRng", "entropy_rng"];

/// Iteration methods whose order is the hash map's internal order.
const ORDERED_SINKS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "vendor" {
        return;
    }
    let unordered = collect_unordered_bindings(ctx);
    for i in 0..ctx.tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let id = ctx.ident(i);
        if UNSEEDED_RNG.contains(&id) {
            ctx.report(
                out,
                i,
                "determinism",
                format!("`{id}` seeds from the environment; derive the RNG from the run seed"),
            );
        }
        if id == "SystemTime" {
            ctx.report(
                out,
                i,
                "determinism",
                "wall-clock reads make runs irreproducible; pass times in explicitly".to_owned(),
            );
        }
        // `name.iter()` / `for … in &name` on a known HashMap/HashSet.
        if unordered.contains(id) {
            if ctx.punct(i + 1, '.') && ORDERED_SINKS.contains(&ctx.ident(i + 2)) {
                ctx.report(
                    out,
                    i + 2,
                    "determinism",
                    format!(
                        "iterating `{id}` ({}) has nondeterministic order; sort or use BTreeMap",
                        unordered_kind(ctx, id)
                    ),
                );
            }
            if is_for_in_target(ctx, i) {
                ctx.report(
                    out,
                    i,
                    "determinism",
                    format!(
                        "`for` over `{id}` ({}) has nondeterministic order; sort or use BTreeMap",
                        unordered_kind(ctx, id)
                    ),
                );
            }
        }
    }
}

/// Identifiers bound (let, field, or parameter) to a `HashMap` or
/// `HashSet` anywhere in the file. Token patterns covered:
/// `name: HashMap<…>` and `let [mut] name = HashMap::new()`.
fn collect_unordered_bindings(ctx: &FileCtx) -> BTreeSet<&str> {
    let mut bound = BTreeSet::new();
    for i in 0..ctx.tokens.len() {
        let id = ctx.ident(i);
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        if i >= 2 && ctx.punct(i - 1, ':') {
            if let TokenKind::Ident(name) = &ctx.tokens[i - 2].kind {
                bound.insert(name.as_str());
            }
        }
        if i >= 2 && ctx.punct(i - 1, '=') {
            if let TokenKind::Ident(name) = &ctx.tokens[i - 2].kind {
                bound.insert(name.as_str());
            }
        }
    }
    bound
}

/// Which unordered type `name` was bound to (for the message).
fn unordered_kind(ctx: &FileCtx, name: &str) -> &'static str {
    for i in 2..ctx.tokens.len() {
        if ctx.ident(i - 2) == name && (ctx.punct(i - 1, ':') || ctx.punct(i - 1, '=')) {
            match ctx.ident(i) {
                "HashSet" => return "HashSet",
                "HashMap" => return "HashMap",
                _ => {}
            }
        }
    }
    "HashMap"
}

/// Whether token `i` (a bound identifier) is the target of a `for … in`
/// loop: `in name`, `in &name`, or `in &mut name`, with a `{` soon
/// after (so `contains(…)` arguments named like a map don't match).
fn is_for_in_target(ctx: &FileCtx, i: usize) -> bool {
    let mut j = i;
    // Step back over `&` and `mut`.
    while j > 0 && (ctx.punct(j - 1, '&') || ctx.ident(j - 1) == "mut") {
        j -= 1;
    }
    j > 0 && ctx.ident(j - 1) == "in" && ctx.punct(i + 1, '{')
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules(src: &str) -> Vec<(&'static str, u32)> {
        lint_source("crates/drybell-core/src/x.rs", src)
            .into_iter()
            .filter(|d| d.rule == "determinism")
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn unseeded_rng_and_wall_clock_fire() {
        let src = "fn f() {\nlet r = rand::thread_rng();\nlet t = SystemTime::now();\n}";
        assert_eq!(rules(src), [("determinism", 2), ("determinism", 3)]);
    }

    #[test]
    fn seeded_rng_and_instant_do_not_fire() {
        let src = "fn f() { let r = StdRng::seed_from_u64(7); let t = Instant::now(); }";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn hashmap_iteration_fires_for_methods_and_for_loops() {
        let src = "\
fn f() {
let mut m: HashMap<String, u64> = HashMap::new();
for (k, v) in &m { emit(k, v); }
let keys: Vec<_> = m.keys().collect();
}";
        let got = rules(src);
        assert_eq!(got, [("determinism", 3), ("determinism", 4)]);
    }

    #[test]
    fn let_binding_to_hashmap_new_is_tracked() {
        let src = "fn f() { let buffer = HashMap::new(); buffer.drain(); }";
        assert_eq!(rules(src).len(), 1);
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src =
            "fn f() { let m: BTreeMap<String, u64> = BTreeMap::new(); for x in &m {} m.keys(); }";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn lookup_methods_on_maps_are_fine() {
        let src = "fn f(m: HashMap<String, u64>) { m.get(\"k\"); m.insert(k, v); m.len(); }";
        assert!(rules(src).is_empty());
    }
}
