//! The lint rules. Each submodule exposes `check(&FileCtx, &mut Vec<Diagnostic>)`
//! and owns one rule family; see the crate docs for the full table.

pub mod determinism;
pub mod error_discipline;
pub mod hot_path;
pub mod lf_purity;
pub mod lock_order;
pub mod no_panic;
pub mod telemetry;
