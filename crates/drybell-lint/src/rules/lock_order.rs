//! `lock-order`: the workspace lock-acquisition order must be acyclic.
//!
//! Every `Mutex`/`RwLock` field acquisition gets a stable id
//! (`Struct.field`); an edge `A → B` means some code path acquires `B`
//! while holding `A`, either directly in one function body (guard scope
//! from the model) or through a call whose callee transitively acquires
//! `B`. A cycle in this graph is a potential deadlock between threads
//! acquiring in opposite orders — exactly the hazard introduced by
//! PR-6's journal/shard/trace stack and the multi-process dataflow
//! coordinator on the ROADMAP.
//!
//! Self-edges are skipped: striped locks (`stripes[i]`, `stripes[j]`
//! share one field id) and drop-then-reacquire patterns produce
//! re-acquisitions of the same id that the token view cannot tell apart
//! from genuine double-locking. That blind spot is documented in
//! DESIGN.md; parking_lot would deadlock loudly in tests if it were
//! real.

use crate::callgraph::Graph;
use crate::model::FileModel;
use crate::{Diagnostic, FileCtx};
use std::collections::{BTreeMap, BTreeSet};

/// Where an ordering edge was introduced (for the diagnostic).
struct Site {
    path: String,
    line: u32,
    col: u32,
    note: String,
}

/// Run the rule over the linked workspace.
pub fn check(
    graph: &Graph,
    files: &[FileModel],
    ctxs: &BTreeMap<String, &FileCtx>,
    out: &mut Vec<Diagnostic>,
) {
    // Struct field tables for lock-id resolution.
    let trans = graph.transitive_locks(files);

    // Ordering edges: (held, acquired) → first site, deterministically.
    let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, site: Site| {
        if from == to {
            return; // striped/re-acquired same id — documented blind spot
        }
        edges
            .entry((from.to_owned(), to.to_owned()))
            .or_insert(site);
    };

    for fm in files {
        for def in &fm.fns {
            if def.is_test {
                continue;
            }
            // Direct nesting inside one body: lock j acquired inside
            // lock i's guard scope.
            for (i, li) in def.locks.iter().enumerate() {
                let Some(from) = graph.lock_id(&li.recv, files) else {
                    continue;
                };
                for lj in def.locks.iter().skip(i + 1) {
                    if lj.token > li.token && lj.token <= li.scope_end {
                        if let Some(to) = graph.lock_id(&lj.recv, files) {
                            add_edge(
                                &from,
                                &to,
                                Site {
                                    path: def.path.clone(),
                                    line: lj.line,
                                    col: lj.col,
                                    note: format!("in {}", def.display_id()),
                                },
                            );
                        }
                    }
                }
            }
            // Through calls: a call made while holding H reaches every
            // lock its resolved callee may transitively acquire.
            if let Some(fn_edges) = graph.edges.get(&crate::callgraph::FnId {
                crate_name: def.crate_name.clone(),
                impl_type: def.impl_type.clone().unwrap_or_default(),
                name: def.name.clone(),
            }) {
                for e in fn_edges {
                    if e.holding.is_empty() {
                        continue;
                    }
                    let Some(callee_locks) = trans.get(&e.to) else {
                        continue;
                    };
                    for held in &e.holding {
                        for acquired in callee_locks {
                            add_edge(
                                held,
                                acquired,
                                Site {
                                    path: def.path.clone(),
                                    line: e.line,
                                    col: e.col,
                                    note: format!(
                                        "{} calls {} while holding {held}",
                                        def.display_id(),
                                        e.to.display()
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: SCCs of the lock-order graph (Tarjan). Any SCC
    // with ≥ 2 locks contains a cycle.
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let index_of: BTreeMap<&String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&String> = nodes.into_iter().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        adj[index_of[a]].push(index_of[b]);
    }
    let sccs = tarjan(&adj);

    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let mut locks: Vec<String> = scc.iter().map(|&i| names[i].clone()).collect();
        locks.sort();
        let in_scc: BTreeSet<&String> = locks.iter().collect();
        // Anchor at the first (deterministic) edge inside the SCC.
        let Some(((from, to), site)) = edges
            .iter()
            .find(|((a, b), _)| in_scc.contains(a) && in_scc.contains(b))
        else {
            continue;
        };
        let message = format!(
            "lock-order cycle between {{{}}}: {} acquires {to} while holding {from} ({}); \
             another path acquires them in the opposite order",
            locks.join(", "),
            site.path,
            site.note,
        );
        match ctxs.get(&site.path) {
            Some(ctx) => ctx.report_at(out, site.line, site.col, "lock-order", message),
            None => out.push(Diagnostic {
                path: site.path.clone(),
                line: site.line,
                col: site.col,
                rule: "lock-order",
                message,
            }),
        }
    }
}

/// Iterative Tarjan strongly-connected components.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    let mut counter = 0usize;

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Explicit DFS stack of (node, next-child-index).
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}
