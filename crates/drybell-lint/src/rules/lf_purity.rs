//! `lf-purity`: labeling functions are pure functions of their inputs.
//!
//! §5.1's template contract is that engineers write "only simple main
//! files that define the function(s) that computes the labeling
//! function's vote for an individual example" — all I/O and state
//! belongs to the template (the executor and its model servers). A
//! vote function that mutates shared state or reads the outside world
//! breaks both determinism (votes depend on execution order) and the
//! sharded executor (workers see different state). The type system
//! already rejects `FnMut` captures (`Lf` boxes `dyn Fn`); this rule
//! covers what it cannot: interior mutability and ambient I/O inside
//! the closures handed to `Lf::plain` / `Lf::nlp` / `Lf::graph`.

use crate::{Diagnostic, FileCtx};

/// Identifiers that smuggle mutability or the outside world into a
/// closure the type system considers `Fn`.
const IMPURE: &[(&str, &str)] = &[
    ("RefCell", "interior mutability"),
    ("Cell", "interior mutability"),
    ("Mutex", "shared mutable state"),
    ("RwLock", "shared mutable state"),
    ("AtomicUsize", "shared mutable state"),
    ("AtomicU64", "shared mutable state"),
    ("AtomicI64", "shared mutable state"),
    ("AtomicBool", "shared mutable state"),
    ("File", "filesystem I/O"),
    ("OpenOptions", "filesystem I/O"),
    ("read_to_string", "filesystem I/O"),
    ("TcpStream", "network I/O"),
    ("UdpSocket", "network I/O"),
    ("stdin", "console I/O"),
    ("stdout", "console I/O"),
    ("stderr", "console I/O"),
    ("thread_rng", "nondeterminism"),
    ("SystemTime", "nondeterminism"),
    ("Instant", "nondeterminism"),
    ("var", "environment reads"),
];

/// Printing macros (`name` followed by `!`).
const IMPURE_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "vendor" {
        return;
    }
    let mut i = 0;
    while i < ctx.tokens.len() {
        // `Lf::plain(` / `Lf::nlp(` / `Lf::graph(` — `::` is two `:`.
        let is_ctor = ctx.ident(i) == "Lf"
            && ctx.punct(i + 1, ':')
            && ctx.punct(i + 2, ':')
            && matches!(ctx.ident(i + 3), "plain" | "nlp" | "graph")
            && ctx.punct(i + 4, '(');
        if !is_ctor || ctx.in_test[i] {
            i += 1;
            continue;
        }
        let open = i + 4;
        let close = matching_paren(ctx, open);
        scan_closure(ctx, out, open + 1, close);
        i = open + 1;
    }
}

/// Index of the `)` matching the `(` at `open` (or end of file).
fn matching_paren(ctx: &FileCtx, open: usize) -> usize {
    let mut depth = 0i32;
    for j in open..ctx.tokens.len() {
        if ctx.punct(j, '(') {
            depth += 1;
        } else if ctx.punct(j, ')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    ctx.tokens.len()
}

fn scan_closure(ctx: &FileCtx, out: &mut Vec<Diagnostic>, start: usize, end: usize) {
    for j in start..end.min(ctx.tokens.len()) {
        let id = ctx.ident(j);
        if let Some((_, why)) = IMPURE.iter().find(|(name, _)| *name == id) {
            // `var` only as `env::var` — too common a name otherwise.
            if id == "var"
                && !(ctx.punct(j.wrapping_sub(1), ':') && ctx.ident(j.wrapping_sub(3)) == "env")
            {
                continue;
            }
            ctx.report(
                out,
                j,
                "lf-purity",
                format!("LF closures must stay pure: `{id}` brings {why} into a vote function"),
            );
        }
        if IMPURE_MACROS.contains(&id) && ctx.punct(j + 1, '!') {
            ctx.report(
                out,
                j,
                "lf-purity",
                format!("LF closures must stay pure: `{id}!` performs console I/O"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules(src: &str) -> Vec<(&'static str, u32)> {
        lint_source("crates/drybell-datagen/src/x.rs", src)
            .into_iter()
            .filter(|d| d.rule == "lf-purity")
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn pure_lf_closures_pass() {
        let src = r#"
fn lfs() -> Vec<Lf<Doc>> {
    vec![
        Lf::plain(meta("kw"), |d: &Doc| if d.text.contains("x") { Vote::Pos } else { Vote::Abstain }),
        Lf::nlp(meta("ner"), |d: &Doc, nlp: &NlpResult| vote_from(nlp)),
        Lf::graph(meta("kg"), |d: &Doc, kg: &KnowledgeGraph| kg_vote(d, kg)),
    ]
}
"#;
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn interior_mutability_in_closure_fires() {
        let src = r#"
fn lf() -> Lf<Doc> {
    let counter = std::sync::Arc::new(std::sync::Mutex::new(0u64));
    Lf::plain(meta("counting"), move |d: &Doc| {
        *counter.lock().unwrap() += 1;
        Vote::Abstain
    })
}
"#;
        // The Mutex *outside* the ctor is fine; nothing inside the
        // closure names it by type — but this variant does:
        let src2 = src.replace(
            "*counter.lock().unwrap() += 1;",
            "let c: &Mutex<u64> = &counter; *c.lock().unwrap() += 1;",
        );
        assert!(rules(src).is_empty());
        assert_eq!(rules(&src2), [("lf-purity", 5)]);
    }

    #[test]
    fn io_and_printing_fire() {
        let src = r#"
fn lf() -> Lf<Doc> {
    Lf::plain(meta("leaky"), |d: &Doc| {
        println!("voting on {}", d.id);
        let extra = std::fs::read_to_string("side_channel.txt");
        Vote::Abstain
    })
}
"#;
        assert_eq!(rules(src), [("lf-purity", 4), ("lf-purity", 5)]);
    }

    #[test]
    fn nondeterminism_in_lf_fires() {
        let src = r#"
fn lf() -> Lf<Doc> {
    Lf::plain(meta("flaky"), |_d: &Doc| {
        if SystemTime::now().elapsed().is_ok() { Vote::Pos } else { Vote::Neg }
    })
}
"#;
        let got = rules(src);
        assert_eq!(got, [("lf-purity", 4)]);
    }

    #[test]
    fn code_outside_lf_constructors_is_not_in_scope() {
        let src = "fn helper() { let m = Mutex::new(0); println!(\"ok\"); }";
        assert!(rules(src).is_empty());
    }
}
