//! The symbol model: each file's item structure, recovered from the
//! token stream.
//!
//! The graph rules (`hot-path`, `lock-order`, `error-discipline`) need
//! more than per-line token matching: they need to know which function
//! a token lives in, what that function *calls*, and what it *does*
//! (allocate, lock, panic, touch synchronized telemetry). Full type
//! resolution is out of reach without `rustc` — instead this module
//! parses, from the existing lexer's tokens, exactly the structure the
//! [`crate::callgraph`] resolution heuristics consume:
//!
//! - `fn` items with their impl type, parameter types, and return-type
//!   head (`Result`, `Option`, a concrete type, …);
//! - `struct` fields and their type heads (so `self.models.lock()` can
//!   be identified as acquiring the `Mutex` field `models`);
//! - `enum` variants with single-identifier payload types (so a
//!   `ExportedModel::LogReg(m) =>` match arm types its binding);
//! - call sites with a receiver hint (`self`, a typed local, a typed
//!   field, a path-qualified `Type::method`, or unknown);
//! - effect sites: heap allocation, panicking calls, synchronized
//!   telemetry, and lock acquisitions with an approximate guard scope.
//!
//! Known blind spots, by design (documented in DESIGN.md): generics and
//! trait objects resolve only when the receiver's concrete type is
//! syntactically visible; closures are opaque (calls through `Fn`
//! parameters surface as unresolved edges); macro-generated code is
//! invisible; and a reused buffer growing inside `extend`/`push` is
//! amortized allocation the token view cannot see.

use crate::lexer::TokenKind;
use crate::FileCtx;
use std::collections::BTreeMap;

/// Keywords and control-flow identifiers that can precede `(` without
/// the parenthesis being a call.
const NOT_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "fn", "let", "else", "loop", "move",
    "break", "continue", "where", "impl", "dyn", "use", "pub", "mod", "crate", "self", "Self",
    "super", "unsafe", "ref", "mut", "const", "static", "type", "struct", "enum", "trait",
];

/// `Type::ctor(…)` paths that heap-allocate.
const ALLOC_PATH_CALLS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("VecDeque", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
];

/// Method calls that heap-allocate their result.
const ALLOC_METHODS: &[&str] = &["to_owned", "to_string", "to_vec", "into_owned", "collect"];

/// Macros that heap-allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Macros that abort the process. `debug_assert*` is excluded: it
/// compiles out of release builds, so it cannot take a production
/// worker down.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// How a call site's receiver was (or was not) typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// A free function call (`helper(…)`, `module::helper(…)`).
    Free,
    /// The receiver's type head is syntactically known: `self.m(…)`
    /// inside `impl T`, `Type::m(…)`, or a local with a visible type.
    Typed(String),
    /// `self.field.m(…)` — the field's type resolves later against the
    /// impl type's struct definition.
    SelfField(String, String),
    /// A match-arm binding `Enum::Variant(x)` — the payload type
    /// resolves later against the enum definition.
    EnumPayload(String, String),
    /// Anything else (chained calls, untyped locals).
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (method or function identifier).
    pub callee: String,
    /// Receiver hint for resolution.
    pub recv: Receiver,
    /// 1-based line / column of the callee token.
    pub line: u32,
    /// Column.
    pub col: u32,
    /// The call's value is discarded via `let _ = …`.
    pub discarded: bool,
    /// Indices (into [`FnDef::locks`]) of guards held at this site.
    pub holding: Vec<usize>,
}

/// Kinds of direct effect a function body exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// Heap allocation (`Vec::new`, `format!`, `.to_owned()`, …).
    Alloc,
    /// A panicking call (`unwrap`, `expect`, `panic!`-family).
    Panic,
    /// A synchronized telemetry instrument call (`.inc()`,
    /// `.record_duration(…)`, …) — an atomic or histogram lock per call.
    SyncTelemetry,
    /// A lock acquisition whose receiver could not be identified
    /// (`something.lock()` on an unknown receiver).
    AnonymousLock,
}

/// One effect site.
#[derive(Debug, Clone)]
pub struct Effect {
    /// What kind of effect.
    pub kind: EffectKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending token text (for messages).
    pub what: String,
}

/// A lock acquisition with its approximate guard scope.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Receiver hint — resolved to a lock identity by the call graph
    /// (`Struct.field` for `self.field.lock()`).
    pub recv: Receiver,
    /// `lock`, `read`, or `write`.
    pub method: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Token index of the acquisition.
    pub token: usize,
    /// Token index past which the guard is dead. For `let g = x.lock()`
    /// this is the end of the enclosing block; for a temporary
    /// (`x.lock().do_thing()`) it is the end of the statement.
    pub scope_end: usize,
}

/// A `.ok()` whose `Err` is discarded (`x.ok();` as a statement).
#[derive(Debug, Clone)]
pub struct OkDiscard {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `impl` type head this method belongs to, if any.
    pub impl_type: Option<String>,
    /// Owning crate (`drybell-core`, …).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The function is test-only (inside `#[cfg(test)]`/`#[test]`, or a
    /// test/bench tree).
    pub is_test: bool,
    /// First identifier of the return type (`Result`, `Vec`, …).
    pub ret_head: Option<String>,
    /// Calls made in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Direct effects in the body.
    pub effects: Vec<Effect>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockAcquire>,
    /// `.ok();` discards in the body.
    pub ok_discards: Vec<OkDiscard>,
}

impl FnDef {
    /// `crate::Type::name` / `crate::name` — the display identity.
    pub fn display_id(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// A `struct` definition's named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `field name → type head` (`models → Mutex`).
    pub fields: BTreeMap<String, String>,
}

/// An `enum` definition's variants.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// `variant → payload type head` for single-field tuple variants.
    pub variants: BTreeMap<String, String>,
}

/// Everything the call graph needs from one file.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate.
    pub crate_name: String,
    /// Functions, in source order.
    pub fns: Vec<FnDef>,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
}

/// Parse a file's item structure from its lexed context.
pub fn parse(ctx: &FileCtx) -> FileModel {
    Parser {
        ctx,
        brace_match: brace_matches(ctx),
        model: FileModel {
            path: ctx.path.clone(),
            crate_name: ctx.crate_name.clone(),
            fns: Vec::new(),
            structs: Vec::new(),
            enums: Vec::new(),
        },
    }
    .run()
}

/// For each `{` token index, the index of its matching `}` (or the last
/// token if unterminated).
fn brace_matches(ctx: &FileCtx) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('{') => stack.push(i),
            TokenKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                }
            }
            _ => {}
        }
    }
    let last = ctx.tokens.len().saturating_sub(1);
    for open in stack {
        map.insert(open, last);
    }
    map
}

struct Parser<'a> {
    ctx: &'a FileCtx,
    brace_match: BTreeMap<usize, usize>,
    model: FileModel,
}

impl<'a> Parser<'a> {
    fn id(&self, i: usize) -> &str {
        self.ctx.ident(i)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.ctx.punct(i, c)
    }

    fn run(mut self) -> FileModel {
        let mut i = 0;
        while i < self.ctx.tokens.len() {
            match self.id(i) {
                "impl" => i = self.parse_impl(i),
                "fn" => i = self.parse_fn(i, None),
                "struct" => i = self.parse_struct(i),
                "enum" => i = self.parse_enum(i),
                "trait" => i = self.skip_trait(i),
                _ => i += 1,
            }
        }
        self.model
    }

    /// Skip a `trait … { … }` item wholesale. Default trait-method
    /// bodies are not modeled: without knowing the implementing type
    /// they would pollute resolution with ambiguous candidates.
    fn skip_trait(&self, start: usize) -> usize {
        let mut i = start + 1;
        while i < self.ctx.tokens.len() && !self.punct(i, '{') {
            if self.punct(i, ';') {
                return i + 1;
            }
            i += 1;
        }
        self.brace_match.get(&i).map_or(i + 1, |e| e + 1)
    }

    /// Skip a generic parameter list if the cursor is at `<`.
    fn skip_generics(&self, mut i: usize) -> usize {
        if !self.punct(i, '<') {
            return i;
        }
        let mut depth = 0i32;
        while i < self.ctx.tokens.len() {
            if self.punct(i, '<') {
                depth += 1;
            } else if self.punct(i, '>') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// `impl [<…>] Type [for Type] [where …] { … }` — parse the header,
    /// then each `fn` inside with the impl type attached.
    fn parse_impl(&mut self, start: usize) -> usize {
        let mut i = self.skip_generics(start + 1);
        // Scan to the body `{`, noting the last path ident seen and
        // whether a `for` switched us to the implementing type.
        let mut ty: Option<String> = None;
        while i < self.ctx.tokens.len() && !self.punct(i, '{') {
            if self.punct(i, ';') {
                return i + 1; // `impl Trait for Type;` — nothing to do
            }
            if self.id(i) == "for" {
                ty = None; // the type after `for` is the real one
                i += 1;
                continue;
            }
            if self.id(i) == "where" {
                break;
            }
            if let TokenKind::Ident(s) = &self.ctx.tokens[i].kind {
                if s.chars().next().is_some_and(char::is_uppercase) && ty.is_none() {
                    ty = Some(s.clone());
                }
                i += 1;
                continue;
            }
            if self.punct(i, '<') {
                i = self.skip_generics(i);
                continue;
            }
            i += 1;
        }
        while i < self.ctx.tokens.len() && !self.punct(i, '{') {
            i += 1;
        }
        if i >= self.ctx.tokens.len() {
            return i;
        }
        let body_end = *self.brace_match.get(&i).unwrap_or(&i);
        let mut j = i + 1;
        while j < body_end {
            if self.id(j) == "fn" {
                j = self.parse_fn(j, ty.as_deref());
            } else {
                j += 1;
            }
        }
        body_end + 1
    }

    /// `struct Name [<…>] { field: Type, … }` — record field type heads.
    fn parse_struct(&mut self, start: usize) -> usize {
        let Some(name) = self.ctx.tokens.get(start + 1).and_then(|t| t.kind.ident()) else {
            return start + 1;
        };
        let name = name.to_owned();
        let mut i = self.skip_generics(start + 2);
        // Tuple struct or unit struct: no named fields to record.
        if self.punct(i, '(') || self.punct(i, ';') {
            return i + 1;
        }
        while i < self.ctx.tokens.len() && !self.punct(i, '{') {
            if self.punct(i, ';') {
                return i + 1;
            }
            i += 1;
        }
        if i >= self.ctx.tokens.len() {
            return i;
        }
        let end = *self.brace_match.get(&i).unwrap_or(&i);
        let mut fields = BTreeMap::new();
        let mut j = i + 1;
        while j < end {
            // `name :` at brace depth 1 followed by a type head.
            if self.punct(j + 1, ':') && !self.punct(j + 2, ':') {
                if let TokenKind::Ident(f) = &self.ctx.tokens[j].kind {
                    let fname = f.clone();
                    if let Some(head) = self.type_head(j + 2) {
                        fields.insert(fname, head);
                    }
                }
                // Skip to the comma at depth 0 relative to the field.
                let mut depth = 0i32;
                while j < end {
                    match &self.ctx.tokens[j].kind {
                        TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => {
                            depth += 1
                        }
                        TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                            depth -= 1
                        }
                        TokenKind::Punct(',') if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            j += 1;
        }
        self.model.structs.push(StructDef { name, fields });
        end + 1
    }

    /// `enum Name { Variant(Payload), … }` — record single-field tuple
    /// variant payload heads.
    fn parse_enum(&mut self, start: usize) -> usize {
        let Some(name) = self.ctx.tokens.get(start + 1).and_then(|t| t.kind.ident()) else {
            return start + 1;
        };
        let name = name.to_owned();
        let mut i = self.skip_generics(start + 2);
        while i < self.ctx.tokens.len() && !self.punct(i, '{') {
            if self.punct(i, ';') {
                return i + 1;
            }
            i += 1;
        }
        if i >= self.ctx.tokens.len() {
            return i;
        }
        let end = *self.brace_match.get(&i).unwrap_or(&i);
        let mut variants = BTreeMap::new();
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < end {
            match &self.ctx.tokens[j].kind {
                TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Ident(v)
                    if depth == 0
                        && v.chars().next().is_some_and(char::is_uppercase)
                        && self.punct(j + 1, '(') =>
                {
                    // `Variant(Payload)` — single-ident payload only.
                    if let Some(head) = self.type_head(j + 2) {
                        // The payload must be one simple type (possibly
                        // generic): reject `Variant(A, B)`.
                        let close = self.matching(j + 1, '(', ')');
                        let mut commas = 0;
                        let mut d = 0i32;
                        for k in j + 2..close {
                            match &self.ctx.tokens[k].kind {
                                TokenKind::Punct('<') | TokenKind::Punct('(') => d += 1,
                                TokenKind::Punct('>') | TokenKind::Punct(')') => d -= 1,
                                TokenKind::Punct(',') if d == 0 => commas += 1,
                                _ => {}
                            }
                        }
                        if commas == 0 {
                            variants.insert(v.clone(), head);
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.model.enums.push(EnumDef { name, variants });
        end + 1
    }

    /// First meaningful type identifier at `i`, skipping `&`, `mut`,
    /// lifetimes, `dyn`/`impl`, and wrapper paths like `std::sync::`.
    fn type_head(&self, mut i: usize) -> Option<String> {
        loop {
            match self.ctx.tokens.get(i).map(|t| &t.kind) {
                Some(TokenKind::Punct('&')) | Some(TokenKind::Lifetime) => i += 1,
                Some(TokenKind::Ident(s)) if s == "mut" || s == "dyn" || s == "impl" => i += 1,
                Some(TokenKind::Ident(s)) => {
                    // Skip a lowercase path prefix: `std::sync::Mutex`.
                    if self.punct(i + 1, ':') && self.punct(i + 2, ':') {
                        if s.chars().next().is_some_and(char::is_lowercase) {
                            i += 3;
                            continue;
                        }
                        // `Arc<…>`-style capitalized wrappers keep their
                        // own head; `Type::AssocType` keeps `Type`.
                        return Some(s.clone());
                    }
                    return Some(s.clone());
                }
                _ => return None,
            }
        }
    }

    /// Index of the closer matching `open` (which holds `open_c`).
    fn matching(&self, open: usize, open_c: char, close_c: char) -> usize {
        let mut depth = 0i32;
        for j in open..self.ctx.tokens.len() {
            if self.punct(j, open_c) {
                depth += 1;
            } else if self.punct(j, close_c) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        self.ctx.tokens.len().saturating_sub(1)
    }

    /// Parse one `fn` item starting at the `fn` keyword; returns the
    /// index just past the item.
    fn parse_fn(&mut self, start: usize, impl_type: Option<&str>) -> usize {
        let Some(name) = self.ctx.tokens.get(start + 1).and_then(|t| t.kind.ident()) else {
            return start + 1;
        };
        let name = name.to_owned();
        let line = self.ctx.tokens[start].line;
        let i = self.skip_generics(start + 2);
        if !self.punct(i, '(') {
            return start + 2;
        }
        let params_close = self.matching(i, '(', ')');
        // Parameter types: `ident : Type` pairs at paren depth 1.
        let mut locals: BTreeMap<String, Receiver> = BTreeMap::new();
        {
            let mut depth = 0i32;
            let mut j = i;
            while j <= params_close {
                match &self.ctx.tokens[j].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('<') | TokenKind::Punct('[') => {
                        depth += 1
                    }
                    TokenKind::Punct(')') | TokenKind::Punct('>') | TokenKind::Punct(']') => {
                        depth -= 1
                    }
                    TokenKind::Ident(p)
                        if depth == 1
                            && self.punct(j + 1, ':')
                            && !self.punct(j + 2, ':')
                            && p != "self" =>
                    {
                        if let Some(head) = self.type_head(j + 2) {
                            locals.insert(p.clone(), Receiver::Typed(head));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Return type head.
        let mut ret_head = None;
        let mut j = params_close + 1;
        if self.punct(j, '-') && self.punct(j + 1, '>') {
            ret_head = self.type_head(j + 2);
        }
        // Find the body `{` (skipping the where clause) or a `;` for a
        // bodyless trait-method declaration.
        while j < self.ctx.tokens.len() && !self.punct(j, '{') {
            if self.punct(j, ';') {
                return j + 1;
            }
            j += 1;
        }
        if j >= self.ctx.tokens.len() {
            return j;
        }
        let body_open = j;
        let body_end = *self.brace_match.get(&body_open).unwrap_or(&body_open);
        let is_test = self.ctx.in_test.get(start).copied().unwrap_or(false);

        let mut def = FnDef {
            name,
            impl_type: impl_type.map(str::to_owned),
            crate_name: self.ctx.crate_name.clone(),
            path: self.ctx.path.clone(),
            line,
            is_test,
            ret_head,
            calls: Vec::new(),
            effects: Vec::new(),
            locks: Vec::new(),
            ok_discards: Vec::new(),
        };
        self.parse_body(&mut def, body_open, body_end, impl_type, locals);
        self.model.fns.push(def);
        body_end + 1
    }

    /// Scan a function body for locals, calls, effects, and locks.
    #[allow(clippy::too_many_lines)]
    fn parse_body(
        &mut self,
        def: &mut FnDef,
        open: usize,
        end: usize,
        impl_type: Option<&str>,
        mut locals: BTreeMap<String, Receiver>,
    ) {
        let toks = &self.ctx.tokens;
        let mut k = open + 1;
        while k < end {
            let tok = &toks[k];
            let (line, col) = (tok.line, tok.col);

            // Drop guards whose scope ended.
            let active: Vec<usize> = def
                .locks
                .iter()
                .enumerate()
                .filter(|(_, l)| l.token < k && k <= l.scope_end)
                .map(|(idx, _)| idx)
                .collect();

            let TokenKind::Ident(id) = &tok.kind else {
                k += 1;
                continue;
            };
            let id = id.clone();

            // Local type bindings: `let [mut] name : Type` and
            // `let [mut] name = Type::ctor(…)`.
            if id == "let" {
                let mut p = k + 1;
                if self.id(p) == "mut" {
                    p += 1;
                }
                if let Some(TokenKind::Ident(nm)) = toks.get(p).map(|t| &t.kind) {
                    let nm = nm.clone();
                    if self.punct(p + 1, ':') && !self.punct(p + 2, ':') {
                        if let Some(head) = self.type_head(p + 2) {
                            locals.insert(nm, Receiver::Typed(head));
                        }
                    } else if self.punct(p + 1, '=') {
                        if let Some(TokenKind::Ident(t)) = toks.get(p + 2).map(|t| &t.kind) {
                            if t.chars().next().is_some_and(char::is_uppercase)
                                && self.punct(p + 3, ':')
                                && self.punct(p + 4, ':')
                            {
                                locals.insert(nm, Receiver::Typed(t.clone()));
                            }
                        }
                    }
                }
                k += 1;
                continue;
            }

            // Enum payload binding: `Enum::Variant(x)` — in a match arm,
            // tuple pattern, or `if let`. No look-ahead for `=>` is needed:
            // even in expression position, `Enum::Variant(x)` implies `x`
            // has the variant's payload type.
            if id.chars().next().is_some_and(char::is_uppercase)
                && self.punct(k + 1, ':')
                && self.punct(k + 2, ':')
            {
                if let Some(TokenKind::Ident(variant)) = toks.get(k + 3).map(|t| &t.kind) {
                    if variant.chars().next().is_some_and(char::is_uppercase)
                        && self.punct(k + 4, '(')
                    {
                        if let Some(TokenKind::Ident(bind)) = toks.get(k + 5).map(|t| &t.kind) {
                            if self.punct(k + 6, ')') && bind != "_" {
                                locals.insert(
                                    bind.clone(),
                                    Receiver::EnumPayload(id.clone(), variant.clone()),
                                );
                            }
                        }
                    }
                }
            }

            // Macro invocation: `name ! (`/`[`/`{`.
            if self.punct(k + 1, '!') {
                if ALLOC_MACROS.contains(&id.as_str()) {
                    def.effects.push(Effect {
                        kind: EffectKind::Alloc,
                        line,
                        col,
                        what: format!("{id}!"),
                    });
                } else if PANIC_MACROS.contains(&id.as_str()) {
                    def.effects.push(Effect {
                        kind: EffectKind::Panic,
                        line,
                        col,
                        what: format!("{id}!"),
                    });
                }
                k += 2;
                continue;
            }

            // Method call: `.name(`.
            if k > 0 && self.punct(k - 1, '.') && self.punct(k + 1, '(') {
                self.method_call(def, k, &id, &locals, impl_type, &active);
                k += 2;
                continue;
            }

            // Free or path-qualified call: `name(` not preceded by `.`.
            if self.punct(k + 1, '(')
                && !NOT_CALLEES.contains(&id.as_str())
                && !(k > 0 && self.punct(k - 1, '.'))
            {
                // Qualified path? Look back over `A::`.
                let mut qualifier = None;
                if k >= 3 && self.punct(k - 1, ':') && self.punct(k - 2, ':') {
                    if let Some(TokenKind::Ident(q)) = toks.get(k - 3).map(|t| &t.kind) {
                        qualifier = Some(q.clone());
                    }
                }
                match qualifier {
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                        // `Type::ctor(…)` — allocation table, or a
                        // resolvable static method call.
                        if ALLOC_PATH_CALLS
                            .iter()
                            .any(|(t, m)| *t == q && *m == id.as_str())
                        {
                            def.effects.push(Effect {
                                kind: EffectKind::Alloc,
                                line,
                                col,
                                what: format!("{q}::{id}"),
                            });
                        } else {
                            def.calls.push(CallSite {
                                callee: id.clone(),
                                recv: Receiver::Typed(q),
                                line,
                                col,
                                discarded: self.is_discarded(k),
                                holding: active.clone(),
                            });
                        }
                    }
                    _ => {
                        // Free call (module-qualified or bare). Skip
                        // capitalized names: tuple-struct / variant
                        // constructors, not calls.
                        if id.chars().next().is_some_and(char::is_lowercase) {
                            def.calls.push(CallSite {
                                callee: id.clone(),
                                recv: Receiver::Free,
                                line,
                                col,
                                discarded: self.is_discarded(k),
                                holding: active.clone(),
                            });
                        }
                    }
                }
                k += 2;
                continue;
            }

            k += 1;
        }
    }

    /// Handle one `.name(` method call inside a body.
    fn method_call(
        &mut self,
        def: &mut FnDef,
        k: usize,
        id: &str,
        locals: &BTreeMap<String, Receiver>,
        impl_type: Option<&str>,
        active: &[usize],
    ) {
        let toks = &self.ctx.tokens;
        let (line, col) = (toks[k].line, toks[k].col);

        // Receiver hint from the tokens before the `.`.
        let recv = if k >= 2 {
            match toks.get(k - 2).map(|t| &t.kind) {
                Some(TokenKind::Ident(r)) if r == "self" => match impl_type {
                    Some(t) => Receiver::Typed(t.to_owned()),
                    None => Receiver::Unknown,
                },
                Some(TokenKind::Ident(r)) => {
                    // `self.field.m(…)`?
                    if k >= 4
                        && self.punct(k - 3, '.')
                        && self.id(k - 4) == "self"
                        && impl_type.is_some()
                    {
                        Receiver::SelfField(impl_type.unwrap_or("").to_owned(), r.clone())
                    } else {
                        locals.get(r).cloned().unwrap_or_else(|| {
                            if r.chars().next().is_some_and(char::is_uppercase) {
                                Receiver::Typed(r.clone())
                            } else {
                                Receiver::Unknown
                            }
                        })
                    }
                }
                _ => Receiver::Unknown,
            }
        } else {
            Receiver::Unknown
        };

        // Effects.
        match id {
            "unwrap" | "expect" => {
                def.effects.push(Effect {
                    kind: EffectKind::Panic,
                    line,
                    col,
                    what: format!(".{id}()"),
                });
                return;
            }
            m if ALLOC_METHODS.contains(&m) => {
                def.effects.push(Effect {
                    kind: EffectKind::Alloc,
                    line,
                    col,
                    what: format!(".{id}()"),
                });
                return;
            }
            // Telemetry effects do NOT return: the call site is still
            // recorded below, so a `.record(…)` that resolves into plain
            // workspace code (not drybell-obs) lets the hot-path rule
            // trust the callee's analyzed body over the name heuristic.
            "inc" if self.punct(k + 2, ')') => {
                def.effects.push(Effect {
                    kind: EffectKind::SyncTelemetry,
                    line,
                    col,
                    what: ".inc()".to_owned(),
                });
            }
            "add" | "record"
                if !self.punct(k + 2, ')')
                    && crate::rules::telemetry::first_string_arg(self.ctx, k + 2).is_none() =>
            {
                def.effects.push(Effect {
                    kind: EffectKind::SyncTelemetry,
                    line,
                    col,
                    what: format!(".{id}(…)"),
                });
            }
            "record_duration" => {
                def.effects.push(Effect {
                    kind: EffectKind::SyncTelemetry,
                    line,
                    col,
                    what: ".record_duration(…)".to_owned(),
                });
            }
            "ok" if self.punct(k + 2, ')') && self.punct(k + 3, ';') => {
                // `x.ok();` as a whole statement drops the Err; a bound
                // (`let v = x.ok();`) or returned value does not.
                let s = self.stmt_start(k);
                if self.id(s) != "let" && self.id(s) != "return" {
                    def.ok_discards.push(OkDiscard { line, col });
                    return;
                }
            }
            "lock" | "read" | "write" if self.punct(k + 2, ')') => {
                // `read`/`write` are only lock methods with an empty
                // argument list; `lock()` likewise, but an unknown
                // receiver's bare `.lock()` is still suspicious enough
                // to record as an anonymous effect.
                let lock_like = matches!(
                    &recv,
                    Receiver::SelfField(..) | Receiver::Typed(_) | Receiver::EnumPayload(..)
                );
                if lock_like {
                    let scope_end = self.guard_scope_end(k);
                    def.locks.push(LockAcquire {
                        recv: recv.clone(),
                        method: id.to_owned(),
                        line,
                        col,
                        token: k,
                        scope_end,
                    });
                    return;
                } else if id == "lock" {
                    def.effects.push(Effect {
                        kind: EffectKind::AnonymousLock,
                        line,
                        col,
                        what: ".lock()".to_owned(),
                    });
                    return;
                }
            }
            _ => {}
        }

        def.calls.push(CallSite {
            callee: id.to_owned(),
            recv,
            line,
            col,
            discarded: self.is_discarded(k),
            holding: active.to_vec(),
        });
    }

    /// Index of the first token of the statement containing token `k`:
    /// the token after the previous `;`, `{`, or `}` at the same
    /// nesting depth.
    fn stmt_start(&self, k: usize) -> usize {
        let mut depth = 0i32;
        let mut j = k;
        while j > 0 {
            j -= 1;
            match &self.ctx.tokens[j].kind {
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth += 1,
                TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
                    if depth == 0 =>
                {
                    return j + 1;
                }
                _ => {}
            }
        }
        j
    }

    /// Whether the statement containing token `k` begins with `let _ =`.
    fn is_discarded(&self, k: usize) -> bool {
        let j = self.stmt_start(k);
        self.id(j) == "let" && self.id(j + 1) == "_" && self.punct(j + 2, '=')
    }

    /// Token index past which a guard acquired at `k` (the method name
    /// token) is dead: the enclosing block's `}` when the statement is a
    /// `let` binding, otherwise the statement's `;`.
    fn guard_scope_end(&self, k: usize) -> usize {
        let s = self.stmt_start(k);
        let stmt_is_binding = self.id(s) == "let" || self.id(s) == "if" || self.id(s) == "while";
        if stmt_is_binding {
            // Guard lives to the end of the enclosing block: the
            // matching `}` of the nearest unclosed `{` before `k`.
            let mut opens = Vec::new();
            for (i, t) in self.ctx.tokens.iter().enumerate().take(k) {
                match &t.kind {
                    TokenKind::Punct('{') => opens.push(i),
                    TokenKind::Punct('}') => {
                        opens.pop();
                    }
                    _ => {}
                }
            }
            opens
                .last()
                .and_then(|o| self.brace_match.get(o).copied())
                .unwrap_or(self.ctx.tokens.len())
        } else {
            // Temporary: dead at the end of the statement.
            let mut depth = 0i32;
            let mut j = k;
            while j < self.ctx.tokens.len() {
                match &self.ctx.tokens[j].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        depth -= 1
                    }
                    TokenKind::Punct(';') if depth <= 0 => return j,
                    _ => {}
                }
                j += 1;
            }
            self.ctx.tokens.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file_ctx;

    fn model_of(src: &str) -> FileModel {
        parse(&file_ctx("crates/drybell-core/src/x.rs", src))
    }

    #[test]
    fn fns_and_impl_types_are_recorded() {
        let m = model_of(
            "fn free() {}\n\
             impl Foo { fn method(&self) -> Result<u32, E> { self.helper() } }\n\
             impl fmt::Display for Bar { fn fmt(&self) {} }",
        );
        let ids: Vec<String> = m.fns.iter().map(|f| f.display_id()).collect();
        assert_eq!(
            ids,
            [
                "drybell-core::free",
                "drybell-core::Foo::method",
                "drybell-core::Bar::fmt"
            ]
        );
        assert_eq!(m.fns[1].ret_head.as_deref(), Some("Result"));
        assert_eq!(m.fns[1].calls.len(), 1);
        assert_eq!(m.fns[1].calls[0].callee, "helper");
        assert_eq!(m.fns[1].calls[0].recv, Receiver::Typed("Foo".into()));
    }

    #[test]
    fn struct_fields_and_enum_payloads_parse() {
        let m = model_of(
            "struct S { models: Mutex<HashMap<String, u32>>, n: usize }\n\
             enum E { A(Foo), B(u32, u32), C }",
        );
        assert_eq!(
            m.structs[0].fields.get("models").map(String::as_str),
            Some("Mutex")
        );
        assert_eq!(
            m.structs[0].fields.get("n").map(String::as_str),
            Some("usize")
        );
        assert_eq!(
            m.enums[0].variants.get("A").map(String::as_str),
            Some("Foo")
        );
        assert!(
            !m.enums[0].variants.contains_key("B"),
            "multi-field payloads are skipped"
        );
    }

    #[test]
    fn typed_locals_and_params_type_method_calls() {
        let m = model_of(
            "fn f(x: &SparseVector) {\n\
               let m: Mlp = load();\n\
               x.entries();\n\
               m.forward();\n\
             }",
        );
        let calls = &m.fns[0].calls;
        let by_name = |n: &str| calls.iter().find(|c| c.callee == n).unwrap();
        assert_eq!(
            by_name("entries").recv,
            Receiver::Typed("SparseVector".into())
        );
        assert_eq!(by_name("forward").recv, Receiver::Typed("Mlp".into()));
    }

    #[test]
    fn enum_match_arm_bindings_type_the_payload() {
        let m = model_of("fn f(e: &E) { match e { E::A(m) => m.run(), _ => {} } }");
        let call = m.fns[0].calls.iter().find(|c| c.callee == "run").unwrap();
        assert_eq!(call.recv, Receiver::EnumPayload("E".into(), "A".into()));
    }

    #[test]
    fn tuple_pattern_enum_bindings_type_the_payload() {
        // Serving's score kernel matches on a (model, input) pair; the
        // binding inside each tuple element must still get typed.
        let m =
            model_of("fn f(e: (M, I)) { match e { (M::Lr(m), I::Sp(x)) => m.run(x), _ => {} } }");
        let call = m.fns[0].calls.iter().find(|c| c.callee == "run").unwrap();
        assert_eq!(call.recv, Receiver::EnumPayload("M".into(), "Lr".into()));
    }

    #[test]
    fn effects_are_collected() {
        let m = model_of(
            "fn f(h: &Histogram) {\n\
               let v = Vec::with_capacity(4);\n\
               let s = format!(\"x{}\", 1);\n\
               let t = name.to_owned();\n\
               x.unwrap();\n\
               panic!(\"no\");\n\
               h.record_duration(d);\n\
               c.inc();\n\
             }",
        );
        let kinds: Vec<EffectKind> = m.fns[0].effects.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                EffectKind::Alloc,
                EffectKind::Alloc,
                EffectKind::Alloc,
                EffectKind::Panic,
                EffectKind::Panic,
                EffectKind::SyncTelemetry,
                EffectKind::SyncTelemetry,
            ]
        );
    }

    #[test]
    fn self_field_locks_note_scope_and_holding() {
        let m = model_of(
            "impl R {\n\
               fn f(&self) {\n\
                 let a = self.first.lock();\n\
                 self.other(a);\n\
                 let b = self.second.lock();\n\
               }\n\
             }",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(
            f.locks[0].recv,
            Receiver::SelfField("R".into(), "first".into())
        );
        let call = f.calls.iter().find(|c| c.callee == "other").unwrap();
        assert_eq!(call.holding, [0], "the call happens under the first lock");
    }

    #[test]
    fn let_underscore_discards_are_marked() {
        let m = model_of("fn f() { let _ = fallible(); used(); }");
        let calls = &m.fns[0].calls;
        assert!(
            calls
                .iter()
                .find(|c| c.callee == "fallible")
                .unwrap()
                .discarded
        );
        assert!(!calls.iter().find(|c| c.callee == "used").unwrap().discarded);
    }

    #[test]
    fn ok_discards_are_recorded() {
        let m = model_of("fn f() { fallible().ok(); let kept = g().ok(); }");
        assert_eq!(m.fns[0].ok_discards.len(), 1);
    }

    #[test]
    fn test_fns_are_marked() {
        let m = model_of("fn prod() {}\n#[cfg(test)]\nmod tests { fn t() {} }");
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
    }
}
