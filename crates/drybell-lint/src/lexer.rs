//! A minimal Rust lexer.
//!
//! The lint rules only need a faithful *token* view of a source file —
//! identifiers, punctuation, string literals with their spans, and line
//! comments (where suppressions live). Full parsing (`syn`) is
//! unavailable offline (see `vendor/README.md`), and none of the rules
//! need types or an AST: every invariant they check is visible at the
//! token level. The lexer therefore must get exactly the hard parts of
//! tokenization right — raw strings, nested block comments, char
//! literals vs. lifetimes — so that rules never match text inside a
//! string or comment.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token, with its text where rules need it.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

/// Token kinds. Only the distinctions the rules rely on are kept.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (`"…"`, `r"…"`, `b"…"`, `r#"…"#`), with escapes
    /// decoded for plain strings and content taken verbatim for raw
    /// ones.
    Str(String),
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// A single punctuation byte (`.`, `(`, `[`, `!`, …).
    Punct(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The decoded string value, if this is a string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match self {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// A `//` comment, recorded separately from the token stream so
/// suppression comments can be found by line.
#[derive(Debug, Clone, PartialEq)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the `//`, untrimmed.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments (doc comments included), in source order.
    pub comments: Vec<LineComment>,
}

/// Lex `src` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder of the file is consumed); the lint runs on
/// code that already compiles, so error recovery is best-effort.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let s = self.string_literal();
                    self.push(TokenKind::Str(s), line, col);
                }
                b'r' | b'b' if self.raw_or_byte_string_starts() => {
                    let s = self.raw_or_byte_string();
                    self.push(TokenKind::Str(s), line, col);
                }
                b'\'' => self.char_or_lifetime(line, col),
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Number, line, col);
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let id = self.ident();
                    self.push(TokenKind::Ident(id), line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(b as char), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(LineComment { line, text });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Called at `"`: consume the literal, decoding simple escapes.
    fn string_literal(&mut self) -> String {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.peek(0) {
                None | Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    match self.bump() {
                        Some(b'n') => value.push('\n'),
                        Some(b't') => value.push('\t'),
                        Some(b'r') => value.push('\r'),
                        Some(b'0') => value.push('\0'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'\'') => value.push('\''),
                        // \u{XXXX}: decode the hex payload so that rules
                        // comparing decoded values (telemetry names) see
                        // the real character, and so the `{…}` digits
                        // never leak into the value as literal text.
                        Some(b'u') => {
                            let mut code = 0u32;
                            if self.peek(0) == Some(b'{') {
                                self.bump();
                                while let Some(b) = self.peek(0) {
                                    if b == b'}' {
                                        self.bump();
                                        break;
                                    }
                                    if let Some(d) = (b as char).to_digit(16) {
                                        code = code.saturating_mul(16).saturating_add(d);
                                        self.bump();
                                    } else {
                                        break;
                                    }
                                }
                            }
                            value.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        // \xNN: two hex digits.
                        Some(b'x') => {
                            let mut code = 0u32;
                            for _ in 0..2 {
                                match self.peek(0).and_then(|b| (b as char).to_digit(16)) {
                                    Some(d) => {
                                        code = code * 16 + d;
                                        self.bump();
                                    }
                                    None => break,
                                }
                            }
                            value.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => {}
                    }
                }
                Some(b) => {
                    self.bump();
                    value.push(b as char);
                }
            }
        }
        value
    }

    /// Whether the cursor (at `r` or `b`) starts a raw/byte string and
    /// not an identifier like `rows` or `bytes`.
    fn raw_or_byte_string_starts(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some(b'b') {
            i += 1;
        }
        if self.peek(i) == Some(b'r') {
            i += 1;
            while self.peek(i) == Some(b'#') {
                i += 1;
            }
        }
        i > 0 && self.peek(i) == Some(b'"')
    }

    fn raw_or_byte_string(&mut self) -> String {
        if self.peek(0) == Some(b'b') {
            self.bump();
        }
        let raw = self.peek(0) == Some(b'r');
        if raw {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.bump();
            hashes += 1;
        }
        if !raw {
            // b"…": escapes behave like a plain string.
            return self.string_literal();
        }
        self.bump(); // opening quote
        let start = self.pos;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        let mut end = self.pos;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(&closer) {
                end = self.pos;
                for _ in 0..closer.len() {
                    self.bump();
                }
                break;
            }
            self.bump();
            end = self.pos;
        }
        String::from_utf8_lossy(&self.bytes[start..end]).into_owned()
    }

    /// Called at `'`: either a char literal (`'a'`, `'\n'`) or a
    /// lifetime (`'a`, `'static`).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // Lifetime: ' followed by ident chars NOT closed by another '.
        // Char: anything else ('x', '\n', '\u{1f600}').
        let mut i = 1;
        if matches!(self.peek(1), Some(b) if b.is_ascii_alphabetic() || b == b'_') {
            while matches!(self.peek(i), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                i += 1;
            }
            if self.peek(i) != Some(b'\'') {
                // Lifetime.
                for _ in 0..i {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, line, col);
                return;
            }
        }
        // Char literal.
        self.bump(); // '
        if self.peek(0) == Some(b'\\') {
            self.bump();
            if matches!(self.peek(0), Some(b'u')) {
                // \u{…}
                self.bump();
                while self.peek(0).is_some() && self.peek(0) != Some(b'\'') {
                    self.bump();
                }
            } else {
                self.bump();
            }
        } else {
            // Possibly multi-byte UTF-8: consume until closing quote.
            while self.peek(0).is_some() && self.peek(0) != Some(b'\'') {
                self.bump();
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
        self.push(TokenKind::Char, line, col);
    }

    fn number(&mut self) {
        // Consume digits, underscores, type suffixes, hex/bin prefixes,
        // exponents, and a fractional part — but not `..` (ranges).
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9' | b'a'..=b'd' | b'f'..=b'z' | b'A'..=b'D' | b'F'..=b'Z' | b'_' => {
                    self.bump();
                }
                b'e' | b'E' => {
                    self.bump();
                    if matches!(self.peek(0), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                b'.' if matches!(self.peek(1), Some(b'0'..=b'9')) => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.bump();
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let x = "unwrap inside a string";
            // unwrap inside a comment
            /* unwrap /* nested */ still comment */
            let r = r#"raw "quoted" unwrap"#;
            y.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "unwrap").count(), 1);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("unwrap inside a comment"));
    }

    #[test]
    fn string_values_are_decoded() {
        let lexed = lex(r#"f("obs/train/step_us"); g("a\nb");"#);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| t.kind.str_lit())
            .collect();
        assert_eq!(strs, ["obs/train/step_us", "a\nb"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("a\n  bb");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let lexed = lex("0..10");
        let puncts = lexed.tokens.iter().filter(|t| t.kind.is_punct('.')).count();
        assert_eq!(puncts, 2);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Number)
                .count(),
            2
        );
    }

    #[test]
    fn raw_identifiers_starting_with_r_and_b_are_idents() {
        assert_eq!(idents("rows bytes rebuild"), ["rows", "bytes", "rebuild"]);
    }

    /// How many `unwrap` *identifier tokens* a source lexes to — the
    /// regression signal for "rule matching misfires inside a literal".
    fn unwrap_idents(src: &str) -> usize {
        idents(src).iter().filter(|s| *s == "unwrap").count()
    }

    #[test]
    fn raw_string_edge_cases_hide_contents() {
        // Backslash before the closing quote: raw strings do not escape.
        assert_eq!(unwrap_idents(r#"let s = r"\"; x.unwrap();"#), 1);
        // A closer with too few hashes must not terminate the literal.
        assert_eq!(
            unwrap_idents("let s = r##\"a \"# unwrap b\"##; x.unwrap();"),
            1
        );
        // Byte and raw-byte strings.
        assert_eq!(unwrap_idents(r#"let b = b"unwrap"; x.unwrap();"#), 1);
        assert_eq!(
            unwrap_idents("let b = br#\"unwrap \"quote\"\"#; x.unwrap();"),
            1
        );
        // A raw identifier is not a raw string.
        assert_eq!(
            unwrap_idents("let r#struct = 1; x.unwrap(); let s = \"unwrap\";"),
            1
        );
        // A multi-line raw string must swallow comment-looking lines:
        // a suppression spoofed inside one must never parse as real.
        let lexed = lex("let s = r#\"\n// drybell-lint: allow(no-panic) — fake\n\"#;\nx.unwrap();");
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
    }

    #[test]
    fn nested_block_comment_edge_cases() {
        // Nested comment with a quote inside: the quote must not open a
        // string that swallows the rest of the file.
        assert_eq!(unwrap_idents("/* \" /* unwrap */ */ x.unwrap();"), 1);
        // `/*` inside a line comment opens nothing.
        assert_eq!(unwrap_idents("// /* \n x.unwrap(); // */ unwrap"), 1);
        // Tight nesting and doc-comment forms.
        assert_eq!(unwrap_idents("/*/**/ unwrap */ x.unwrap();"), 1);
        assert_eq!(unwrap_idents("/** unwrap doc */ x.unwrap();"), 1);
        // Unterminated comment consumes the tail instead of panicking.
        assert_eq!(unwrap_idents("/* unwrap"), 0);
    }

    #[test]
    fn char_literals_and_strings_do_not_confuse_each_other() {
        // A char literal holding a quote must not open a string.
        assert_eq!(
            unwrap_idents("let c = '\"'; x.unwrap(); let s = \"unwrap\";"),
            1
        );
        // A string holding `//` must not eat the rest of the line.
        assert_eq!(unwrap_idents("let u = \"//\"; x.unwrap(); // unwrap"), 1);
    }

    #[test]
    fn unicode_and_hex_escapes_decode_without_residue() {
        let lexed = lex(r#"f("a\u{41}b"); g("\x41\u{2014}"); h("tail");"#);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| t.kind.str_lit())
            .collect();
        assert_eq!(strs, ["aAb", "A\u{2014}", "tail"]);
    }
}
