//! Integration tests for the call-graph builder and the three
//! interprocedural rules, driven through [`drybell_lint::analyze_sources`]
//! on small fixture workspaces.
//!
//! The fixtures use the same `crates/<name>/src/…` path layout as the
//! real workspace so crate attribution, the panic-scope split, and the
//! hot-path roots all behave exactly as they do in CI.

use drybell_lint::callgraph::FnId;
use drybell_lint::config::{Baseline, LintConfig, Root};
use drybell_lint::{analyze_sources, Analysis};

fn sources(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
        .collect()
}

fn analyze(files: &[(&str, &str)], cfg: &LintConfig) -> Analysis {
    analyze_sources(&sources(files), cfg, &Baseline::default())
}

fn root(spec: &str) -> Root {
    Root {
        spec: spec.to_owned(),
        line: 1,
    }
}

/// 1-based line of the first occurrence of `needle` in `src`.
fn line_of(src: &str, needle: &str) -> u32 {
    let at = src.find(needle).expect("fixture must contain the needle");
    1 + src[..at].bytes().filter(|&b| b == b'\n').count() as u32
}

/// A three-crate fixture: cross-file calls inside `core-a`, a
/// cross-crate typed-receiver call from `core-b`, trait-method dispatch,
/// and one deliberately ambiguous call in `core-c`.
fn linked_fixture() -> Vec<(String, String)> {
    sources(&[
        (
            "crates/core-a/src/lib.rs",
            "pub struct Engine { ticks: u64 }\n\
             pub trait Runnable { fn run(&self); }\n\
             impl Runnable for Engine {\n\
                 fn run(&self) { helper(); self.step(); }\n\
             }\n\
             impl Engine {\n\
                 fn step(&self) { let t = self.ticks; let _ignored = t; }\n\
             }\n",
        ),
        (
            "crates/core-a/src/util.rs",
            "pub fn helper() { leaf(); }\n\
             fn leaf() {}\n",
        ),
        (
            "crates/core-b/src/lib.rs",
            "use core_a::Engine;\n\
             pub struct Worker;\n\
             impl Worker {\n\
                 pub fn work(&self, e: &Engine) { e.run(); }\n\
             }\n",
        ),
        (
            "crates/core-c/src/lib.rs",
            "pub struct Alpha;\n\
             pub struct Beta;\n\
             impl Alpha { pub fn poll(&self) {} }\n\
             impl Beta { pub fn poll(&self) {} }\n\
             pub fn dispatch() {\n\
                 let h = obtain();\n\
                 h.poll();\n\
             }\n",
        ),
    ])
}

fn fn_id(krate: &str, ty: &str, name: &str) -> FnId {
    FnId {
        crate_name: krate.to_owned(),
        impl_type: ty.to_owned(),
        name: name.to_owned(),
    }
}

#[test]
fn cross_file_and_cross_crate_calls_resolve() {
    let a = analyze_sources(
        &linked_fixture(),
        &LintConfig::default(),
        &Baseline::default(),
    );
    let g = &a.graph;

    // run() resolves both its free cross-file call and its self method.
    let run_edges = &g.edges[&fn_id("core-a", "Engine", "run")];
    let targets: Vec<String> = run_edges.iter().map(|e| e.to.display()).collect();
    assert_eq!(targets, ["core-a::helper", "core-a::Engine::step"]);

    // helper() chains into the same-file private fn.
    let helper_edges = &g.edges[&fn_id("core-a", "", "helper")];
    assert_eq!(helper_edges[0].to, fn_id("core-a", "", "leaf"));

    // Trait-method dispatch through a typed receiver crosses crates:
    // Worker::work's `e.run()` lands on the `impl Runnable for Engine`
    // method even though the trait declaration itself is not modeled.
    let work_edges = &g.edges[&fn_id("core-b", "Worker", "work")];
    assert_eq!(work_edges[0].to, fn_id("core-a", "Engine", "run"));
}

#[test]
fn ambiguous_methods_are_reported_not_guessed() {
    let a = analyze_sources(
        &linked_fixture(),
        &LintConfig::default(),
        &Baseline::default(),
    );
    let g = &a.graph;

    // Exactly one unresolved edge in the whole fixture: `h.poll()` with
    // an untyped receiver and two candidate impls.
    assert_eq!(g.unresolved.len(), 1);
    let u = &g.unresolved[0];
    assert_eq!(u.from, fn_id("core-c", "", "dispatch"));
    assert_eq!(u.callee, "poll");
    assert!(
        u.reason.contains("2 workspace methods"),
        "reason should explain the ambiguity: {}",
        u.reason
    );

    // And pin the resolved-edge total so a resolver regression (either
    // direction: dropped edges or bogus new ones) shows up here.
    let resolved: usize = g.edges.values().map(Vec::len).sum();
    assert_eq!(resolved, 4);
}

use proptest::prelude::*;

proptest! {
    #[test]
    fn dot_export_is_byte_identical_across_input_order(seed in any::<u64>()) {
        let mut files = linked_fixture();
        // Seed-driven Fisher–Yates: every permutation of the input file
        // order must produce the same DOT bytes.
        let mut state = seed | 1;
        for i in (1..files.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            files.swap(i, j);
        }
        let reference = analyze_sources(
            &linked_fixture(),
            &LintConfig::default(),
            &Baseline::default(),
        )
        .graph
        .to_dot();
        prop_assert!(reference.contains("core-a::Engine::run"));
        let got = analyze_sources(&files, &LintConfig::default(), &Baseline::default())
            .graph
            .to_dot();
        prop_assert_eq!(got, reference);
    }
}

/// The acceptance fixture: a Mutex acquisition introduced into a helper
/// reachable from the gradient-loop root must be flagged with the exact
/// rule id, file, and line.
#[test]
fn hot_path_flags_lock_reachable_from_gradient_root() {
    let core = "pub struct GenerativeModel { state: Mutex<u64> }\n\
                impl GenerativeModel {\n\
                    pub fn joint_scores(&self) -> f64 { self.accumulate() }\n\
                    fn accumulate(&self) -> f64 {\n\
                        let guard = self.state.lock();\n\
                        *guard as f64\n\
                    }\n\
                }\n";
    let cfg = LintConfig {
        roots: vec![root("drybell-core::GenerativeModel::joint_scores")],
        ..LintConfig::default()
    };
    let a = analyze(&[("crates/drybell-core/src/model.rs", core)], &cfg);

    assert_eq!(
        a.diagnostics.len(),
        1,
        "exactly one finding: {:?}",
        a.diagnostics
    );
    let d = &a.diagnostics[0];
    assert_eq!(d.rule, "hot-path");
    assert_eq!(d.path, "crates/drybell-core/src/model.rs");
    assert_eq!(d.line, line_of(core, ".lock()"));
    assert!(
        d.message.contains("joint_scores") && d.message.contains("accumulate"),
        "diagnostic must carry the reachability chain: {}",
        d.message
    );
}

#[test]
fn hot_path_alloc_and_panic_effects_are_flagged_with_chains() {
    let core = "pub struct GenerativeModel;\n\
                impl GenerativeModel {\n\
                    pub fn joint_scores(&self) -> f64 { middle() }\n\
                }\n\
                fn middle() -> f64 { deep() }\n\
                fn deep() -> f64 {\n\
                    let owned = name().to_owned();\n\
                    owned.parse().unwrap()\n\
                }\n";
    let cfg = LintConfig {
        roots: vec![root("drybell-core::GenerativeModel::joint_scores")],
        ..LintConfig::default()
    };
    let a = analyze(&[("crates/drybell-core/src/model.rs", core)], &cfg);

    let rules: Vec<&str> = a.diagnostics.iter().map(|d| d.rule).collect();
    // `.to_owned()` allocates; `.unwrap()` is flagged by both the
    // per-file no-panic rule (drybell-core is in the panic scope) and
    // the transitive hot-path rule.
    assert_eq!(rules, ["hot-path", "hot-path", "no-panic"]);
    let hot: Vec<&drybell_lint::Diagnostic> = a
        .diagnostics
        .iter()
        .filter(|d| d.rule == "hot-path")
        .collect();
    assert!(hot[0].message.contains("allocates"));
    assert!(hot[1].message.contains("may panic"));
    for d in &hot {
        assert!(
            d.message
                .contains("joint_scores → drybell-core::middle → drybell-core::deep"),
            "chain must walk root → middle → deep: {}",
            d.message
        );
    }
}

#[test]
fn hot_path_root_typo_is_itself_a_diagnostic() {
    let cfg = LintConfig {
        roots: vec![Root {
            spec: "drybell-core::GenerativeModel::joint_scoresX".to_owned(),
            line: 12,
        }],
        ..LintConfig::default()
    };
    let a = analyze(
        &[(
            "crates/drybell-core/src/model.rs",
            "pub struct GenerativeModel;\n\
             impl GenerativeModel { pub fn joint_scores(&self) -> f64 { 0.0 } }\n",
        )],
        &cfg,
    );
    assert_eq!(a.diagnostics.len(), 1);
    assert_eq!(a.diagnostics[0].rule, "hot-path");
    assert_eq!(a.diagnostics[0].path, "lint.toml");
    assert_eq!(a.diagnostics[0].line, 12);
    assert!(a.diagnostics[0].message.contains("joint_scoresX"));
}

#[test]
fn graph_rules_honor_justified_suppressions() {
    let core = "pub struct GenerativeModel { state: Mutex<u64> }\n\
                impl GenerativeModel {\n\
                    pub fn joint_scores(&self) -> f64 {\n\
                        // drybell-lint: allow(hot-path) — fixture proves graph rules honor justified suppressions\n\
                        let guard = self.state.lock();\n\
                        *guard as f64\n\
                    }\n\
                }\n";
    let cfg = LintConfig {
        roots: vec![root("drybell-core::GenerativeModel::joint_scores")],
        ..LintConfig::default()
    };
    let a = analyze(&[("crates/drybell-core/src/model.rs", core)], &cfg);
    assert!(a.diagnostics.is_empty(), "suppressed: {:?}", a.diagnostics);

    // The same suppression without a justification is rejected AND the
    // finding it tried to hide still reports.
    let bare = core.replace(
        " — fixture proves graph rules honor justified suppressions",
        "",
    );
    let a = analyze(&[("crates/drybell-core/src/model.rs", bare.as_str())], &cfg);
    let rules: Vec<&str> = a.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["bad-suppression", "hot-path"]);
}

#[test]
fn lock_order_cycle_is_flagged_once() {
    let src = "pub struct Pair { left: Mutex<u64>, right: Mutex<u64> }\n\
               impl Pair {\n\
                   pub fn fwd(&self) -> u64 {\n\
                       let a = self.left.lock();\n\
                       let b = self.right.lock();\n\
                       *a + *b\n\
                   }\n\
                   pub fn rev(&self) -> u64 {\n\
                       let b = self.right.lock();\n\
                       let a = self.left.lock();\n\
                       *a + *b\n\
                   }\n\
               }\n";
    let a = analyze(
        &[("crates/drybell-core/src/pair.rs", src)],
        &LintConfig::default(),
    );
    let locks: Vec<&drybell_lint::Diagnostic> = a
        .diagnostics
        .iter()
        .filter(|d| d.rule == "lock-order")
        .collect();
    assert_eq!(
        locks.len(),
        1,
        "one cycle, one diagnostic: {:?}",
        a.diagnostics
    );
    assert!(locks[0].message.contains("Pair.left") && locks[0].message.contains("Pair.right"));

    // Consistent ordering in both functions: no cycle, no finding.
    let consistent = src.replace(
        "let b = self.right.lock();\n\
                       let a = self.left.lock();",
        "let a = self.left.lock();\n\
                       let b = self.right.lock();",
    );
    let a = analyze(
        &[("crates/drybell-core/src/pair.rs", consistent.as_str())],
        &LintConfig::default(),
    );
    assert!(
        !a.diagnostics.iter().any(|d| d.rule == "lock-order"),
        "{:?}",
        a.diagnostics
    );
}

/// Error-discipline findings ratchet against the checked-in baseline:
/// at the accepted count the run is clean, above it every finding in
/// the file reports, and below it the stale baseline itself reports.
#[test]
fn error_discipline_baseline_ratchets_both_directions() {
    let path = "crates/drybell-tools/src/lib.rs";
    let src = "pub fn fallible() -> Result<u64, String> { Ok(1) }\n\
               pub fn caller() {\n\
                   let _ = fallible();\n\
                   fallible().ok();\n\
               }\n";

    // No baseline: both discards report.
    let a = analyze(&[(path, src)], &LintConfig::default());
    let rules: Vec<&str> = a.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["error-discipline", "error-discipline"]);
    assert_eq!(
        a.observed_counts[&("error-discipline".to_owned(), path.to_owned())],
        2
    );

    // Baseline at the observed count: clean.
    let baseline = Baseline::from_counts(&a.observed_counts);
    let clean = analyze_sources(&sources(&[(path, src)]), &LintConfig::default(), &baseline);
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);

    // Debt paid down without regenerating: the stale baseline reports.
    let one_fixed = src.replace("let _ = fallible();\n", "");
    let stale = analyze_sources(
        &sources(&[(path, one_fixed.as_str())]),
        &LintConfig::default(),
        &baseline,
    );
    let rules: Vec<&str> = stale.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["stale-baseline"]);
    assert_eq!(stale.diagnostics[0].path, path);
    assert!(stale.diagnostics[0].message.contains("--update-baseline"));
}

#[test]
fn unwraps_outside_panic_scope_are_error_discipline() {
    // drybell-tools is not in the no-panic scope, so the per-file rule
    // stays quiet — the graph rule owns unwrap discipline out here.
    let path = "crates/drybell-tools/src/lib.rs";
    let src = "pub fn read_it() -> u64 {\n\
                   std::env::var(\"X\").unwrap().parse().unwrap()\n\
               }\n";
    let a = analyze(&[(path, src)], &LintConfig::default());
    let rules: Vec<&str> = a.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["error-discipline", "error-discipline"]);

    // The same source inside the panic scope double-reports under
    // no-panic instead (no error-discipline duplicate).
    let a = analyze(
        &[("crates/drybell-core/src/x.rs", src)],
        &LintConfig::default(),
    );
    let rules: Vec<&str> = a.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["no-panic", "no-panic"]);
}

#[test]
fn sarif_export_carries_rules_and_locations() {
    let core = "pub struct GenerativeModel { state: Mutex<u64> }\n\
                impl GenerativeModel {\n\
                    pub fn joint_scores(&self) -> f64 {\n\
                        let guard = self.state.lock();\n\
                        *guard as f64\n\
                    }\n\
                }\n";
    let cfg = LintConfig {
        roots: vec![root("drybell-core::GenerativeModel::joint_scores")],
        ..LintConfig::default()
    };
    let a = analyze(&[("crates/drybell-core/src/model.rs", core)], &cfg);
    let sarif = drybell_lint::sarif::to_sarif(&a.diagnostics);
    let doc = drybell_obs::parse_json(&sarif).expect("SARIF output must be valid JSON");

    assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let runs = doc.get("runs").expect("runs");
    let run = runs.at(0).expect("one run");
    let results = run.get("results").expect("results");
    assert_eq!(results.items().len(), a.diagnostics.len());
    let first = results.at(0).expect("first result");
    assert_eq!(
        first.get("ruleId").and_then(|v| v.as_str()),
        Some("hot-path")
    );
    let region = first
        .get("locations")
        .and_then(|l| l.at(0))
        .and_then(|l| l.get("physicalLocation"))
        .expect("physicalLocation");
    assert_eq!(
        region
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|v| v.as_str()),
        Some("crates/drybell-core/src/model.rs")
    );
    assert_eq!(
        region
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(|v| v.as_i64()),
        Some(i64::from(line_of(core, ".lock()")))
    );
    // Every reported ruleId must exist in the tool's rule table, with
    // ruleIndex agreeing (GitHub code scanning requires the pairing).
    let rules_arr = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .expect("driver rules");
    let idx = first
        .get("ruleIndex")
        .and_then(|v| v.as_i64())
        .expect("ruleIndex") as usize;
    assert_eq!(
        rules_arr
            .at(idx)
            .and_then(|r| r.get("id"))
            .and_then(|v| v.as_str()),
        Some("hot-path")
    );
}
