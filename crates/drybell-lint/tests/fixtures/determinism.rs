//! Fixture: nondeterminism sources the `determinism` rule catches.
//! Linted as if it were drybell-dataflow source.

use std::collections::{HashMap, HashSet};

fn unseeded_rng() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

fn wall_clock() -> bool {
    SystemTime::now().elapsed().is_ok()
}

fn unordered_iteration(tallies: &mut Vec<String>) {
    let counts: HashMap<String, u64> = HashMap::new();
    for (k, _v) in counts.iter() {
        tallies.push(k.clone());
    }
    let ids: HashSet<u64> = HashSet::new();
    for id in &ids {
        tallies.push(id.to_string());
    }
}

fn ordered_is_fine(tallies: &mut Vec<String>) {
    let ordered: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (k, _v) in ordered.iter() {
        tallies.push(k.clone());
    }
}
