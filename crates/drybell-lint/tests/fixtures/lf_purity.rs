//! Fixture: impure labeling-function closures.
//! Linted as if it were drybell-datagen source.

fn lfs() -> Vec<Lf<Doc>> {
    vec![
        // Pure: a function of the example alone.
        Lf::plain(meta("kw_clean"), |d: &Doc| keyword_vote(&d.text)),
        // Impure: console I/O inside the vote function.
        Lf::plain(meta("kw_chatty"), |d: &Doc| {
            println!("voting on {}", d.id);
            keyword_vote(&d.text)
        }),
        // Impure: wall-clock read inside an NLP vote function.
        Lf::nlp(meta("ner_flaky"), |_d: &Doc, nlp: &NlpResult| {
            let _deadline = SystemTime::now();
            ner_vote(nlp)
        }),
        // Impure: filesystem side-channel in a graph vote function.
        Lf::graph(meta("kg_leaky"), |d: &Doc, kg: &KnowledgeGraph| {
            let _side = std::fs::read_to_string("extra_votes.txt");
            kg_vote(d, kg)
        }),
    ]
}
