//! Fixture: every way production code can panic that `no-panic` and
//! `no-panic-index` catch. Linted as if it were drybell-core source.

fn unwraps(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("always ok");
    a + b
}

fn macros(flag: bool) {
    if flag {
        panic!("boom");
    }
    unreachable!();
}

fn stubs() {
    todo!()
}

fn indexing(v: &[u32], m: &std::collections::BTreeMap<u32, u32>) -> u32 {
    let first = v[0];
    let slice = &v[1..3];
    first + slice[0] + m[&7]
}

fn fine(v: &[u32]) -> u32 {
    // .get() is the panic-free spelling the rule asks for.
    v.get(0).copied().unwrap_or(0)
}
