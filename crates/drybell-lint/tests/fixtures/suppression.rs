//! Fixture: the suppression grammar — honored when justified, rejected
//! when blanket. Linted as if it were drybell-serving source.

fn justified(v: &[u32]) -> u32 {
    // drybell-lint: allow(no-panic-index) — index is bounds-checked by the caller's contract
    v[0]
}

fn blanket(v: &[u32]) -> u32 {
    // drybell-lint: allow(no-panic-index)
    v[1]
}

fn unknown_rule(v: &[u32]) -> u32 {
    // drybell-lint: allow(no-such-rule) — this rule id does not exist anywhere
    v[2]
}

fn unsuppressed(v: &[u32]) -> u32 {
    v[3]
}
