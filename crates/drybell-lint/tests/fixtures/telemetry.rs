//! Fixture: telemetry names off the drybell-obs registry.
//! Linted as if it were drybell-lf source.

fn instruments(m: &MetricsRegistry, t: &Telemetry, c: &mut CounterHandle) {
    // Registered names: all fine.
    m.counter("nlp_calls").inc();
    m.counter(&format!("votes/{}", "kw_spam")).inc();
    m.histogram("obs/serving/score_us").record(12);
    t.span("run/fit");
    c.inc("nlp_cache/hits");

    // Off-registry names: one diagnostic each.
    m.counter("nlp_callz").inc();
    m.gauge("cache_size").set(3);
    m.histogram("serving_score_ms").record(12);
    t.span("mystery/phase");
    t.emit(Event::new("vibes"));
    c.inc(&format!("tallies/{}", "kw_spam"));
}
