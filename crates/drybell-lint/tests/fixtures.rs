//! Fixture tests: lint known-bad sources and assert the exact rule ids
//! and lines, then assert the workspace itself lints clean (making the
//! lint a tier-1 gate alongside `cargo test`).

use drybell_lint::{lint_source, Diagnostic};

fn lint_fixture(as_path: &str, name: &str) -> Vec<(String, u32)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src =
        std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    lint_source(as_path, &src)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

#[test]
fn no_panic_fixture_finds_every_panic_site() {
    let got = lint_fixture("crates/drybell-core/src/fixture.rs", "no_panic.rs");
    let want = [
        ("no-panic", 5),  // .unwrap()
        ("no-panic", 6),  // .expect(...)
        ("no-panic", 12), // panic!
        ("no-panic", 14), // unreachable!
        ("no-panic", 18), // todo!
        ("no-panic-index", 22),
        ("no-panic-index", 23),
        ("no-panic-index", 24), // slice[0]
        ("no-panic-index", 24), // m[&7]
    ];
    let want: Vec<(String, u32)> = want.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(got, want);
}

#[test]
fn determinism_fixture_flags_rng_clock_and_unordered_maps() {
    let got = lint_fixture("crates/drybell-dataflow/src/fixture.rs", "determinism.rs");
    let want = [
        ("determinism", 7),  // thread_rng
        ("determinism", 12), // SystemTime
        ("determinism", 17), // counts.iter()
        ("determinism", 21), // for id in &ids
    ];
    let want: Vec<(String, u32)> = want.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(got, want);
}

#[test]
fn telemetry_fixture_flags_only_off_registry_names() {
    let got = lint_fixture("crates/drybell-lf/src/fixture.rs", "telemetry.rs");
    let want = [
        ("telemetry-conventions", 13),
        ("telemetry-conventions", 14),
        ("telemetry-conventions", 15),
        ("telemetry-conventions", 16),
        ("telemetry-conventions", 17),
        ("telemetry-conventions", 18),
    ];
    let want: Vec<(String, u32)> = want.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(got, want);
}

#[test]
fn lf_purity_fixture_flags_each_impure_closure() {
    let got = lint_fixture("crates/drybell-datagen/src/fixture.rs", "lf_purity.rs");
    let want = [
        ("lf-purity", 10),   // println! in a plain LF
        ("determinism", 15), // SystemTime is also a workspace-wide determinism finding
        ("lf-purity", 15),   // ...and impure inside an NLP LF
        ("lf-purity", 20),   // read_to_string in a graph LF
    ];
    let want: Vec<(String, u32)> = want.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(got, want);
}

#[test]
fn suppression_fixture_honors_justified_and_rejects_blanket() {
    let got = lint_fixture("crates/drybell-serving/src/fixture.rs", "suppression.rs");
    let want = [
        ("bad-suppression", 10), // allow(...) with no justification
        ("no-panic-index", 11),  // ...so the finding still fires
        ("bad-suppression", 15), // allow(no-such-rule)
        ("no-panic-index", 16),  // ...so the finding still fires
        ("no-panic-index", 20),  // plain unsuppressed site
    ];
    let want: Vec<(String, u32)> = want.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(got, want);
}

#[test]
fn fixtures_report_full_diagnostic_format() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join("no_panic.rs")).unwrap();
    let diags: Vec<Diagnostic> = lint_source("crates/drybell-core/src/fixture.rs", &src);
    let first = diags.first().expect("fixture has findings");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/drybell-core/src/fixture.rs:5:"),
        "{rendered}"
    );
    assert!(rendered.contains("no-panic"), "{rendered}");
}

/// The whole point of the pass: the workspace itself has zero
/// diagnostics. Every suppression in tree carries a justification or
/// this test fails via `bad-suppression`.
#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diags = drybell_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
