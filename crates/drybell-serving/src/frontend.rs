//! The high-throughput serving front-end: bounded admission,
//! micro-batched scoring, epoch-pointer hot swap, latency budgets.
//!
//! The paper's discriminative models serve production traffic behind
//! TFX; this module is the request path in front of the
//! [`ServingRegistry`](crate::ServingRegistry):
//!
//! ```text
//! submit ──▶ admission (bounded, reject-on-overflow)
//!               │
//!               ▼
//!          micro-batcher (size- or deadline-triggered)
//!               │  refresh pinned epoch   ◀── promote republishes
//!               ▼
//!          score batch (amortized weights) ── budget exceeded ──▶ default score
//!               │                                                   (degraded)
//!               ▼
//!          fulfil response slots
//! ```
//!
//! * **Admission** is a bounded counter beside an unbounded channel: a
//!   full queue rejects with the typed [`ServingError::QueueFull`]
//!   instead of queueing unbounded work (load shedding, counted in
//!   `serving/rejected`).
//! * **Micro-batching** drains the queue into batches of up to
//!   [`FrontendConfig::max_batch`] requests, waiting at most
//!   [`FrontendConfig::batch_wait`] for stragglers, then scores the
//!   whole batch through one [`crate::BatchSession`] so FTRL weight
//!   materialization is amortized across the batch.
//! * **Hot swap**: workers score against a [`crate::PinnedSpec`]
//!   refreshed from the registry's [`crate::EpochCell`] at batch
//!   boundaries — zero locks on the scoring path, one atomic load per
//!   batch in steady state. Every response reports the one publication
//!   epoch it was scored under; the protocol is proven race-free by the
//!   `hot_swap` model in `drybell-modelcheck`.
//! * **Latency budgets**: a request whose
//!   [`FrontendConfig::request_budget`] expired before scoring returns
//!   the declared [`FrontendConfig::default_score`] immediately
//!   (`degraded: true`, counted in `serving/degraded`) instead of
//!   burning batch time on an answer the caller has given up on.

use crate::slo::{SloConfig, SloTracker, WindowStats};
use crate::{batch_session, BatchScratch, EpochCell, ScoreInput, ServingError, ServingRegistry};
use drybell_features::SparseVector;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Maximum requests admitted but not yet scored; submissions beyond
    /// this are rejected with [`ServingError::QueueFull`].
    pub queue_depth: usize,
    /// Maximum requests scored in one batch.
    pub max_batch: usize,
    /// How long a worker waits for stragglers before scoring a partial
    /// batch.
    pub batch_wait: Duration,
    /// Per-request latency budget, measured from admission to scoring;
    /// an expired request degrades to [`FrontendConfig::default_score`].
    pub request_budget: Duration,
    /// The score returned for budget-degraded requests.
    pub default_score: f64,
    /// Batcher worker threads. `0` is valid (admission-only; requests
    /// queue until [`Frontend::shutdown`] answers them with
    /// [`ServingError::Shutdown`]) and is used by admission tests.
    pub workers: usize,
    /// SLO budgets to judge the request stream against. `None` (the
    /// default) disables tracking; `Some` requires telemetry
    /// ([`Frontend::for_model_with_telemetry`]) for the gauges and
    /// breach events to land anywhere.
    pub slo: Option<SloConfig>,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            queue_depth: 1024,
            max_batch: 64,
            batch_wait: Duration::from_micros(200),
            request_budget: Duration::from_millis(20),
            default_score: 0.5,
            workers: 2,
            slo: None,
        }
    }
}

/// An owned scoring input, movable across the admission queue (the
/// borrowed [`ScoreInput`] cannot outlive the caller's stack frame).
#[derive(Debug, Clone)]
pub enum OwnedInput {
    /// Hashed sparse features (logistic regression).
    Sparse(SparseVector),
    /// Dense feature vector (MLP).
    Dense(Vec<f64>),
}

impl OwnedInput {
    fn as_score_input(&self) -> ScoreInput<'_> {
        match self {
            OwnedInput::Sparse(x) => ScoreInput::Sparse(x),
            OwnedInput::Dense(x) => ScoreInput::Dense(x),
        }
    }
}

/// One scored response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// The model's probability — or [`FrontendConfig::default_score`]
    /// when degraded.
    pub score: f64,
    /// The publication epoch of the model snapshot that produced this
    /// response. Every response comes from exactly one epoch, never a
    /// torn mix.
    pub epoch: u64,
    /// The model version serving at that epoch.
    pub version: u32,
    /// `true` when the latency budget expired and the default score was
    /// returned without running the model.
    pub degraded: bool,
}

/// One-shot response slot: the worker fulfils it, the submitter waits
/// on it. Built on `std::sync` because the vendored `parking_lot` has
/// no `Condvar`; poisoning is absorbed (the payload is a plain enum, a
/// panicking peer cannot leave it half-written).
#[derive(Debug, Default)]
struct ResponseSlot {
    state: std::sync::Mutex<Option<Result<Scored, ServingError>>>,
    ready: std::sync::Condvar,
}

impl ResponseSlot {
    fn fulfil(&self, result: Result<Scored, ServingError>) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *state = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Scored, ServingError> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn try_take(&self) -> Option<Result<Scored, ServingError>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// A submitted-but-unanswered request (returned by
/// [`Frontend::submit`]). Dropping it abandons the response; the worker
/// still scores and fulfils the slot, which open-loop load generators
/// rely on.
#[derive(Debug)]
pub struct Pending {
    slot: Arc<ResponseSlot>,
}

impl Pending {
    /// Block until the response arrives.
    pub fn wait(self) -> Result<Scored, ServingError> {
        self.slot.wait()
    }

    /// Take the response if it already arrived (non-blocking).
    pub fn try_wait(&self) -> Option<Result<Scored, ServingError>> {
        self.slot.try_take()
    }
}

/// One admitted request travelling the queue.
struct Request {
    input: OwnedInput,
    enqueued: Instant,
    deadline: Instant,
    slot: Arc<ResponseSlot>,
}

/// Pre-interned front-end instruments (names in
/// `drybell_obs::naming::REGISTRY`), built once so the request path
/// never touches the `MetricsRegistry` lock. Worker-side instruments
/// are [`drybell_obs::ShardLayout`] slots: the scoring loop writes
/// plain cells in a per-worker [`drybell_obs::LocalShard`] and folds
/// them into the shared registry once per batch
/// ([`drybell_obs::LocalShard::flush_into`]), so steady-state scoring
/// pays no atomic or histogram lock per request. Flushed counters are
/// therefore visible only after the batch that produced them.
struct FrontendInstruments {
    /// Flush target for the per-worker shards.
    telemetry: drybell_obs::Telemetry,
    /// Slot layout shared by every worker's `LocalShard`.
    layout: Arc<drybell_obs::ShardLayout>,
    /// `serving/rejected` — admissions refused at a full queue;
    /// incremented synchronously on the caller's `submit` path (the
    /// rejection path is off the scoring loop).
    rejected: Arc<drybell_obs::Counter>,
    /// `serving/degraded` — budget-expired requests answered with the
    /// default score.
    degraded: drybell_obs::CounterSlot,
    /// `serving/queue_depth` — queue depth sampled after each drain.
    queue_depth: drybell_obs::GaugeSlot,
    /// `serving/batch_size` — size of the most recent batch.
    batch_size: drybell_obs::GaugeSlot,
    /// `obs/serving/batch_us` — wall time per batch (gather + score).
    batch_us: drybell_obs::HistogramSlot,
    /// `obs/serving/request_us` — end-to-end admission-to-fulfil
    /// latency per request (the p50/p99/p999 source).
    request_us: drybell_obs::HistogramSlot,
    /// SLO judge, present when [`FrontendConfig::slo`] is set.
    slo: Option<SloInstruments>,
}

/// One window's pre-interned `slo/{window}/*` gauges.
struct SloGauges {
    p99_us: Arc<drybell_obs::Gauge>,
    error_ppm: Arc<drybell_obs::Gauge>,
    p99_burn_ppm: Arc<drybell_obs::Gauge>,
    error_burn_ppm: Arc<drybell_obs::Gauge>,
}

impl SloGauges {
    fn interned(metrics: &drybell_obs::MetricsRegistry, window: &str) -> SloGauges {
        SloGauges {
            p99_us: metrics.gauge(&format!("slo/{window}/p99_us")),
            error_ppm: metrics.gauge(&format!("slo/{window}/error_ppm")),
            p99_burn_ppm: metrics.gauge(&format!("slo/{window}/p99_burn_ppm")),
            error_burn_ppm: metrics.gauge(&format!("slo/{window}/error_burn_ppm")),
        }
    }

    fn publish(&self, stats: &WindowStats) {
        self.p99_us.set(stats.p99_us as i64);
        self.error_ppm.set(stats.error_ppm as i64);
        self.p99_burn_ppm.set(stats.p99_burn_ppm as i64);
        self.error_burn_ppm.set(stats.error_burn_ppm as i64);
    }
}

/// SLO tracking shared by all workers: the tracker is locked **once
/// per batch** (never per request) to fold that batch's latency/error
/// pairs, refresh the burn gauges, and catch the breach edge.
struct SloInstruments {
    tracker: parking_lot::Mutex<SloTracker>,
    fast: SloGauges,
    slow: SloGauges,
}

impl SloInstruments {
    fn interned(metrics: &drybell_obs::MetricsRegistry, cfg: SloConfig) -> SloInstruments {
        SloInstruments {
            tracker: parking_lot::Mutex::new(SloTracker::new(cfg)),
            fast: SloGauges::interned(metrics, "fast"),
            slow: SloGauges::interned(metrics, "slow"),
        }
    }

    /// Fold one batch of `(latency_us, error)` samples. On a breach
    /// edge, journal an `slo_breach` event and dump the flight
    /// recorder — the event is teed into the ring first, so the dump's
    /// last ring line *is* the breach.
    fn observe_batch(&self, samples: &[(u64, bool)], telemetry: &drybell_obs::Telemetry) {
        let mut breaches = Vec::new();
        {
            let mut tracker = self.tracker.lock();
            for &(latency_us, error) in samples {
                breaches.extend(tracker.observe(latency_us, error));
            }
            self.fast.publish(&tracker.fast());
            self.slow.publish(&tracker.slow());
        }
        for b in breaches {
            telemetry.emit(
                drybell_obs::Event::new("slo_breach")
                    .field("signal", b.signal)
                    .field("fast/p99_us", b.fast.p99_us)
                    .field("fast/error_ppm", b.fast.error_ppm)
                    .field("fast/p99_burn_ppm", b.fast.p99_burn_ppm)
                    .field("fast/error_burn_ppm", b.fast.error_burn_ppm)
                    .field("slow/p99_us", b.slow.p99_us)
                    .field("slow/error_ppm", b.slow.error_ppm)
                    .field("slow/p99_burn_ppm", b.slow.p99_burn_ppm)
                    .field("slow/error_burn_ppm", b.slow.error_burn_ppm),
            );
            telemetry.dump_flight("slo_breach");
        }
    }
}

/// State shared between the front-end handle and its workers.
struct Shared {
    cell: Arc<EpochCell>,
    cfg: FrontendConfig,
    /// Admitted-but-unscored request count — the bounded part of the
    /// admission design (the channel itself is unbounded).
    depth: AtomicUsize,
    instruments: Option<FrontendInstruments>,
}

/// The serving front-end: admission, batching, hot swap, budgets.
///
/// Construct with [`Frontend::for_model`] to share the registry's
/// publication cell, so [`ServingRegistry::promote`] hot-swaps the
/// model under live traffic with zero scoring-path locks.
pub struct Frontend {
    shared: Arc<Shared>,
    tx: parking_lot::Mutex<Option<crossbeam::channel::Sender<Request>>>,
    rx: crossbeam::channel::Receiver<Request>,
    workers: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Frontend {
    /// A front-end scoring the live version published in `cell`.
    pub fn new(cell: Arc<EpochCell>, cfg: FrontendConfig) -> Frontend {
        Frontend::build(cell, cfg, None)
    }

    /// A front-end for the serving version of `name`, subscribed to the
    /// registry's publication cell: later `promote` calls hot-swap this
    /// front-end live.
    pub fn for_model(
        registry: &ServingRegistry,
        name: &str,
        cfg: FrontendConfig,
    ) -> Result<Frontend, ServingError> {
        Ok(Frontend::new(registry.epoch_cell(name)?, cfg))
    }

    /// [`Frontend::for_model`] plus telemetry: queue/batch gauges,
    /// rejected/degraded counters, and batch/request latency
    /// histograms, all pre-interned.
    pub fn for_model_with_telemetry(
        registry: &ServingRegistry,
        name: &str,
        cfg: FrontendConfig,
        telemetry: &drybell_obs::Telemetry,
    ) -> Result<Frontend, ServingError> {
        let metrics = telemetry.metrics();
        let mut layout = drybell_obs::ShardLayout::new();
        let degraded = layout.slot_counter(metrics.counter("serving/degraded"));
        let queue_depth = layout.slot_gauge(metrics.gauge("serving/queue_depth"));
        let batch_size = layout.slot_gauge(metrics.gauge("serving/batch_size"));
        let batch_us = layout.slot_histogram(metrics.histogram("obs/serving/batch_us"));
        let request_us = layout.slot_histogram(metrics.histogram("obs/serving/request_us"));
        let slo = cfg
            .slo
            .clone()
            .map(|slo_cfg| SloInstruments::interned(metrics, slo_cfg));
        let instruments = FrontendInstruments {
            telemetry: telemetry.clone(),
            layout: Arc::new(layout),
            rejected: metrics.counter("serving/rejected"),
            degraded,
            queue_depth,
            batch_size,
            batch_us,
            request_us,
            slo,
        };
        Ok(Frontend::build(
            registry.epoch_cell(name)?,
            cfg,
            Some(instruments),
        ))
    }

    fn build(
        cell: Arc<EpochCell>,
        cfg: FrontendConfig,
        instruments: Option<FrontendInstruments>,
    ) -> Frontend {
        let (tx, rx) = crossbeam::channel::unbounded::<Request>();
        let shared = Arc::new(Shared {
            cell,
            cfg,
            depth: AtomicUsize::new(0),
            instruments,
        });
        let mut handles = Vec::new();
        for _ in 0..shared.cfg.workers {
            let shared = Arc::clone(&shared);
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }
        Frontend {
            shared,
            tx: parking_lot::Mutex::new(Some(tx)),
            rx,
            workers: parking_lot::Mutex::new(handles),
        }
    }

    /// Admit one request without waiting for its response (open loop).
    ///
    /// Returns [`ServingError::QueueFull`] when
    /// [`FrontendConfig::queue_depth`] requests are already waiting, and
    /// [`ServingError::Shutdown`] after [`Frontend::shutdown`].
    pub fn submit(&self, input: OwnedInput) -> Result<Pending, ServingError> {
        let mut cur = self.shared.depth.load(Ordering::Acquire);
        let admitted = loop {
            if cur >= self.shared.cfg.queue_depth {
                break false;
            }
            match self.shared.depth.compare_exchange(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break true,
                Err(actual) => cur = actual,
            }
        };
        if !admitted {
            if let Some(i) = &self.shared.instruments {
                i.rejected.inc();
            }
            return Err(ServingError::QueueFull {
                depth: self.shared.cfg.queue_depth,
            });
        }
        let now = Instant::now();
        let slot = Arc::new(ResponseSlot::default());
        let request = Request {
            input,
            enqueued: now,
            deadline: now + self.shared.cfg.request_budget,
            slot: Arc::clone(&slot),
        };
        let sent = match self.tx.lock().as_ref() {
            Some(tx) => tx.send(request).is_ok(),
            None => false,
        };
        if !sent {
            self.shared.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(ServingError::Shutdown);
        }
        Ok(Pending { slot })
    }

    /// Admit one request and block for its response (closed loop).
    pub fn score(&self, input: OwnedInput) -> Result<Scored, ServingError> {
        self.submit(input)?.wait()
    }

    /// The current publication epoch the workers score under.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Admitted-but-unscored request count.
    pub fn queue_len(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }

    /// Stop admitting, let workers drain the queue, join them, and
    /// answer anything still queued (the `workers: 0` case) with
    /// [`ServingError::Shutdown`]. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        *self.tx.lock() = None;
        let handles: Vec<std::thread::JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for h in handles {
            // drybell-lint: allow(error-discipline) — a panicked worker has no recovery path here; its queued requests are answered by the drain below
            let _ = h.join();
        }
        while let Some(req) = self.rx.try_recv() {
            self.shared.depth.fetch_sub(1, Ordering::AcqRel);
            req.slot.fulfil(Err(ServingError::Shutdown));
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The batcher body: block for the first request, gather stragglers
/// until the batch fills or [`FrontendConfig::batch_wait`] passes,
/// refresh the epoch pin, then score the whole batch through one
/// [`crate::BatchSession`].
fn worker_loop(shared: &Shared, rx: &crossbeam::channel::Receiver<Request>) {
    let mut scratch = BatchScratch::default();
    let mut pinned = shared.cell.pin();
    let mut batch: Vec<Request> = Vec::with_capacity(shared.cfg.max_batch.max(1));
    let mut shard = shared.instruments.as_ref().map(|i| i.layout.shard());
    // Per-batch (latency, error) staging for the SLO judge: plain
    // pushes into a reused buffer on the request path, one tracker
    // lock per batch.
    let mut slo_samples: Vec<(u64, bool)> = Vec::with_capacity(shared.cfg.max_batch.max(1));
    while let Ok(first) = rx.recv() {
        let batch_started = Instant::now();
        let gather_deadline = batch_started + shared.cfg.batch_wait;
        batch.push(first);
        while batch.len() < shared.cfg.max_batch {
            match rx.try_recv() {
                Some(req) => batch.push(req),
                None => {
                    if Instant::now() >= gather_deadline {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        shared.depth.fetch_sub(batch.len(), Ordering::AcqRel);
        // Batch boundary: one atomic load in steady state; the slot
        // lock is touched only when a promote actually landed.
        pinned.refresh(&shared.cell);
        let spec = Arc::clone(pinned.spec());
        let epoch = pinned.epoch();
        if let (Some(i), Some(shard)) = (&shared.instruments, shard.as_mut()) {
            shard.level(i.queue_depth, shared.depth.load(Ordering::Acquire) as i64);
            shard.level(i.batch_size, batch.len() as i64);
        }
        let mut session = batch_session(&spec, &mut scratch);
        let scoring_started = Instant::now();
        let track_slo = shared.instruments.as_ref().is_some_and(|i| i.slo.is_some());
        for req in batch.drain(..) {
            let result = if scoring_started >= req.deadline {
                if let (Some(i), Some(shard)) = (&shared.instruments, shard.as_mut()) {
                    shard.bump(i.degraded);
                }
                Ok(Scored {
                    score: shared.cfg.default_score,
                    epoch,
                    version: spec.version,
                    degraded: true,
                })
            } else {
                session
                    .score(&req.input.as_score_input())
                    .map(|score| Scored {
                        score,
                        epoch,
                        version: spec.version,
                        degraded: false,
                    })
            };
            // A degraded answer is an SLO error: the caller got the
            // default score, not the model's.
            let error = matches!(&result, Ok(s) if s.degraded) || result.is_err();
            req.slot.fulfil(result);
            if let (Some(i), Some(shard)) = (&shared.instruments, shard.as_mut()) {
                let latency = req.enqueued.elapsed();
                shard.observe_duration(i.request_us, latency);
                if track_slo {
                    slo_samples.push((latency.as_micros() as u64, error));
                }
            }
        }
        // Batch boundary: one amortized fold of the worker's local
        // telemetry into the shared registry, and one SLO-tracker lock
        // for the whole batch.
        if let (Some(i), Some(shard)) = (&shared.instruments, shard.as_mut()) {
            shard.observe_duration(i.batch_us, batch_started.elapsed());
            shard.flush_into(&i.telemetry);
            if let Some(slo) = &i.slo {
                slo.observe_batch(&slo_samples, &i.telemetry);
            }
            slo_samples.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{score_spec, ExportedModel, ModelSpec, ServingRegistry};
    use drybell_features::{FeatureHasher, FeatureSpace, SpaceRegistry};
    use drybell_ml::{FtrlConfig, LogisticRegression, MlpScratch};
    use proptest::prelude::*;
    use std::sync::Barrier;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    /// A registry with `n` identical logreg versions of model `"m"`,
    /// version 1 promoted. With the publication cell created at
    /// promote-1 time, epoch k always serves version k — which is what
    /// lets the tests check torn epoch/version pairings directly.
    fn registry_with_versions(
        n: u32,
    ) -> Result<(ServingRegistry, FeatureHasher), Box<dyn std::error::Error>> {
        let mut spaces = SpaceRegistry::new();
        let hashed = spaces
            .register(FeatureSpace::servable("hashed", 10))
            .ok_or("space taken")?;
        let registry = ServingRegistry::new(spaces, 1_000);
        let h = FeatureHasher::new(1 << 10);
        let data = vec![
            (h.bag_of_words(&["yes"]), 1.0),
            (h.bag_of_words(&["nothing"]), 0.0),
        ];
        let mut m = LogisticRegression::new(1 << 10, FtrlConfig::default());
        m.fit(&data)?;
        for version in 1..=n {
            registry.stage(ModelSpec {
                name: "m".into(),
                version,
                feature_spaces: vec![hashed],
                model: ExportedModel::LogReg(m.clone()),
            })?;
        }
        registry.promote("m", 1)?;
        Ok((registry, h))
    }

    #[test]
    fn queue_overflow_rejects_with_typed_error_under_contention() -> TestResult {
        let (registry, h) = registry_with_versions(1)?;
        let telemetry = drybell_obs::Telemetry::new();
        // No workers: nothing drains, so admissions 5..8 must lose the
        // CAS race and get the typed rejection, not queue unbounded.
        let cfg = FrontendConfig {
            queue_depth: 4,
            workers: 0,
            ..FrontendConfig::default()
        };
        let frontend = Frontend::for_model_with_telemetry(&registry, "m", cfg, &telemetry)?;
        let barrier = Barrier::new(8);
        let (admitted, rejected) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let frontend = &frontend;
                    let barrier = &barrier;
                    let x = h.bag_of_words(&["yes"]);
                    scope.spawn(move || {
                        barrier.wait();
                        frontend.submit(OwnedInput::Sparse(x))
                    })
                })
                .collect();
            let mut admitted = Vec::new();
            let mut rejected = 0_u32;
            for handle in handles {
                match handle.join().unwrap() {
                    Ok(pending) => admitted.push(pending),
                    Err(ServingError::QueueFull { depth }) => {
                        assert_eq!(depth, 4);
                        rejected += 1;
                    }
                    Err(other) => panic!("unexpected admission error: {other}"),
                }
            }
            (admitted, rejected)
        });
        assert_eq!(admitted.len(), 4, "exactly queue_depth admissions win");
        assert_eq!(rejected, 4);
        assert_eq!(frontend.queue_len(), 4);
        assert_eq!(telemetry.metrics().counter("serving/rejected").get(), 4);
        // Shutdown answers everything still queued with the typed error.
        frontend.shutdown();
        for pending in admitted {
            assert!(matches!(pending.wait(), Err(ServingError::Shutdown)));
        }
        assert_eq!(frontend.queue_len(), 0);
        assert!(matches!(
            frontend.submit(OwnedInput::Sparse(h.bag_of_words(&["yes"]))),
            Err(ServingError::Shutdown)
        ));
        Ok(())
    }

    #[test]
    fn budget_expired_requests_degrade_to_the_default_score() -> TestResult {
        let (registry, h) = registry_with_versions(1)?;
        let telemetry = drybell_obs::Telemetry::new();
        let cfg = FrontendConfig {
            request_budget: Duration::ZERO,
            default_score: 0.25,
            workers: 1,
            ..FrontendConfig::default()
        };
        let frontend = Frontend::for_model_with_telemetry(&registry, "m", cfg, &telemetry)?;
        for _ in 0..5 {
            let scored = frontend.score(OwnedInput::Sparse(h.bag_of_words(&["yes"])))?;
            assert!(scored.degraded);
            assert_eq!(scored.score, 0.25);
            assert_eq!(scored.epoch, 1);
            assert_eq!(scored.version, 1);
        }
        // Worker shards flush at batch boundaries, after responses are
        // fulfilled: join the workers before reading the counters.
        frontend.shutdown();
        assert_eq!(telemetry.metrics().counter("serving/degraded").get(), 5);
        let snap = telemetry.metrics().snapshot();
        assert_eq!(
            snap.histogram("obs/serving/request_us")
                .ok_or("missing request histogram")?
                .count(),
            5
        );
        Ok(())
    }

    #[test]
    fn slo_breach_publishes_gauges_journals_and_dumps_flight() -> TestResult {
        let (registry, h) = registry_with_versions(1)?;
        let dir = std::env::temp_dir().join(format!("frontend-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        let telemetry = drybell_obs::Telemetry::with_journal(journal)
            .with_flight(drybell_obs::FlightRecorder::with_capacity(&dir, 64));
        // Zero budget: every request degrades, so the error burn rate
        // is 1000× the 1000-ppm budget as soon as the windows warm.
        let cfg = FrontendConfig {
            request_budget: Duration::ZERO,
            workers: 1,
            slo: Some(crate::SloConfig {
                fast_window: 4,
                slow_window: 8,
                ..crate::SloConfig::default()
            }),
            ..FrontendConfig::default()
        };
        let frontend = Frontend::for_model_with_telemetry(&registry, "m", cfg, &telemetry)?;
        for _ in 0..16 {
            let scored = frontend.score(OwnedInput::Sparse(h.bag_of_words(&["yes"])))?;
            assert!(scored.degraded);
        }
        frontend.shutdown();
        // Burn gauges are live on the shared registry.
        let snap = telemetry.metrics().snapshot();
        assert!(
            snap.gauge("slo/fast/error_burn_ppm") > 1_000_000,
            "fast error burn must exceed the budget"
        );
        assert!(snap.gauge("slo/slow/error_burn_ppm") > 1_000_000);
        assert_eq!(snap.gauge("slo/fast/error_ppm"), 1_000_000);
        // Exactly one edge-triggered breach event, plus its dump record.
        let events = buffer.parsed_lines()?;
        let kinds: Vec<_> = events
            .iter()
            .filter_map(|e| e.get("kind").and_then(|k| k.as_str()))
            .collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == "slo_breach").count(),
            1,
            "breach must be edge-triggered: {kinds:?}"
        );
        assert!(kinds.contains(&"flight_dump"));
        let breach = events
            .iter()
            .find(|e| e.get("kind").and_then(|k| k.as_str()) == Some("slo_breach"))
            .ok_or("missing breach event")?;
        assert_eq!(
            breach.get("signal").and_then(|s| s.as_str()),
            Some("error_ppm")
        );
        // The dump's last ring line is the breach itself.
        let dumps: Vec<_> = std::fs::read_dir(&dir)?
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(dumps.len(), 1);
        let text = std::fs::read_to_string(&dumps[0])?;
        let last = text.lines().last().ok_or("empty dump")?;
        let last = drybell_obs::parse_json(last)?;
        assert_eq!(
            last.get("kind").and_then(|k| k.as_str()),
            Some("slo_breach")
        );
        assert!(text.starts_with("{\"kind\":\"flight_header\""));
        assert!(text.contains("\"reason\":\"slo_breach\""));
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn frontend_scoring_is_bit_identical_to_direct_scoring() -> TestResult {
        let (registry, h) = registry_with_versions(1)?;
        let frontend = Frontend::for_model(&registry, "m", FrontendConfig::default())?;
        let spec = registry.resolve_serving("m")?;
        let mut scratch = MlpScratch::default();
        for token in ["yes", "nothing", "maybe", "filler"] {
            let x = h.bag_of_words(&[token]);
            let direct = score_spec(&spec, &ScoreInput::Sparse(&x), &mut scratch)?;
            let served = frontend.score(OwnedInput::Sparse(x))?;
            assert!(!served.degraded);
            assert_eq!(
                direct.to_bits(),
                served.score.to_bits(),
                "batched front-end path must reproduce direct scoring exactly"
            );
        }
        Ok(())
    }

    #[test]
    fn promote_hot_swaps_the_frontend_live() -> TestResult {
        let (registry, h) = registry_with_versions(2)?;
        let frontend = Frontend::for_model(&registry, "m", FrontendConfig::default())?;
        let scored = frontend.score(OwnedInput::Sparse(h.bag_of_words(&["yes"])))?;
        assert_eq!((scored.epoch, scored.version), (1, 1));
        registry.promote("m", 2)?;
        assert_eq!(frontend.epoch(), 2, "promote republishes before returning");
        // The publish happens-before the next batch's epoch refresh, so
        // a request admitted after promote returns scores v2.
        let scored = frontend.score(OwnedInput::Sparse(h.bag_of_words(&["yes"])))?;
        assert_eq!((scored.epoch, scored.version), (2, 2));
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Scorers hammer the front-end while the main thread promotes
        /// versions 2..=4. Every response must be attributable to
        /// exactly one published (epoch, version) pairing — with this
        /// registry's construction, epoch k serves version k — never a
        /// torn mix of an old epoch with a new slot (the race the
        /// `hot_swap` model in drybell-modelcheck proves impossible).
        #[test]
        fn prop_every_response_comes_from_one_published_epoch(
            max_batch in 1_usize..8,
            per_thread in 10_usize..40,
            scorers in 2_usize..4,
        ) {
            let (registry, h) = registry_with_versions(4).unwrap();
            let cfg = FrontendConfig {
                max_batch,
                batch_wait: Duration::from_micros(50),
                workers: 2,
                ..FrontendConfig::default()
            };
            let frontend = Frontend::for_model(&registry, "m", cfg).unwrap();
            let responses = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..scorers)
                    .map(|_| {
                        let frontend = &frontend;
                        let x = h.bag_of_words(&["yes"]);
                        scope.spawn(move || {
                            (0..per_thread)
                                .map(|_| frontend.score(OwnedInput::Sparse(x.clone())).unwrap())
                                .collect::<Vec<Scored>>()
                        })
                    })
                    .collect();
                for version in 2..=4 {
                    std::thread::sleep(Duration::from_micros(200));
                    registry.promote("m", version).unwrap();
                }
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().unwrap())
                    .collect::<Vec<Scored>>()
            });
            prop_assert_eq!(responses.len(), scorers * per_thread);
            for s in &responses {
                prop_assert!(
                    (1..=4).contains(&s.version),
                    "unknown version {}", s.version
                );
                // A torn pairing would make epoch != version here.
                prop_assert_eq!(s.epoch, u64::from(s.version));
            }
        }
    }
}
