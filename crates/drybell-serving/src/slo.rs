//! SLO burn-rate tracking for the serving front-end.
//!
//! §5.3's production framing implies a latency/error contract for the
//! served classifier. This module keeps two rolling request windows — a
//! *fast* window that reacts within ~1k requests and a *slow* window
//! (~10k) that remembers enough history to ignore blips — and judges
//! both against the budgets in `doctor.toml [slo]`. A breach fires only
//! when **both** windows burn over the threshold (the standard
//! multi-window burn-rate rule: the fast window proves the problem is
//! current, the slow one proves it is sustained), and it is
//! edge-triggered: one `slo_breach` event per excursion, not one per
//! request while the excursion lasts.
//!
//! Everything here is plain memory writes on preallocated rings — no
//! locks, no allocation, no clock reads — so [`SloTracker::observe`]
//! is safe to call from the front-end's batch loop.

/// Budgets the tracker judges windows against. Built by the harness
/// from `doctor.toml [slo]` — this crate stays doctor-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// p99 latency ceiling in microseconds.
    pub p99_budget_us: u64,
    /// Error-rate ceiling in parts per million.
    pub error_budget_ppm: u64,
    /// Burn multiple both windows must exceed to breach (1.0 = burning
    /// exactly the budget).
    pub burn_threshold: f64,
    /// Fast (reactive) window size in requests.
    pub fast_window: usize,
    /// Slow (sustained) window size in requests.
    pub slow_window: usize,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            p99_budget_us: 20_000,
            error_budget_ppm: 1_000,
            burn_threshold: 1.0,
            fast_window: 1_000,
            slow_window: 10_000,
        }
    }
}

/// One rolling window: a ring of per-request log-bucket indices plus an
/// error flag, with incremental bucket counts so p99 is a 65-step walk
/// rather than a sort.
#[derive(Debug, Clone)]
struct Window {
    /// Per-request records: `bucket | ERROR_BIT`.
    ring: Vec<u8>,
    /// Next slot to overwrite.
    head: usize,
    /// Live records (≤ ring.len()).
    len: usize,
    /// Count per latency bucket (bit width of the microsecond value,
    /// mirroring `drybell_obs::Histogram`'s bucketing).
    buckets: [u32; BUCKETS],
    errors: u64,
}

const BUCKETS: usize = 65;
const ERROR_BIT: u8 = 0x80;
const BUCKET_MASK: u8 = 0x7f;

/// Bucket index for a latency: the bit width of the value, so bucket
/// `b` covers `[2^(b-1), 2^b)` microseconds.
fn bucket_of(latency_us: u64) -> u8 {
    (u64::BITS - latency_us.leading_zeros()) as u8
}

/// Upper edge of a bucket — the conservative p99 read-out.
fn bucket_edge(bucket: u8) -> u64 {
    if bucket == 0 {
        0
    } else {
        (1u64 << bucket) - 1
    }
}

impl Window {
    fn new(size: usize) -> Window {
        Window {
            ring: vec![0; size.max(1)],
            head: 0,
            len: 0,
            buckets: [0; BUCKETS],
            errors: 0,
        }
    }

    fn push(&mut self, latency_us: u64, error: bool) {
        if self.len == self.ring.len() {
            let evicted = self.ring.get(self.head).copied().unwrap_or(0);
            if let Some(count) = self.buckets.get_mut((evicted & BUCKET_MASK) as usize) {
                *count -= 1;
            }
            if evicted & ERROR_BIT != 0 {
                self.errors -= 1;
            }
        } else {
            self.len += 1;
        }
        // `bucket_of` is at most 64 and BUCKETS is 65, so both lookups
        // always land; `get_mut` keeps the worker panic-free anyway.
        let bucket = bucket_of(latency_us);
        if let Some(slot) = self.ring.get_mut(self.head) {
            *slot = bucket | if error { ERROR_BIT } else { 0 };
        }
        if let Some(count) = self.buckets.get_mut(bucket as usize) {
            *count += 1;
        }
        if error {
            self.errors += 1;
        }
        self.head = (self.head + 1) % self.ring.len();
    }

    fn p99_us(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        // The rank such that ≥99% of requests are at or under it.
        let rank = (self.len as u64 * 99).div_ceil(100);
        let mut seen = 0u64;
        for (b, &count) in self.buckets.iter().enumerate() {
            seen += count as u64;
            if seen >= rank {
                return bucket_edge(b as u8);
            }
        }
        bucket_edge((BUCKETS - 1) as u8)
    }

    fn error_ppm(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.errors * 1_000_000 / self.len as u64
        }
    }

    /// Warm enough to judge: a near-empty window's p99 is one request's
    /// latency, and gating on that would page on the first cold start.
    fn warm(&self) -> bool {
        self.len * 10 >= self.ring.len()
    }
}

/// Read-out of one window's gauges, in the units the metric names
/// promise (`slo/{window}/p99_us` etc.).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Requests currently in the window.
    pub requests: u64,
    /// p99 latency (upper bucket edge) in microseconds.
    pub p99_us: u64,
    /// Error rate in parts per million.
    pub error_ppm: u64,
    /// p99 burn rate in ppm of budget (1_000_000 = at budget).
    pub p99_burn_ppm: u64,
    /// Error burn rate in ppm of budget.
    pub error_burn_ppm: u64,
}

/// An edge-triggered breach: both windows burning over threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBreach {
    /// Which budget burned: `"p99_us"` or `"error_ppm"`.
    pub signal: &'static str,
    /// Fast-window state at the breach.
    pub fast: WindowStats,
    /// Slow-window state at the breach.
    pub slow: WindowStats,
}

/// Rolling multi-window SLO judge. Not thread-safe by design — the
/// front-end owns one behind its own synchronization and feeds it whole
/// batches.
#[derive(Debug, Clone)]
pub struct SloTracker {
    cfg: SloConfig,
    fast: Window,
    slow: Window,
    /// Inside an excursion: set at the breach edge, cleared when both
    /// signals drop back under threshold.
    burning: bool,
}

impl SloTracker {
    /// A tracker with the given budgets.
    pub fn new(cfg: SloConfig) -> SloTracker {
        let fast = Window::new(cfg.fast_window);
        let slow = Window::new(cfg.slow_window);
        SloTracker {
            cfg,
            fast,
            slow,
            burning: false,
        }
    }

    /// Fold one request into both windows. Returns a breach exactly
    /// once per excursion, at its leading edge.
    pub fn observe(&mut self, latency_us: u64, error: bool) -> Option<SloBreach> {
        self.fast.push(latency_us, error);
        self.slow.push(latency_us, error);
        if !(self.fast.warm() && self.slow.warm()) {
            return None;
        }
        let fast = self.stats_of(&self.fast);
        let slow = self.stats_of(&self.slow);
        let over = |ppm: u64| ppm as f64 > self.cfg.burn_threshold * 1e6;
        let signal = if over(fast.p99_burn_ppm) && over(slow.p99_burn_ppm) {
            Some("p99_us")
        } else if over(fast.error_burn_ppm) && over(slow.error_burn_ppm) {
            Some("error_ppm")
        } else {
            None
        };
        match signal {
            Some(signal) if !self.burning => {
                self.burning = true;
                Some(SloBreach { signal, fast, slow })
            }
            Some(_) => None,
            None => {
                self.burning = false;
                None
            }
        }
    }

    fn stats_of(&self, w: &Window) -> WindowStats {
        let p99_us = w.p99_us();
        let error_ppm = w.error_ppm();
        WindowStats {
            requests: w.len as u64,
            p99_us,
            error_ppm,
            p99_burn_ppm: p99_us * 1_000_000 / self.cfg.p99_budget_us.max(1),
            error_burn_ppm: error_ppm * 1_000_000 / self.cfg.error_budget_ppm.max(1),
        }
    }

    /// Current fast-window gauges.
    pub fn fast(&self) -> WindowStats {
        self.stats_of(&self.fast)
    }

    /// Current slow-window gauges.
    pub fn slow(&self) -> WindowStats {
        self.stats_of(&self.slow)
    }

    /// Whether the tracker is inside an excursion.
    pub fn burning(&self) -> bool {
        self.burning
    }

    /// The budgets this tracker judges against.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(p99_budget_us: u64, error_budget_ppm: u64) -> SloTracker {
        SloTracker::new(SloConfig {
            p99_budget_us,
            error_budget_ppm,
            burn_threshold: 1.0,
            fast_window: 10,
            slow_window: 40,
        })
    }

    #[test]
    fn healthy_traffic_never_breaches() {
        let mut t = tiny(1_000, 1_000);
        for _ in 0..200 {
            assert_eq!(t.observe(100, false), None);
        }
        assert!(!t.burning());
        let fast = t.fast();
        assert!(fast.p99_us < 1_000, "p99 {}", fast.p99_us);
        assert_eq!(fast.error_ppm, 0);
        assert!(fast.p99_burn_ppm < 1_000_000);
    }

    #[test]
    fn latency_breach_is_edge_triggered_and_rearms() {
        let mut t = tiny(1_000, 1_000);
        for _ in 0..40 {
            t.observe(100, false);
        }
        // Sustained slowness: every request far over budget.
        let mut breaches = Vec::new();
        for _ in 0..80 {
            breaches.extend(t.observe(50_000, false));
        }
        assert_eq!(breaches.len(), 1, "one excursion, one breach");
        let b = &breaches[0];
        assert_eq!(b.signal, "p99_us");
        assert!(b.fast.p99_burn_ppm > 1_000_000);
        assert!(b.slow.p99_burn_ppm > 1_000_000);
        assert!(t.burning());
        // Recovery drains both windows, clearing the excursion...
        for _ in 0..80 {
            assert_eq!(t.observe(100, false), None);
        }
        assert!(!t.burning());
        // ...so the next excursion fires a fresh breach.
        let again: Vec<_> = (0..80).filter_map(|_| t.observe(50_000, false)).collect();
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn brief_blip_does_not_breach_the_slow_window() {
        let mut t = SloTracker::new(SloConfig {
            p99_budget_us: 1_000,
            error_budget_ppm: 1_000,
            burn_threshold: 1.0,
            fast_window: 10,
            slow_window: 2_000,
        });
        for _ in 0..2_000 {
            t.observe(100, false);
        }
        // A blip under 1% of the slow window: the fast window fills
        // with slow requests and burns, but the slow one still
        // remembers ~99.5% healthy traffic, so its p99 holds.
        let breaches: Vec<_> = (0..12).filter_map(|_| t.observe(50_000, false)).collect();
        assert!(t.fast().p99_burn_ppm > 1_000_000, "fast window must burn");
        assert!(t.slow().p99_burn_ppm <= 1_000_000, "slow window holds");
        assert!(breaches.is_empty(), "slow window must veto the blip");
    }

    #[test]
    fn error_rate_breaches_on_its_own_budget() {
        // 1% error budget.
        let mut t = tiny(1_000_000, 10_000);
        for _ in 0..40 {
            t.observe(100, false);
        }
        // 50% errors, fast: latency stays fine, error burn fires.
        let breaches: Vec<_> = (0..80)
            .enumerate()
            .filter_map(|(i, _)| t.observe(100, i % 2 == 0))
            .collect();
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].signal, "error_ppm");
        // The edge fires on the first over-budget request: one error in
        // the 10-deep fast window is exactly 10% error mass.
        assert!(breaches[0].fast.error_ppm >= 100_000);
    }

    #[test]
    fn cold_windows_withhold_judgement() {
        let mut t = tiny(1, 1);
        // Far over budget, but the slow window (40) is under 10% full.
        for _ in 0..3 {
            assert_eq!(t.observe(1_000_000, true), None);
        }
    }

    #[test]
    fn p99_tracks_the_tail_not_the_median() {
        let mut t = SloTracker::new(SloConfig {
            fast_window: 100,
            slow_window: 400,
            ..SloConfig::default()
        });
        // 2% of requests are slow; p99 must see them even though a
        // median (or p95) read would be ~100µs.
        for i in 0..400 {
            t.observe(if i % 50 == 0 { 60_000 } else { 100 }, false);
        }
        assert!(t.fast().p99_us >= 60_000, "p99 {}", t.fast().p99_us);
        assert!(t.slow().p99_us >= 60_000, "p99 {}", t.slow().p99_us);
        assert_eq!(t.slow().error_ppm, 0);
    }
}
