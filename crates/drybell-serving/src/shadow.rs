//! Shadow evaluation: comparing a staged model against the serving one.
//!
//! §7 closes with the observation that teams will manage "large networks
//! of classifiers" whose training data shifts under them. Before
//! promoting a retrained DryBell model, production practice is to run it
//! in *shadow*: score live traffic with both the serving version and the
//! staged candidate, record how often and how much they disagree, and
//! only promote when the disagreement profile looks like an intentional
//! improvement rather than a regression. This module implements that
//! accounting on top of [`crate::ServingRegistry`].

use crate::{score_spec, ModelSpec, ScoreInput, ServingError, ServingRegistry};
use drybell_ml::MlpScratch;
use std::sync::Arc;

/// Number of uniform buckets in a [`ScoreHistogram`].
pub const SCORE_BUCKETS: usize = 10;

/// A fixed-bucket histogram of classifier scores: [`SCORE_BUCKETS`]
/// uniform buckets over `[0, 1]` (scores outside are clamped).
///
/// Unlike `drybell_obs::Histogram` — log-bucketed microseconds — this
/// tracks a bounded probability, so uniform buckets are the right shape
/// for distribution comparisons (a population-stability index across
/// runs, Figure 6-style score-mass plots).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreHistogram {
    buckets: [u64; SCORE_BUCKETS],
    /// Non-finite scores (NaN) seen. These are counted *outside* the
    /// buckets: silently binning NaN into bucket 0 used to poison the
    /// `score_dist/*` distributions drybell-doctor runs PSI over,
    /// making a broken model read as a score-mass shift toward 0.
    invalid: u64,
}

impl ScoreHistogram {
    /// Record one score. NaN is counted as invalid, not binned.
    pub fn record(&mut self, score: f64) {
        if score.is_nan() {
            self.invalid += 1;
            return;
        }
        let clamped = score.clamp(0.0, 1.0);
        let i = ((clamped * SCORE_BUCKETS as f64) as usize).min(SCORE_BUCKETS - 1);
        if let Some(b) = self.buckets.get_mut(i) {
            *b += 1;
        }
    }

    /// Per-bucket counts, lowest score bucket first.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Total *valid* scores recorded (excludes [`ScoreHistogram::invalid`]).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// NaN scores seen — a model emitting these is broken and must be
    /// flagged by the doctor, not absorbed into the distribution.
    pub fn invalid(&self) -> u64 {
        self.invalid
    }

    /// The counts as a JSON array.
    pub fn to_json(&self) -> drybell_obs::Json {
        drybell_obs::Json::Arr(
            self.buckets
                .iter()
                .map(|&n| drybell_obs::Json::from(n))
                .collect(),
        )
    }
}

/// Accumulated comparison between the serving model and a staged
/// candidate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShadowReport {
    /// Examples scored by both versions.
    pub examples: u64,
    /// Examples where the thresholded (0.5) decisions differ.
    pub decision_flips: u64,
    /// Examples the candidate newly marks positive.
    pub new_positives: u64,
    /// Examples the candidate newly marks negative.
    pub new_negatives: u64,
    /// Sum of |candidate − serving| score gaps.
    sum_abs_gap: f64,
    /// Largest single score gap seen.
    pub max_abs_gap: f64,
    /// Distribution of the serving model's scores.
    pub serving_dist: ScoreHistogram,
    /// Distribution of the candidate's scores.
    pub candidate_dist: ScoreHistogram,
}

impl ShadowReport {
    /// Fraction of examples whose decision flips.
    pub fn flip_rate(&self) -> f64 {
        if self.examples == 0 {
            0.0
        } else {
            self.decision_flips as f64 / self.examples as f64
        }
    }

    /// Mean absolute score gap.
    pub fn mean_abs_gap(&self) -> f64 {
        if self.examples == 0 {
            0.0
        } else {
            self.sum_abs_gap / self.examples as f64
        }
    }

    /// A conservative promotion gate: enough traffic observed and the
    /// decision-flip rate under `max_flip_rate`.
    pub fn recommend_promotion(&self, min_examples: u64, max_flip_rate: f64) -> bool {
        self.examples >= min_examples && self.flip_rate() <= max_flip_rate
    }

    /// Fold one (serving, candidate) score pair into the report. Plain
    /// memory writes on owned buckets — safe inside the shadow hot loop.
    pub fn record_pair(&mut self, serving: f64, candidate: f64) {
        self.examples += 1;
        self.serving_dist.record(serving);
        self.candidate_dist.record(candidate);
        // A NaN on either side is counted by the histograms' invalid
        // counters; folding it into the gap sums would turn the whole
        // report's mean_abs_gap into NaN.
        let gap = (candidate - serving).abs();
        if !gap.is_nan() {
            self.sum_abs_gap += gap;
            self.max_abs_gap = self.max_abs_gap.max(gap);
        }
        let s_pos = serving >= 0.5;
        let c_pos = candidate >= 0.5;
        if s_pos != c_pos {
            self.decision_flips += 1;
            if c_pos {
                self.new_positives += 1;
            } else {
                self.new_negatives += 1;
            }
        }
    }

    /// Render the report as a JSON object (the `--json` mode of the
    /// shadow tooling).
    pub fn to_json(&self) -> drybell_obs::Json {
        use drybell_obs::Json;
        Json::obj(vec![
            ("examples", Json::from(self.examples)),
            ("decision_flips", Json::from(self.decision_flips)),
            ("flip_rate", Json::from(self.flip_rate())),
            ("new_positives", Json::from(self.new_positives)),
            ("new_negatives", Json::from(self.new_negatives)),
            ("mean_abs_gap", Json::from(self.mean_abs_gap())),
            ("max_abs_gap", Json::from(self.max_abs_gap)),
            ("score_dist/serving", self.serving_dist.to_json()),
            ("score_dist/candidate", self.candidate_dist.to_json()),
            ("invalid/serving", Json::from(self.serving_dist.invalid())),
            (
                "invalid/candidate",
                Json::from(self.candidate_dist.invalid()),
            ),
        ])
    }

    /// The report as a `shadow` journal event. This is the per-window
    /// record `drybell_doctor::StreamMonitor` folds score PSI from.
    pub fn to_event(&self) -> drybell_obs::Event {
        drybell_obs::Event::new("shadow")
            .field("examples", self.examples)
            .field("decision_flips", self.decision_flips)
            .field("flip_rate", self.flip_rate())
            .field("new_positives", self.new_positives)
            .field("new_negatives", self.new_negatives)
            .field("mean_abs_gap", self.mean_abs_gap())
            .field("max_abs_gap", self.max_abs_gap)
            .field("score_dist/serving", self.serving_dist.to_json())
            .field("score_dist/candidate", self.candidate_dist.to_json())
            .field("invalid/serving", self.serving_dist.invalid())
            .field("invalid/candidate", self.candidate_dist.invalid())
    }

    /// Emit one `shadow` event carrying the full report to a run journal.
    pub fn emit_to(&self, journal: &drybell_obs::RunJournal) {
        journal.emit(self.to_event());
    }
}

/// Runs a staged candidate in shadow against the serving version.
///
/// Both specs are resolved into `Arc` snapshots at construction, so the
/// shadow loop itself never touches the registry lock: a promotion or
/// staging on the registry after `new` is not observed by this evaluator
/// (take a fresh one to pick it up). Per-example latency samples buffer
/// in a local histogram (plain memory writes, no shared atomics inside
/// the shadow loop) and drain into the registry's
/// `obs/serving/shadow_score_us` histogram when the evaluator drops.
pub struct ShadowEval {
    serving: Arc<ModelSpec>,
    candidate: Arc<ModelSpec>,
    scratch: MlpScratch,
    report: ShadowReport,
    latency: drybell_obs::LocalHistogram,
    latency_sink: Option<std::sync::Arc<drybell_obs::Histogram>>,
}

impl ShadowEval {
    /// Start shadowing `candidate_version` of `model`. The model must
    /// have a serving version (the incumbent) and the candidate must be
    /// registered.
    pub fn new(
        registry: &ServingRegistry,
        model: &str,
        candidate_version: u32,
    ) -> Result<ShadowEval, ServingError> {
        let serving = registry.resolve_serving(model).map_err(|_| {
            ServingError::UnknownModel(format!("{model} (no serving incumbent to shadow against)"))
        })?;
        let candidate = registry.resolve_version(model, candidate_version)?;
        Ok(ShadowEval {
            serving,
            candidate,
            scratch: MlpScratch::default(),
            report: ShadowReport::default(),
            latency: drybell_obs::LocalHistogram::new(),
            latency_sink: registry.shadow_latency_sink(),
        })
    }

    /// Score one example with both versions, returning the *serving*
    /// model's score (shadow mode must not change production behaviour)
    /// while recording the comparison.
    pub fn observe(&mut self, input: ScoreInput<'_>) -> Result<f64, ServingError> {
        let started = self
            .latency_sink
            .as_ref()
            .map(|_| std::time::Instant::now());
        let serving = score_spec(&self.serving, &input, &mut self.scratch)?;
        let candidate = score_spec(&self.candidate, &input, &mut self.scratch)?;
        if let Some(s) = started {
            self.latency.observe_duration(s.elapsed());
        }
        self.report.record_pair(serving, candidate);
        Ok(serving)
    }

    /// The accumulated report.
    pub fn report(&self) -> &ShadowReport {
        &self.report
    }

    /// Drain the accumulated report, resetting the accumulator. Used by
    /// [`WindowedShadow`] to close score-histogram windows.
    pub fn take_report(&mut self) -> ShadowReport {
        std::mem::take(&mut self.report)
    }
}

impl Drop for ShadowEval {
    fn drop(&mut self) {
        if let Some(sink) = &self.latency_sink {
            self.latency.drain_into(sink);
        }
    }
}

/// A [`ShadowEval`] that closes a fresh [`ShadowReport`] every `window`
/// examples instead of accumulating one run-long report.
///
/// Windowed reports are what make shadow evaluation *streaming*: each
/// closed window carries its own score histograms, so an in-stream
/// monitor can run a per-window PSI verdict and catch a candidate whose
/// score mass shifts mid-stream — invisible in a cumulative histogram
/// that averages the shift away. The caller decides where closed windows
/// go (journal via [`ShadowReport::emit_to`], monitor via
/// [`ShadowReport::to_event`]); this type only does the accounting.
pub struct WindowedShadow {
    eval: ShadowEval,
    window: u64,
    windows_closed: u64,
}

impl WindowedShadow {
    /// Wrap `eval`, closing a window every `window` examples (min 1).
    pub fn new(eval: ShadowEval, window: u64) -> WindowedShadow {
        WindowedShadow {
            eval,
            window: window.max(1),
            windows_closed: 0,
        }
    }

    /// Score one example with both versions. Returns the serving score
    /// and, when this example completes a window, the closed report.
    pub fn observe(
        &mut self,
        input: ScoreInput<'_>,
    ) -> Result<(f64, Option<ShadowReport>), ServingError> {
        let score = self.eval.observe(input)?;
        let closed = if self.eval.report().examples >= self.window {
            self.windows_closed += 1;
            Some(self.eval.take_report())
        } else {
            None
        };
        Ok((score, closed))
    }

    /// Close the current partial window, if it has any examples.
    pub fn flush(&mut self) -> Option<ShadowReport> {
        if self.eval.report().examples == 0 {
            return None;
        }
        self.windows_closed += 1;
        Some(self.eval.take_report())
    }

    /// Windows closed so far (including a final [`WindowedShadow::flush`]).
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// The in-progress (not yet closed) window's report.
    pub fn current(&self) -> &ShadowReport {
        self.eval.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExportedModel, ModelSpec, ServingRegistry};
    use drybell_features::{FeatureHasher, FeatureSpace, SpaceRegistry};
    use drybell_ml::{FtrlConfig, LogisticRegression};

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn registry_with_two_versions(
    ) -> Result<(ServingRegistry, FeatureHasher), Box<dyn std::error::Error>> {
        let mut spaces = SpaceRegistry::new();
        let hashed = spaces
            .register(FeatureSpace::servable("hashed", 10))
            .ok_or("space taken")?;
        let registry = ServingRegistry::new(spaces, 1_000);
        let h = FeatureHasher::new(1 << 10);
        let train = |pos_token: &str| -> Result<LogisticRegression, drybell_ml::MlError> {
            // Two negatives to one positive: the learned bias is clearly
            // negative, so tokens a model never saw score below 0.5
            // regardless of the RNG-driven example order during training.
            let data = vec![
                (h.bag_of_words(&[pos_token]), 1.0),
                (h.bag_of_words(&["nothing"]), 0.0),
                (h.bag_of_words(&["filler"]), 0.0),
            ];
            let mut m = LogisticRegression::new(
                1 << 10,
                FtrlConfig {
                    iterations: 150,
                    ..FtrlConfig::default()
                },
            );
            m.fit(&data)?;
            Ok(m)
        };
        for (version, token) in [(1, "yes"), (2, "maybe")] {
            registry.stage(ModelSpec {
                name: "m".into(),
                version,
                feature_spaces: vec![hashed],
                model: ExportedModel::LogReg(train(token)?),
            })?;
        }
        registry.promote("m", 1)?;
        Ok((registry, h))
    }

    #[test]
    fn shadow_returns_serving_scores_and_counts_flips() -> TestResult {
        let (registry, h) = registry_with_two_versions()?;
        let mut shadow = ShadowEval::new(&registry, "m", 2)?;
        // "yes": v1 positive, v2 (trained on "maybe") negative → flip.
        let x = h.bag_of_words(&["yes"]);
        let served = shadow.observe(ScoreInput::Sparse(&x))?;
        assert!(served > 0.8, "shadow must return the incumbent's score");
        // "maybe": v1 negative, v2 positive → flip the other way.
        let x = h.bag_of_words(&["maybe"]);
        shadow.observe(ScoreInput::Sparse(&x))?;
        // "nothing": both negative → no flip.
        let x = h.bag_of_words(&["nothing"]);
        shadow.observe(ScoreInput::Sparse(&x))?;
        let r = shadow.report();
        assert_eq!(r.examples, 3);
        assert_eq!(r.decision_flips, 2);
        assert_eq!(r.new_positives, 1);
        assert_eq!(r.new_negatives, 1);
        assert!(r.mean_abs_gap() > 0.0);
        assert!(r.max_abs_gap <= 1.0);
        Ok(())
    }

    #[test]
    fn shadow_ignores_registry_changes_after_resolution() -> TestResult {
        let (registry, h) = registry_with_two_versions()?;
        let mut shadow = ShadowEval::new(&registry, "m", 2)?;
        let x = h.bag_of_words(&["yes"]);
        let before = shadow.observe(ScoreInput::Sparse(&x))?;
        // Promote the candidate mid-shadow: the evaluator's snapshot
        // still scores with the incumbent it resolved at construction.
        registry.promote("m", 2)?;
        let after = shadow.observe(ScoreInput::Sparse(&x))?;
        assert_eq!(before, after);
        Ok(())
    }

    #[test]
    fn shadow_latency_batches_and_drains_on_drop() -> TestResult {
        let mut spaces = SpaceRegistry::new();
        let hashed = spaces
            .register(FeatureSpace::servable("hashed", 10))
            .ok_or("space taken")?;
        let telemetry = drybell_obs::Telemetry::new();
        let registry = ServingRegistry::new(spaces, 1_000).with_telemetry(&telemetry);
        let h = FeatureHasher::new(1 << 10);
        let data = vec![
            (h.bag_of_words(&["yes"]), 1.0),
            (h.bag_of_words(&["nothing"]), 0.0),
        ];
        let mut m = LogisticRegression::new(1 << 10, FtrlConfig::default());
        m.fit(&data)?;
        for version in [1, 2] {
            registry.stage(ModelSpec {
                name: "m".into(),
                version,
                feature_spaces: vec![hashed],
                model: ExportedModel::LogReg(m.clone()),
            })?;
        }
        registry.promote("m", 1)?;
        {
            let mut shadow = ShadowEval::new(&registry, "m", 2)?;
            for _ in 0..4 {
                let x = h.bag_of_words(&["yes"]);
                shadow.observe(ScoreInput::Sparse(&x))?;
            }
            // Samples are buffered locally until the evaluator drops.
            let snap = telemetry.metrics().snapshot();
            assert_eq!(
                snap.histogram("obs/serving/shadow_score_us")
                    .ok_or("missing histogram")?
                    .count(),
                0
            );
        }
        let snap = telemetry.metrics().snapshot();
        assert_eq!(
            snap.histogram("obs/serving/shadow_score_us")
                .ok_or("missing histogram")?
                .count(),
            4
        );
        Ok(())
    }

    #[test]
    fn promotion_gate() -> TestResult {
        let (registry, h) = registry_with_two_versions()?;
        let mut shadow = ShadowEval::new(&registry, "m", 2)?;
        for _ in 0..10 {
            let x = h.bag_of_words(&["nothing"]);
            shadow.observe(ScoreInput::Sparse(&x))?;
        }
        // No flips on this traffic → promotable once volume suffices.
        assert!(shadow.report().recommend_promotion(10, 0.05));
        assert!(!shadow.report().recommend_promotion(100, 0.05));
        Ok(())
    }

    #[test]
    fn report_renders_json_and_journal_event() -> TestResult {
        let (registry, h) = registry_with_two_versions()?;
        let mut shadow = ShadowEval::new(&registry, "m", 2)?;
        for token in ["yes", "maybe", "nothing"] {
            let x = h.bag_of_words(&[token]);
            shadow.observe(ScoreInput::Sparse(&x))?;
        }
        let report = shadow.report();
        let json = report.to_json();
        assert_eq!(json.get("examples").and_then(|v| v.as_i64()), Some(3));
        assert_eq!(json.get("decision_flips").and_then(|v| v.as_i64()), Some(2));
        let parsed = drybell_obs::parse_json(&json.to_line())?;
        let flip_rate = parsed
            .get("flip_rate")
            .and_then(|v| v.as_f64())
            .ok_or("missing flip_rate")?;
        assert!((flip_rate - report.flip_rate()).abs() < 1e-12);
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        report.emit_to(&journal);
        let events = buffer.parsed_lines()?;
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").and_then(|k| k.as_str()),
            Some("shadow")
        );
        assert_eq!(events[0].get("examples").and_then(|v| v.as_i64()), Some(3));
        Ok(())
    }

    #[test]
    fn score_histogram_buckets_clamp_and_count() -> TestResult {
        let mut h = ScoreHistogram::default();
        h.record(0.0); // bucket 0
        h.record(0.05); // bucket 0
        h.record(0.51); // bucket 5
        h.record(1.0); // clamped into the top bucket
        h.record(2.5); // clamped into the top bucket
        h.record(-0.1); // clamped into bucket 0
        h.record(f64::NAN); // counted as invalid, not binned
        assert_eq!(h.total(), 6, "NaN must not inflate the valid total");
        assert_eq!(h.counts()[0], 3, "NaN must not leak into bucket 0");
        assert_eq!(h.invalid(), 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[SCORE_BUCKETS - 1], 2);
        let json = h.to_json();
        assert_eq!(json.items().len(), SCORE_BUCKETS);
        assert_eq!(json.at(0).ok_or("missing bucket 0")?.as_i64(), Some(3));
        Ok(())
    }

    #[test]
    fn nan_scores_surface_in_report_json_and_journal() -> TestResult {
        let mut r = ShadowReport::default();
        r.record_pair(0.7, f64::NAN); // candidate model is broken
        r.record_pair(0.2, 0.3);
        assert_eq!(r.serving_dist.invalid(), 0);
        assert_eq!(r.candidate_dist.invalid(), 1);
        // The candidate's *valid* mass is smaller than the example count:
        // the doctor must see the invalid counter, not a phantom 0-score.
        assert_eq!(r.candidate_dist.total(), 1);
        assert!(r.mean_abs_gap().is_finite(), "NaN must not poison the gap");
        assert!(r.max_abs_gap.is_finite());
        let json = r.to_json();
        assert_eq!(
            json.get("invalid/candidate").and_then(|v| v.as_i64()),
            Some(1)
        );
        assert_eq!(
            json.get("invalid/serving").and_then(|v| v.as_i64()),
            Some(0)
        );
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        r.emit_to(&journal);
        let events = buffer.parsed_lines()?;
        assert_eq!(
            events[0].get("invalid/candidate").and_then(|v| v.as_i64()),
            Some(1)
        );
        Ok(())
    }

    #[test]
    fn shadow_records_both_score_distributions() -> TestResult {
        let (registry, h) = registry_with_two_versions()?;
        let mut shadow = ShadowEval::new(&registry, "m", 2)?;
        // No "maybe" in the stream: the incumbent scores "yes" high while
        // the candidate (positive token "maybe") scores everything low, so
        // the two histograms must differ. (With both tokens present the
        // symmetric training would yield identical bucket multisets.)
        for token in ["yes", "nothing", "filler", "filler"] {
            let x = h.bag_of_words(&[token]);
            shadow.observe(ScoreInput::Sparse(&x))?;
        }
        let r = shadow.report();
        assert_eq!(r.serving_dist.total(), r.examples);
        assert_eq!(r.candidate_dist.total(), r.examples);
        assert_ne!(r.serving_dist, r.candidate_dist);
        let json = r.to_json();
        let serving = json
            .get("score_dist/serving")
            .ok_or("missing serving dist")?;
        assert_eq!(serving.items().len(), SCORE_BUCKETS);
        let total: i64 = serving.items().iter().filter_map(|v| v.as_i64()).sum();
        assert_eq!(total, r.examples as i64);
        // The journal event carries the same arrays.
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        r.emit_to(&journal);
        let events = buffer.parsed_lines()?;
        assert_eq!(
            events[0]
                .get("score_dist/candidate")
                .map(|v| v.items().len()),
            Some(SCORE_BUCKETS)
        );
        Ok(())
    }

    #[test]
    fn windowed_shadow_closes_per_window_reports() -> TestResult {
        let (registry, h) = registry_with_two_versions()?;
        let shadow = ShadowEval::new(&registry, "m", 2)?;
        let mut windowed = WindowedShadow::new(shadow, 3);
        let mut closed = Vec::new();
        // First window is all "yes" traffic, second all "nothing": the
        // windows must carry *their own* distributions, not cumulative
        // ones, or a mid-stream shift would be averaged away.
        for token in ["yes", "yes", "yes", "nothing", "nothing", "nothing"] {
            let x = h.bag_of_words(&[token]);
            let (score, window) = windowed.observe(ScoreInput::Sparse(&x))?;
            assert!(score.is_finite());
            closed.extend(window);
        }
        assert_eq!(closed.len(), 2);
        assert_eq!(windowed.windows_closed(), 2);
        for w in &closed {
            assert_eq!(w.examples, 3, "each window is exactly window-sized");
        }
        assert_ne!(
            closed[0].serving_dist, closed[1].serving_dist,
            "windows must not share score mass"
        );
        assert_eq!(windowed.current().examples, 0);
        // A partial window drains through flush, once.
        let x = h.bag_of_words(&["yes"]);
        windowed.observe(ScoreInput::Sparse(&x))?;
        let partial = windowed.flush().ok_or("partial window lost")?;
        assert_eq!(partial.examples, 1);
        assert!(windowed.flush().is_none(), "flush is idempotent when empty");
        // Closed windows round-trip into monitor-ready `shadow` events.
        let event = closed[0].to_event().to_json();
        assert_eq!(event.get("kind").and_then(|k| k.as_str()), Some("shadow"));
        assert_eq!(
            event.get("score_dist/serving").map(|d| d.items().len()),
            Some(SCORE_BUCKETS)
        );
        Ok(())
    }

    #[test]
    fn shadow_requires_incumbent_and_candidate() -> TestResult {
        let (registry, _) = registry_with_two_versions()?;
        assert!(matches!(
            ShadowEval::new(&registry, "m", 9),
            Err(ServingError::UnknownModel(_))
        ));
        assert!(matches!(
            ShadowEval::new(&registry, "ghost", 1),
            Err(ServingError::UnknownModel(_))
        ));
        Ok(())
    }
}
