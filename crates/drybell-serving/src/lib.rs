//! # drybell-serving
//!
//! The TFX analog (§5.3): model export, staged deployment, and — the part
//! that makes §4's cross-feature story enforceable — **servability
//! checks**. A model declares the feature spaces it reads; the registry
//! refuses to stage any model that touches a non-servable or private
//! space, or whose total declared feature cost exceeds the production
//! latency budget. Labeling functions face no such check (they run
//! offline), which is exactly the asymmetry that lets DryBell transfer
//! knowledge from non-servable resources into servable models.
//!
//! Models are exported to JSON files with a manifest, mimicking how TFX
//! "automatically stage[s] a model for serving" once trained.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod frontend;
pub mod shadow;
pub mod slo;

pub use frontend::{Frontend, FrontendConfig, OwnedInput, Pending, Scored};
pub use shadow::{ScoreHistogram, ShadowEval, ShadowReport, WindowedShadow, SCORE_BUCKETS};
pub use slo::{SloBreach, SloConfig, SloTracker, WindowStats};

use drybell_features::{FeatureSpaceId, SpaceRegistry, SparseVector};
use drybell_ml::{LogisticRegression, MlError, Mlp, MlpScratch, WeightCache};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors from staging, promoting, or scoring models.
#[derive(Debug)]
pub enum ServingError {
    /// The model reads feature spaces that cannot be served.
    NotServable {
        /// Model name.
        model: String,
        /// The offending space names.
        blocking: Vec<String>,
    },
    /// The model's declared feature cost exceeds the latency budget.
    OverBudget {
        /// Model name.
        model: String,
        /// Declared per-example cost in microseconds.
        cost_us: u64,
        /// The registry's budget in microseconds.
        budget_us: u64,
    },
    /// No model with the given name/stage.
    UnknownModel(String),
    /// A model with this name and version is already registered.
    DuplicateVersion {
        /// Model name.
        model: String,
        /// Duplicated version.
        version: u32,
    },
    /// Input kind does not match the model (sparse vs dense).
    WrongInputKind {
        /// Model name.
        model: String,
        /// What the model expects.
        expected: &'static str,
    },
    /// The model rejected the input (e.g. a dense vector of the wrong
    /// width). Scoring degrades instead of panicking.
    ScoreFailed {
        /// Model name.
        model: String,
        /// The underlying model error.
        source: MlError,
    },
    /// The front-end admission queue is at capacity; the request was
    /// rejected rather than queued (load shedding).
    QueueFull {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// The front-end is shutting down; the request cannot be served.
    Shutdown,
    /// Filesystem or serialization failure during export/load.
    Io(String),
    /// A loaded model file disagrees with the manifest that points at it.
    ManifestMismatch {
        /// Model name and version, e.g. `"m v2"`.
        model: String,
        /// The family recorded in the manifest.
        expected: String,
        /// The family of the deserialized model.
        found: String,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::NotServable { model, blocking } => write!(
                f,
                "model {model:?} reads non-servable feature spaces: {}",
                blocking.join(", ")
            ),
            ServingError::OverBudget {
                model,
                cost_us,
                budget_us,
            } => write!(
                f,
                "model {model:?} needs {cost_us}us of features, budget is {budget_us}us"
            ),
            ServingError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServingError::DuplicateVersion { model, version } => {
                write!(f, "model {model:?} version {version} already registered")
            }
            ServingError::WrongInputKind { model, expected } => {
                write!(f, "model {model:?} expects {expected} input")
            }
            ServingError::ScoreFailed { model, source } => {
                write!(f, "model {model:?} rejected the input: {source}")
            }
            ServingError::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth}); request rejected")
            }
            ServingError::Shutdown => write!(f, "serving front-end is shutting down"),
            ServingError::Io(msg) => write!(f, "serving I/O error: {msg}"),
            ServingError::ManifestMismatch {
                model,
                expected,
                found,
            } => write!(
                f,
                "model {model} is a {found} but the manifest says {expected}"
            ),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::ScoreFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A trained model in exportable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ExportedModel {
    /// Sparse logistic regression (content tasks).
    LogReg(LogisticRegression),
    /// Dense MLP (real-time events task).
    Mlp(Mlp),
}

impl ExportedModel {
    /// Human-readable model family.
    pub fn family(&self) -> &'static str {
        match self {
            ExportedModel::LogReg(_) => "logistic-regression",
            ExportedModel::Mlp(_) => "mlp",
        }
    }
}

/// A model plus everything serving needs to know about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name (one serving slot per name).
    pub name: String,
    /// Monotonically increasing version.
    pub version: u32,
    /// The feature spaces the model reads at serving time.
    pub feature_spaces: Vec<FeatureSpaceId>,
    /// The trained model.
    pub model: ExportedModel,
}

/// Lifecycle stage of a registered model version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Validated and waiting for promotion.
    Staged,
    /// Live in production.
    Serving,
}

/// Scoring input: sparse (logistic regression) or dense (MLP).
pub enum ScoreInput<'a> {
    /// Hashed sparse features.
    Sparse(&'a SparseVector),
    /// Dense feature vector.
    Dense(&'a [f64]),
}

/// Pre-interned scoring instruments (built once at
/// [`ServingRegistry::with_telemetry`] so the scoring hot path never
/// touches the registry lock in `MetricsRegistry`).
struct ScoreInstruments {
    /// `obs/serving/score_us` — latency of production `score` calls.
    score_us: std::sync::Arc<drybell_obs::Histogram>,
    /// `obs/serving/shadow_score_us` — latency of `score_both` calls.
    shadow_score_us: std::sync::Arc<drybell_obs::Histogram>,
}

/// Every staged/serving version of one named model, oldest first.
type ModelVersions = Vec<(Arc<ModelSpec>, Stage)>;

/// The model registry: validates, stages, promotes, and serves models.
///
/// Specs are stored as `Arc<ModelSpec>` so scoring paths can take the
/// registry lock only long enough to clone a handle, then run the model
/// outside it. Per-request scoring should go through [`ScoreHandle`]
/// (via [`ServingRegistry::score_handle`]), which touches no lock at all.
pub struct ServingRegistry {
    spaces: SpaceRegistry,
    /// Production latency budget per example, in microseconds.
    budget_us: u64,
    models: Mutex<HashMap<String, ModelVersions>>,
    /// Live publication cells, one per subscribed model name. `promote`
    /// republishes into these so front-ends hot-swap without polling.
    /// Lock order: `cells` strictly before `models` (enforced by taking
    /// `cells` first in both `promote` and `epoch_cell`).
    cells: Mutex<HashMap<String, Arc<EpochCell>>>,
    instruments: Option<ScoreInstruments>,
}

impl ServingRegistry {
    /// Create a registry over the given feature spaces with a per-example
    /// latency budget (microseconds).
    pub fn new(spaces: SpaceRegistry, budget_us: u64) -> ServingRegistry {
        ServingRegistry {
            spaces,
            budget_us,
            models: Mutex::new(HashMap::new()),
            cells: Mutex::new(HashMap::new()),
            instruments: None,
        }
    }

    /// Record scoring latency into `telemetry`: `obs/serving/score_us`
    /// for production scores and `obs/serving/shadow_score_us` for shadow
    /// comparisons. The serving layer is the one place where latency *is*
    /// the product requirement, so its histograms are the ground truth
    /// the `budget_us` check is validated against.
    pub fn with_telemetry(mut self, telemetry: &drybell_obs::Telemetry) -> ServingRegistry {
        let metrics = telemetry.metrics();
        self.instruments = Some(ScoreInstruments {
            score_us: metrics.histogram("obs/serving/score_us"),
            shadow_score_us: metrics.histogram("obs/serving/shadow_score_us"),
        });
        self
    }

    /// The latency budget.
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// The feature-space registry.
    pub fn spaces(&self) -> &SpaceRegistry {
        &self.spaces
    }

    /// Validate a model spec against servability and the latency budget.
    pub fn validate(&self, spec: &ModelSpec) -> Result<(), ServingError> {
        let blocking = self.spaces.blocking_spaces(&spec.feature_spaces);
        if !blocking.is_empty() {
            return Err(ServingError::NotServable {
                model: spec.name.clone(),
                blocking: blocking.into_iter().map(str::to_owned).collect(),
            });
        }
        let cost = self.spaces.total_cost_us(&spec.feature_spaces);
        if cost > self.budget_us {
            return Err(ServingError::OverBudget {
                model: spec.name.clone(),
                cost_us: cost,
                budget_us: self.budget_us,
            });
        }
        Ok(())
    }

    /// Stage a model for serving (validation included).
    pub fn stage(&self, spec: ModelSpec) -> Result<(), ServingError> {
        self.validate(&spec)?;
        let mut models = self.models.lock();
        let versions = models.entry(spec.name.clone()).or_default();
        if versions.iter().any(|(s, _)| s.version == spec.version) {
            return Err(ServingError::DuplicateVersion {
                model: spec.name,
                version: spec.version,
            });
        }
        versions.push((Arc::new(spec), Stage::Staged));
        Ok(())
    }

    /// Promote a staged version to serving (demoting any currently
    /// serving version of the same name back to staged), atomically
    /// republishing to any live [`EpochCell`] subscribers so running
    /// front-ends hot-swap with zero scoring-path locks.
    pub fn promote(&self, name: &str, version: u32) -> Result<(), ServingError> {
        // `cells` before `models` — the workspace-wide lock order for
        // this pair (see the `cells` field doc).
        let cells = self.cells.lock();
        let promoted = {
            let mut models = self.models.lock();
            let versions = models
                .get_mut(name)
                .ok_or_else(|| ServingError::UnknownModel(name.to_owned()))?;
            if !versions.iter().any(|(s, _)| s.version == version) {
                return Err(ServingError::UnknownModel(format!("{name} v{version}")));
            }
            let mut promoted = None;
            for (spec, stage) in versions.iter_mut() {
                *stage = if spec.version == version {
                    promoted = Some(Arc::clone(spec));
                    Stage::Serving
                } else if *stage == Stage::Serving {
                    Stage::Staged
                } else {
                    *stage
                };
            }
            promoted
        };
        if let (Some(spec), Some(cell)) = (promoted, cells.get(name)) {
            cell.publish(spec);
        }
        Ok(())
    }

    /// The live publication cell for `name`, creating (and seeding with
    /// the current serving version) on first subscription. Subsequent
    /// [`ServingRegistry::promote`] calls republish into the same cell,
    /// so front-ends holding it observe promotions without polling the
    /// registry.
    pub fn epoch_cell(&self, name: &str) -> Result<Arc<EpochCell>, ServingError> {
        let mut cells = self.cells.lock();
        if let Some(cell) = cells.get(name) {
            return Ok(Arc::clone(cell));
        }
        // Holding `cells` across the seed resolution (which takes
        // `models` — the agreed lock order) closes the race where a
        // promote lands between resolving the spec and inserting the
        // cell, which would freeze the cell on a stale version.
        let spec = self.resolve_serving(name)?;
        let cell = Arc::new(EpochCell::new(spec));
        cells.insert(name.to_owned(), Arc::clone(&cell));
        Ok(cell)
    }

    /// The serving version of `name`, if promoted.
    pub fn serving_version(&self, name: &str) -> Option<u32> {
        let models = self.models.lock();
        models.get(name).and_then(|versions| {
            versions
                .iter()
                .find(|(_, st)| *st == Stage::Serving)
                .map(|(s, _)| s.version)
        })
    }

    /// `true` if `name` has a registered `version` (any stage).
    pub fn has_version(&self, name: &str, version: u32) -> bool {
        let models = self.models.lock();
        models
            .get(name)
            .is_some_and(|versions| versions.iter().any(|(s, _)| s.version == version))
    }

    /// Score one example with both the serving version and a specific
    /// registered version (shadow evaluation). Returns
    /// `(serving score, candidate score)`.
    pub fn score_both(
        &self,
        name: &str,
        candidate_version: u32,
        input: ScoreInput<'_>,
    ) -> Result<(f64, f64), ServingError> {
        let started = self.instruments.as_ref().map(|_| std::time::Instant::now());
        let result = self.score_both_inner(name, candidate_version, input);
        if let (Some(inst), Some(s)) = (&self.instruments, started) {
            inst.shadow_score_us.record_duration(s.elapsed());
        }
        result
    }

    /// The shared `obs/serving/shadow_score_us` histogram, for callers
    /// (the shadow evaluator) that batch their own latency samples in a
    /// [`drybell_obs::LocalHistogram`] instead of paying the shared
    /// atomics per scored example.
    pub(crate) fn shadow_latency_sink(&self) -> Option<std::sync::Arc<drybell_obs::Histogram>> {
        self.instruments
            .as_ref()
            .map(|inst| std::sync::Arc::clone(&inst.shadow_score_us))
    }

    fn score_both_inner(
        &self,
        name: &str,
        candidate_version: u32,
        input: ScoreInput<'_>,
    ) -> Result<(f64, f64), ServingError> {
        // One lock acquisition so both specs come from the same snapshot,
        // released before either model runs.
        let (serving_spec, candidate_spec) = {
            let models = self.models.lock();
            let versions = models
                .get(name)
                .ok_or_else(|| ServingError::UnknownModel(name.to_owned()))?;
            let serving = versions
                .iter()
                .find(|(_, st)| *st == Stage::Serving)
                .map(|(s, _)| Arc::clone(s))
                .ok_or_else(|| {
                    ServingError::UnknownModel(format!("{name} (no serving version)"))
                })?;
            let candidate = versions
                .iter()
                .find(|(s, _)| s.version == candidate_version)
                .map(|(s, _)| Arc::clone(s))
                .ok_or_else(|| {
                    ServingError::UnknownModel(format!("{name} v{candidate_version}"))
                })?;
            (serving, candidate)
        };
        let mut scratch = MlpScratch::default();
        Ok((
            score_spec(&serving_spec, &input, &mut scratch)?,
            score_spec(&candidate_spec, &input, &mut scratch)?,
        ))
    }

    /// The serving `Arc<ModelSpec>` for `name`: the lock is held only
    /// long enough to clone the handle.
    pub(crate) fn resolve_serving(&self, name: &str) -> Result<Arc<ModelSpec>, ServingError> {
        let models = self.models.lock();
        let versions = models
            .get(name)
            .ok_or_else(|| ServingError::UnknownModel(name.to_owned()))?;
        versions
            .iter()
            .find(|(_, st)| *st == Stage::Serving)
            .map(|(s, _)| Arc::clone(s))
            .ok_or_else(|| ServingError::UnknownModel(format!("{name} (no serving version)")))
    }

    /// The `Arc<ModelSpec>` for a specific registered version (any stage).
    pub(crate) fn resolve_version(
        &self,
        name: &str,
        version: u32,
    ) -> Result<Arc<ModelSpec>, ServingError> {
        let models = self.models.lock();
        let versions = models
            .get(name)
            .ok_or_else(|| ServingError::UnknownModel(name.to_owned()))?;
        versions
            .iter()
            .find(|(s, _)| s.version == version)
            .map(|(s, _)| Arc::clone(s))
            .ok_or_else(|| ServingError::UnknownModel(format!("{name} v{version}")))
    }

    /// Resolve the serving version of `name` into a lock-free
    /// [`ScoreHandle`] for per-request scoring.
    pub fn score_handle(&self, name: &str) -> Result<ScoreHandle, ServingError> {
        Ok(ScoreHandle {
            spec: self.resolve_serving(name)?,
            scratch: MlpScratch::default(),
        })
    }

    /// Score one example with the serving version of `name`.
    pub fn score(&self, name: &str, input: ScoreInput<'_>) -> Result<f64, ServingError> {
        let started = self.instruments.as_ref().map(|_| std::time::Instant::now());
        let result = self.score_inner(name, input);
        if let (Some(inst), Some(s)) = (&self.instruments, started) {
            inst.score_us.record_duration(s.elapsed());
        }
        result
    }

    fn score_inner(&self, name: &str, input: ScoreInput<'_>) -> Result<f64, ServingError> {
        let spec = self.resolve_serving(name)?;
        let mut scratch = MlpScratch::default();
        score_spec(&spec, &input, &mut scratch)
    }

    /// Export every registered model version to `dir` as JSON, plus a
    /// `manifest.json` describing stages.
    pub fn export_to_dir(&self, dir: &Path) -> Result<(), ServingError> {
        std::fs::create_dir_all(dir).map_err(|e| ServingError::Io(e.to_string()))?;
        let models = self.models.lock();
        let mut manifest: Vec<ManifestEntry> = Vec::new();
        for versions in models.values() {
            for (spec, stage) in versions {
                let file = format!("{}-v{}.json", spec.name, spec.version);
                let body = serde_json::to_string(spec.as_ref())
                    .map_err(|e| ServingError::Io(e.to_string()))?;
                std::fs::write(dir.join(&file), body)
                    .map_err(|e| ServingError::Io(e.to_string()))?;
                manifest.push(ManifestEntry {
                    name: spec.name.clone(),
                    version: spec.version,
                    stage: *stage,
                    file,
                    family: spec.model.family().to_owned(),
                });
            }
        }
        manifest.sort_by(|a, b| (&a.name, a.version).cmp(&(&b.name, b.version)));
        let body =
            serde_json::to_string_pretty(&manifest).map_err(|e| ServingError::Io(e.to_string()))?;
        std::fs::write(dir.join("manifest.json"), body).map_err(|e| ServingError::Io(e.to_string()))
    }

    /// Load a registry previously written by [`ServingRegistry::export_to_dir`].
    pub fn load_from_dir(
        spaces: SpaceRegistry,
        budget_us: u64,
        dir: &Path,
    ) -> Result<ServingRegistry, ServingError> {
        let manifest_body = std::fs::read_to_string(dir.join("manifest.json"))
            .map_err(|e| ServingError::Io(e.to_string()))?;
        let manifest: Vec<ManifestEntry> =
            serde_json::from_str(&manifest_body).map_err(|e| ServingError::Io(e.to_string()))?;
        let registry = ServingRegistry::new(spaces, budget_us);
        {
            let mut models = registry.models.lock();
            for entry in manifest {
                let body = std::fs::read_to_string(dir.join(&entry.file))
                    .map_err(|e| ServingError::Io(e.to_string()))?;
                let spec: ModelSpec =
                    serde_json::from_str(&body).map_err(|e| ServingError::Io(e.to_string()))?;
                if spec.model.family() != entry.family {
                    return Err(ServingError::ManifestMismatch {
                        model: format!("{} v{}", entry.name, entry.version),
                        expected: entry.family,
                        found: spec.model.family().to_owned(),
                    });
                }
                models
                    .entry(spec.name.clone())
                    .or_default()
                    .push((Arc::new(spec), entry.stage));
            }
        }
        Ok(registry)
    }
}

/// Score one example against a resolved spec. This is the serving hot
/// kernel: it runs outside any registry lock, reuses `scratch` across
/// calls, and builds owned `String`s only on error paths (via `clone`,
/// which the hot-path lint deliberately permits — error construction is
/// off the success path).
pub fn score_spec(
    spec: &ModelSpec,
    input: &ScoreInput<'_>,
    scratch: &mut MlpScratch,
) -> Result<f64, ServingError> {
    match (&spec.model, input) {
        (ExportedModel::LogReg(m), ScoreInput::Sparse(x)) => Ok(m.predict_proba(x)),
        (ExportedModel::Mlp(m), ScoreInput::Dense(x)) => {
            m.try_predict_proba(x, scratch)
                .map_err(|e| ServingError::ScoreFailed {
                    model: spec.name.clone(),
                    source: e,
                })
        }
        (ExportedModel::LogReg(_), _) => Err(ServingError::WrongInputKind {
            model: spec.name.clone(),
            expected: "sparse",
        }),
        (ExportedModel::Mlp(_), _) => Err(ServingError::WrongInputKind {
            model: spec.name.clone(),
            expected: "dense",
        }),
    }
}

/// A lock-free scoring handle: a snapshot of the serving version of one
/// model plus a reusable scratch buffer, built once per worker via
/// [`ServingRegistry::score_handle`] and then used per request.
///
/// `score` touches no lock and — on the success path — performs no heap
/// allocation; the hot-path lint enforces both properties transitively.
/// The handle pins the version it was resolved against: a promotion
/// after `score_handle` is not observed until a new handle is taken
/// (snapshot semantics, the same trade production model servers make).
#[derive(Debug, Clone)]
pub struct ScoreHandle {
    spec: Arc<ModelSpec>,
    scratch: MlpScratch,
}

impl ScoreHandle {
    /// The pinned model spec.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Score one example against the pinned version.
    pub fn score(&mut self, input: ScoreInput<'_>) -> Result<f64, ServingError> {
        score_spec(&self.spec, &input, &mut self.scratch)
    }
}

/// A lock-free-readable publication slot for the serving version of one
/// model name.
///
/// Writers ([`ServingRegistry::promote`]) swap the spec and bump the
/// epoch inside one short critical section. Readers pin a
/// [`PinnedSpec`] and call [`PinnedSpec::refresh`] between batches: the
/// steady-state cost is **one atomic load** — the slot lock is touched
/// only when the epoch actually moved. The protocol (including why the
/// epoch must be re-read *under* the slot lock) is proven race-free
/// over all interleavings by the `hot_swap` model in
/// `drybell-modelcheck`.
#[derive(Debug)]
pub struct EpochCell {
    /// Publication counter; bumped once per publish, after the slot
    /// write, inside the slot critical section.
    epoch: AtomicU64,
    slot: Mutex<Arc<ModelSpec>>,
}

impl EpochCell {
    /// A cell seeded with `spec` at epoch 1.
    fn new(spec: Arc<ModelSpec>) -> EpochCell {
        EpochCell {
            epoch: AtomicU64::new(1),
            slot: Mutex::new(spec),
        }
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically republish `spec` as the live version: the slot write
    /// and the epoch bump happen inside one critical section, so a
    /// reader that reads both under the same lock can never observe a
    /// torn (epoch, spec) pairing.
    fn publish(&self, spec: Arc<ModelSpec>) {
        let mut slot = self.slot.lock();
        *slot = spec;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Pin the currently-published spec for lock-free scoring.
    pub fn pin(&self) -> PinnedSpec {
        let slot = self.slot.lock();
        PinnedSpec {
            epoch: self.epoch.load(Ordering::Acquire),
            spec: Arc::clone(&slot),
        }
    }
}

/// A reader's snapshot of an [`EpochCell`]: the pinned spec plus the
/// epoch it was published under. Score against [`PinnedSpec::spec`];
/// call [`PinnedSpec::refresh`] at batch boundaries to pick up
/// promotions.
#[derive(Debug, Clone)]
pub struct PinnedSpec {
    spec: Arc<ModelSpec>,
    epoch: u64,
}

impl PinnedSpec {
    /// The pinned model spec.
    pub fn spec(&self) -> &Arc<ModelSpec> {
        &self.spec
    }

    /// The epoch this spec was published under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Catch up with `cell`, returning `true` if the pin moved.
    ///
    /// Steady state is a single atomic load. On an epoch change the
    /// slot lock is taken and **both** the spec and the epoch are
    /// re-read under it — pairing the pre-lock epoch with the
    /// locked-slot read would tear when a second publish lands between
    /// the load and the lock (the bug variant the `hot_swap` modelcheck
    /// test demonstrates).
    pub fn refresh(&mut self, cell: &EpochCell) -> bool {
        if cell.epoch.load(Ordering::Acquire) == self.epoch {
            return false;
        }
        let slot = cell.slot.lock();
        self.spec = Arc::clone(&slot);
        self.epoch = cell.epoch.load(Ordering::Acquire);
        true
    }
}

/// Reusable scratch for [`score_spec_batch`] / [`batch_session`]:
/// per-batch weight memoization for logistic regression plus the MLP
/// activation buffers. Allocate once per worker; steady-state batches
/// allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    weights: WeightCache,
    mlp: MlpScratch,
}

enum SessionInner<'a> {
    LogReg {
        spec: &'a ModelSpec,
        scorer: drybell_ml::BatchScorer<'a>,
    },
    Mlp {
        spec: &'a ModelSpec,
        scratch: &'a mut MlpScratch,
    },
}

/// Scores the items of one batch against a single pinned spec.
///
/// For logistic regression this amortizes FTRL weight materialization
/// across the batch (each touched coordinate's `sign`/`sqrt`/divide
/// runs at most once per batch instead of once per example); scores are
/// bit-identical to [`score_spec`]. Created by [`batch_session`]; the
/// borrow of the spec guarantees the model cannot change mid-batch.
pub struct BatchSession<'a> {
    inner: SessionInner<'a>,
}

/// Open a batch-scoring session for `spec` over reusable `scratch`.
pub fn batch_session<'a>(spec: &'a ModelSpec, scratch: &'a mut BatchScratch) -> BatchSession<'a> {
    let inner = match &spec.model {
        ExportedModel::LogReg(m) => SessionInner::LogReg {
            spec,
            scorer: m.batch_scorer(&mut scratch.weights),
        },
        ExportedModel::Mlp(_) => SessionInner::Mlp {
            spec,
            scratch: &mut scratch.mlp,
        },
    };
    BatchSession { inner }
}

impl BatchSession<'_> {
    /// Score one item of the batch — bit-identical to [`score_spec`] on
    /// the same input, including the error cases.
    pub fn score(&mut self, input: &ScoreInput<'_>) -> Result<f64, ServingError> {
        match &mut self.inner {
            SessionInner::LogReg { spec, scorer } => match input {
                ScoreInput::Sparse(x) => Ok(scorer.predict_proba(x)),
                ScoreInput::Dense(_) => Err(ServingError::WrongInputKind {
                    model: spec.name.clone(),
                    expected: "sparse",
                }),
            },
            SessionInner::Mlp { spec, scratch } => score_spec(spec, input, scratch),
        }
    }
}

/// Score a whole batch against one resolved spec, amortizing weight
/// materialization (see [`BatchSession`]). Fail-fast: the first input
/// error aborts the batch. `out.len()` must equal `inputs.len()`.
/// Callers needing per-request error isolation (the front-end) drive a
/// [`BatchSession`] directly instead.
pub fn score_spec_batch(
    spec: &ModelSpec,
    inputs: &[ScoreInput<'_>],
    scratch: &mut BatchScratch,
    out: &mut [f64],
) -> Result<(), ServingError> {
    if out.len() != inputs.len() {
        return Err(ServingError::ScoreFailed {
            model: spec.name.clone(),
            source: MlError::DimensionMismatch {
                expected: inputs.len(),
                got: out.len(),
            },
        });
    }
    let mut session = batch_session(spec, scratch);
    for (slot, input) in out.iter_mut().zip(inputs) {
        *slot = session.score(input)?;
    }
    Ok(())
}

/// One line of the export manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    name: String,
    version: u32,
    stage: Stage,
    file: String,
    family: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use drybell_features::{FeatureHasher, FeatureSpace};
    use drybell_ml::{FtrlConfig, MlpConfig};

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn spaces() -> Result<
        (
            SpaceRegistry,
            FeatureSpaceId,
            FeatureSpaceId,
            FeatureSpaceId,
        ),
        Box<dyn std::error::Error>,
    > {
        let mut r = SpaceRegistry::new();
        let text = r
            .register(FeatureSpace::servable("hashed-unigrams", 40))
            .ok_or("space taken")?;
        let event = r
            .register(FeatureSpace::servable("event-signals", 10))
            .ok_or("space taken")?;
        let nlp = r
            .register(FeatureSpace::non_servable("nlp-model-server", 50_000))
            .ok_or("space taken")?;
        Ok((r, text, event, nlp))
    }

    fn trained_logreg() -> Result<LogisticRegression, Box<dyn std::error::Error>> {
        let h = FeatureHasher::new(1 << 10);
        let data = vec![
            (h.bag_of_words(&["yes"]), 1.0),
            (h.bag_of_words(&["no"]), 0.0),
        ];
        let mut m = LogisticRegression::new(
            1 << 10,
            FtrlConfig {
                iterations: 100,
                ..FtrlConfig::default()
            },
        );
        m.fit(&data)?;
        Ok(m)
    }

    #[test]
    fn staging_rejects_non_servable_models() -> TestResult {
        let (r, text, _, nlp) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        let bad = ModelSpec {
            name: "topic".into(),
            version: 1,
            feature_spaces: vec![text, nlp],
            model: ExportedModel::LogReg(trained_logreg()?),
        };
        match reg.stage(bad) {
            Err(ServingError::NotServable { blocking, .. }) => {
                assert_eq!(blocking, vec!["nlp-model-server"]);
            }
            other => panic!("expected NotServable, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn staging_enforces_latency_budget() -> TestResult {
        let (mut r, text, _, _) = spaces()?;
        let slow = r
            .register(FeatureSpace::servable("slow-but-servable", 9_999))
            .ok_or("space taken")?;
        let reg = ServingRegistry::new(r, 10_000);
        let spec = ModelSpec {
            name: "m".into(),
            version: 1,
            feature_spaces: vec![text, slow],
            model: ExportedModel::LogReg(trained_logreg()?),
        };
        assert!(matches!(
            reg.stage(spec),
            Err(ServingError::OverBudget {
                cost_us: 10_039,
                ..
            })
        ));
        Ok(())
    }

    #[test]
    fn stage_promote_score_roundtrip() -> TestResult {
        let (r, text, _, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        let model = trained_logreg()?;
        let h = FeatureHasher::new(1 << 10);
        reg.stage(ModelSpec {
            name: "topic".into(),
            version: 1,
            feature_spaces: vec![text],
            model: ExportedModel::LogReg(model),
        })?;
        // Not yet serving.
        assert_eq!(reg.serving_version("topic"), None);
        assert!(reg
            .score("topic", ScoreInput::Sparse(&h.bag_of_words(&["yes"])))
            .is_err());
        reg.promote("topic", 1)?;
        assert_eq!(reg.serving_version("topic"), Some(1));
        let p = reg.score("topic", ScoreInput::Sparse(&h.bag_of_words(&["yes"])))?;
        assert!(p > 0.8);
        Ok(())
    }

    #[test]
    fn promotion_swaps_versions() -> TestResult {
        let (r, text, _, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        for v in [1, 2] {
            reg.stage(ModelSpec {
                name: "m".into(),
                version: v,
                feature_spaces: vec![text],
                model: ExportedModel::LogReg(trained_logreg()?),
            })?;
        }
        reg.promote("m", 1)?;
        reg.promote("m", 2)?;
        assert_eq!(reg.serving_version("m"), Some(2));
        // Duplicate version rejected.
        assert!(matches!(
            reg.stage(ModelSpec {
                name: "m".into(),
                version: 2,
                feature_spaces: vec![text],
                model: ExportedModel::LogReg(trained_logreg()?),
            }),
            Err(ServingError::DuplicateVersion { version: 2, .. })
        ));
        Ok(())
    }

    #[test]
    fn input_kind_mismatch_is_rejected() -> TestResult {
        let (r, _, event, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        let mlp = Mlp::new(
            3,
            MlpConfig {
                iterations: 1,
                ..MlpConfig::default()
            },
        );
        reg.stage(ModelSpec {
            name: "events".into(),
            version: 1,
            feature_spaces: vec![event],
            model: ExportedModel::Mlp(mlp),
        })?;
        reg.promote("events", 1)?;
        let h = FeatureHasher::new(8);
        assert!(matches!(
            reg.score("events", ScoreInput::Sparse(&h.bag_of_words(&["x"]))),
            Err(ServingError::WrongInputKind {
                expected: "dense",
                ..
            })
        ));
        assert!(reg
            .score("events", ScoreInput::Dense(&[0.0, 1.0, 0.5]))
            .is_ok());
        Ok(())
    }

    #[test]
    fn wrong_width_degrades_with_score_failed() -> TestResult {
        let (r, _, event, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        reg.stage(ModelSpec {
            name: "events".into(),
            version: 1,
            feature_spaces: vec![event],
            model: ExportedModel::Mlp(Mlp::new(
                3,
                MlpConfig {
                    iterations: 1,
                    ..MlpConfig::default()
                },
            )),
        })?;
        reg.promote("events", 1)?;
        // A dense input of the wrong width is a typed error, not a panic.
        match reg.score("events", ScoreInput::Dense(&[1.0])) {
            Err(ServingError::ScoreFailed { model, source }) => {
                assert_eq!(model, "events");
                assert_eq!(
                    source,
                    drybell_ml::MlError::DimensionMismatch {
                        expected: 3,
                        got: 1
                    }
                );
            }
            other => panic!("expected ScoreFailed, got {other:?}"),
        }
        // The error chain surfaces the model error as a source.
        let err = reg
            .score("events", ScoreInput::Dense(&[1.0]))
            .expect_err("wrong width must fail");
        assert!(std::error::Error::source(&err).is_some());
        Ok(())
    }

    #[test]
    fn score_handle_is_lock_free_and_pinned() -> TestResult {
        let (r, text, _, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        let h = FeatureHasher::new(1 << 10);
        for v in [1, 2] {
            reg.stage(ModelSpec {
                name: "topic".into(),
                version: v,
                feature_spaces: vec![text],
                model: ExportedModel::LogReg(trained_logreg()?),
            })?;
        }
        assert!(matches!(
            reg.score_handle("topic"),
            Err(ServingError::UnknownModel(_))
        ));
        reg.promote("topic", 1)?;
        let mut handle = reg.score_handle("topic")?;
        assert_eq!(handle.spec().version, 1);
        let x = h.bag_of_words(&["yes"]);
        let via_registry = reg.score("topic", ScoreInput::Sparse(&x))?;
        let via_handle = handle.score(ScoreInput::Sparse(&x))?;
        assert_eq!(via_handle, via_registry);
        // Promotion after resolution is not observed: the handle pins v1.
        reg.promote("topic", 2)?;
        assert_eq!(handle.spec().version, 1);
        let pinned = handle.score(ScoreInput::Sparse(&x))?;
        assert_eq!(pinned, via_handle);
        let fresh = reg.score_handle("topic")?;
        assert_eq!(fresh.spec().version, 2);
        Ok(())
    }

    #[test]
    fn export_and_load_roundtrip() -> TestResult {
        let (r, text, _, _) = spaces()?;
        let reg = ServingRegistry::new(r.clone(), 10_000);
        let h = FeatureHasher::new(1 << 10);
        reg.stage(ModelSpec {
            name: "topic".into(),
            version: 3,
            feature_spaces: vec![text],
            model: ExportedModel::LogReg(trained_logreg()?),
        })?;
        reg.promote("topic", 3)?;
        let dir = tempfile::tempdir()?;
        reg.export_to_dir(dir.path())?;
        assert!(dir.path().join("manifest.json").exists());
        assert!(dir.path().join("topic-v3.json").exists());

        let loaded = ServingRegistry::load_from_dir(r, 10_000, dir.path())?;
        assert_eq!(loaded.serving_version("topic"), Some(3));
        let x = h.bag_of_words(&["yes"]);
        let p0 = reg.score("topic", ScoreInput::Sparse(&x))?;
        let p1 = loaded.score("topic", ScoreInput::Sparse(&x))?;
        assert!((p0 - p1).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn telemetry_records_score_latency() -> TestResult {
        let (r, text, _, _) = spaces()?;
        let telemetry = drybell_obs::Telemetry::new();
        let reg = ServingRegistry::new(r, 10_000).with_telemetry(&telemetry);
        let h = FeatureHasher::new(1 << 10);
        for v in [1, 2] {
            reg.stage(ModelSpec {
                name: "m".into(),
                version: v,
                feature_spaces: vec![text],
                model: ExportedModel::LogReg(trained_logreg()?),
            })?;
        }
        reg.promote("m", 1)?;
        let x = h.bag_of_words(&["yes"]);
        for _ in 0..5 {
            reg.score("m", ScoreInput::Sparse(&x))?;
        }
        reg.score_both("m", 2, ScoreInput::Sparse(&x))?;
        let snap = telemetry.metrics().snapshot();
        let score = snap
            .histogram("obs/serving/score_us")
            .ok_or("missing score_us histogram")?;
        assert_eq!(score.count(), 5);
        assert!(score.p99().is_some());
        assert_eq!(
            snap.histogram("obs/serving/shadow_score_us")
                .ok_or("missing shadow_score_us histogram")?
                .count(),
            1
        );
        Ok(())
    }

    #[test]
    fn load_rejects_manifest_family_mismatch() -> TestResult {
        let (r, text, _, _) = spaces()?;
        let reg = ServingRegistry::new(r.clone(), 10_000);
        reg.stage(ModelSpec {
            name: "m".into(),
            version: 1,
            feature_spaces: vec![text],
            model: ExportedModel::LogReg(trained_logreg()?),
        })?;
        let dir = tempfile::tempdir()?;
        reg.export_to_dir(dir.path())?;
        // Corrupt the manifest's family field.
        let manifest_path = dir.path().join("manifest.json");
        let body = std::fs::read_to_string(&manifest_path)?;
        std::fs::write(&manifest_path, body.replace("logistic-regression", "mlp"))?;
        assert!(matches!(
            ServingRegistry::load_from_dir(r, 10_000, dir.path()),
            Err(ServingError::ManifestMismatch { .. })
        ));
        Ok(())
    }

    #[test]
    fn batched_scoring_is_bit_identical_to_one_at_a_time() -> TestResult {
        // The `shard_determinism`-style gate for the serving batcher:
        // score_spec_batch must produce exactly the bits score_spec does.
        let (r, text, _, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        let h = FeatureHasher::new(1 << 10);
        reg.stage(ModelSpec {
            name: "topic".into(),
            version: 1,
            feature_spaces: vec![text],
            model: ExportedModel::LogReg(trained_logreg()?),
        })?;
        reg.promote("topic", 1)?;
        let spec = reg.resolve_serving("topic")?;
        let vectors: Vec<SparseVector> = ["yes", "no", "yes no", "maybe", "yes yes"]
            .iter()
            .map(|s| h.bag_of_words(&s.split(' ').collect::<Vec<_>>()))
            .collect();
        let inputs: Vec<ScoreInput<'_>> = vectors.iter().map(ScoreInput::Sparse).collect();
        let mut scratch = BatchScratch::default();
        let mut batched = vec![0.0; inputs.len()];
        score_spec_batch(&spec, &inputs, &mut scratch, &mut batched)?;
        let mut mlp_scratch = MlpScratch::default();
        for (input, got) in inputs.iter().zip(&batched) {
            let single = score_spec(&spec, input, &mut mlp_scratch)?;
            assert_eq!(single.to_bits(), got.to_bits());
        }
        // Mismatched output length is a typed error, not a panic.
        let mut short = vec![0.0; inputs.len() - 1];
        assert!(matches!(
            score_spec_batch(&spec, &inputs, &mut scratch, &mut short),
            Err(ServingError::ScoreFailed { .. })
        ));
        // Wrong input kind inside a session is a typed error too.
        let dense = [0.0, 1.0];
        let mut session = batch_session(&spec, &mut scratch);
        assert!(matches!(
            session.score(&ScoreInput::Dense(&dense)),
            Err(ServingError::WrongInputKind {
                expected: "sparse",
                ..
            })
        ));
        Ok(())
    }

    #[test]
    fn epoch_cell_observes_promotions_without_polling() -> TestResult {
        let (r, text, _, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        for v in [1, 2] {
            reg.stage(ModelSpec {
                name: "m".into(),
                version: v,
                feature_spaces: vec![text],
                model: ExportedModel::LogReg(trained_logreg()?),
            })?;
        }
        // No serving version yet: subscribing fails with a typed error.
        assert!(matches!(
            reg.epoch_cell("m"),
            Err(ServingError::UnknownModel(_))
        ));
        reg.promote("m", 1)?;
        let cell = reg.epoch_cell("m")?;
        let mut pin = cell.pin();
        assert_eq!(pin.spec().version, 1);
        // Steady state: no epoch movement, refresh is a no-op.
        assert!(!pin.refresh(&cell));
        // Promote republishes into the live cell; refresh observes it.
        reg.promote("m", 2)?;
        assert!(pin.refresh(&cell));
        assert_eq!(pin.spec().version, 2);
        assert!(!pin.refresh(&cell));
        // The registry hands back the same cell on re-subscription.
        let again = reg.epoch_cell("m")?;
        assert_eq!(again.epoch(), cell.epoch());
        Ok(())
    }

    #[test]
    fn unknown_model_errors() -> TestResult {
        let (r, _, _, _) = spaces()?;
        let reg = ServingRegistry::new(r, 10_000);
        assert!(matches!(
            reg.promote("ghost", 1),
            Err(ServingError::UnknownModel(_))
        ));
        let h = FeatureHasher::new(8);
        assert!(matches!(
            reg.score("ghost", ScoreInput::Sparse(&h.bag_of_words(&["x"]))),
            Err(ServingError::UnknownModel(_))
        ));
        Ok(())
    }
}
