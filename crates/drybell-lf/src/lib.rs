//! # drybell-lf
//!
//! The labeling-function template library and executor — the Rust analog
//! of Snorkel DryBell's templated C++ classes (§5.1).
//!
//! In the paper, engineers "write only simple main files that define the
//! function(s) that computes the labeling function's vote for an
//! individual example"; the template handles distributed I/O, MapReduce
//! plumbing, and model-server lifecycles. Here the same division of labor
//! holds:
//!
//! * [`Lf`] wraps an engineer-written vote function with metadata (name,
//!   Figure 2 category, servability, feature spaces read);
//! * the three constructors mirror the paper's pipelines —
//!   [`Lf::plain`] (the default `LabelingFunction` pipeline),
//!   [`Lf::nlp`] (the `NLPLabelingFunction` pipeline, whose executor
//!   launches an NLP model server per worker and hands each vote function
//!   the `NlpResult`, exactly like the paper's `GetText`/`GetValue`
//!   template slots), and [`Lf::graph`] (knowledge-graph queries);
//! * [`executor`] runs a whole [`LfSet`] over a corpus — in memory with
//!   worker threads, or shard-to-shard over `drybell-dataflow` — and
//!   produces the label matrix `Λ` for `drybell-core`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod executor;

use drybell_core::Vote;
use drybell_kg::KnowledgeGraph;
use drybell_nlp::NlpResult;
use std::fmt;
use std::sync::Arc;

/// The coarse buckets of organizational knowledge in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LfCategory {
    /// Heuristics about the source of the content/event (URLs, origins,
    /// aggregate source statistics).
    SourceHeuristic,
    /// Heuristics about the content/event itself (keywords, patterns).
    ContentHeuristic,
    /// Predictions of internal models built for related problems (NER,
    /// topic models, smaller classifiers).
    ModelBased,
    /// Knowledge- or entity-graph derived signals.
    GraphBased,
}

impl LfCategory {
    /// All categories in Figure 2's order.
    pub const ALL: [LfCategory; 4] = [
        LfCategory::SourceHeuristic,
        LfCategory::ContentHeuristic,
        LfCategory::ModelBased,
        LfCategory::GraphBased,
    ];
}

impl fmt::Display for LfCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LfCategory::SourceHeuristic => "source heuristic",
            LfCategory::ContentHeuristic => "content heuristic",
            LfCategory::ModelBased => "model-based",
            LfCategory::GraphBased => "graph-based",
        };
        f.write_str(s)
    }
}

/// Metadata attached to every labeling function.
#[derive(Debug, Clone)]
pub struct LfMetadata {
    /// Unique display name.
    pub name: String,
    /// Figure 2 category.
    pub category: LfCategory,
    /// Whether the signals this LF reads are servable in production
    /// (drives the Table 3 ablation). Model-server and crawl-derived LFs
    /// are typically non-servable.
    pub servable: bool,
    /// Names of the feature spaces this LF reads (documentation and
    /// serving diagnostics).
    pub feature_spaces: Vec<String>,
}

/// The engineer-written vote function, in one of the three template
/// flavors of §5.1.
#[allow(clippy::type_complexity)] // boxed callbacks are the template slots
enum LfKind<X> {
    /// Default pipeline: a pure function of the example.
    Plain(Box<dyn Fn(&X) -> Vote + Send + Sync>),
    /// NLP pipeline: also receives the per-example NLP model-server
    /// output (the paper's `GetValue(x, nlp)`).
    Nlp(Box<dyn Fn(&X, &NlpResult) -> Vote + Send + Sync>),
    /// Graph pipeline: also receives the knowledge graph.
    Graph(Box<dyn Fn(&X, &KnowledgeGraph) -> Vote + Send + Sync>),
}

impl<X> fmt::Debug for LfKind<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LfKind::Plain(_) => "Plain",
            LfKind::Nlp(_) => "Nlp",
            LfKind::Graph(_) => "Graph",
        };
        f.write_str(s)
    }
}

/// One labeling function over examples of type `X`.
#[derive(Debug)]
pub struct Lf<X> {
    meta: LfMetadata,
    kind: LfKind<X>,
}

impl<X> Lf<X> {
    /// A plain labeling function (the default `LabelingFunction` pipeline).
    pub fn plain(
        name: &str,
        category: LfCategory,
        servable: bool,
        f: impl Fn(&X) -> Vote + Send + Sync + 'static,
    ) -> Lf<X> {
        Lf {
            meta: LfMetadata {
                name: name.to_owned(),
                category,
                servable,
                feature_spaces: Vec::new(),
            },
            kind: LfKind::Plain(Box::new(f)),
        }
    }

    /// An NLP labeling function: the executor annotates each example with
    /// the per-worker NLP model server and passes the result to `f`.
    /// Always non-servable — the whole point of §4 is that these models
    /// cannot run in production.
    pub fn nlp(name: &str, f: impl Fn(&X, &NlpResult) -> Vote + Send + Sync + 'static) -> Lf<X> {
        Lf {
            meta: LfMetadata {
                name: name.to_owned(),
                category: LfCategory::ModelBased,
                servable: false,
                feature_spaces: vec!["nlp-model-server".to_owned()],
            },
            kind: LfKind::Nlp(Box::new(f)),
        }
    }

    /// A knowledge-graph labeling function. Graph lookups are an offline
    /// resource, hence non-servable by default; pass `servable = true`
    /// for graphs small enough to ship with the model (e.g. a keyword
    /// translation table baked into the server).
    pub fn graph(
        name: &str,
        servable: bool,
        f: impl Fn(&X, &KnowledgeGraph) -> Vote + Send + Sync + 'static,
    ) -> Lf<X> {
        Lf {
            meta: LfMetadata {
                name: name.to_owned(),
                category: LfCategory::GraphBased,
                servable,
                feature_spaces: vec!["knowledge-graph".to_owned()],
            },
            kind: LfKind::Graph(Box::new(f)),
        }
    }

    /// Attach the feature-space names this LF reads.
    pub fn with_feature_spaces(mut self, spaces: &[&str]) -> Lf<X> {
        self.meta.feature_spaces = spaces.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// This LF's metadata.
    pub fn metadata(&self) -> &LfMetadata {
        &self.meta
    }

    /// `true` if this LF needs the NLP model server.
    pub fn needs_nlp(&self) -> bool {
        matches!(self.kind, LfKind::Nlp(_))
    }

    /// `true` if this LF needs the knowledge graph.
    pub fn needs_graph(&self) -> bool {
        matches!(self.kind, LfKind::Graph(_))
    }

    /// Compute this LF's vote, or report which feature space is missing.
    /// `nlp` must be `Some` for NLP LFs and `kg` must be `Some` for
    /// graph LFs; the executors establish this before calling.
    pub fn try_vote(
        &self,
        x: &X,
        nlp: Option<&NlpResult>,
        kg: Option<&KnowledgeGraph>,
    ) -> Result<Vote, LfError> {
        match &self.kind {
            LfKind::Plain(f) => Ok(f(x)),
            LfKind::Nlp(f) => match nlp {
                Some(nlp) => Ok(f(x, nlp)),
                None => Err(LfError::MissingNlp(self.meta.name.clone())),
            },
            LfKind::Graph(f) => match kg {
                Some(kg) => Ok(f(x, kg)),
                None => Err(LfError::MissingGraph(self.meta.name.clone())),
            },
        }
    }

    /// Compute this LF's vote. Convenience wrapper over [`Lf::try_vote`]
    /// for direct callers who have already matched feature spaces to LF
    /// kinds; panics with the LF's name if they have not.
    pub fn vote(&self, x: &X, nlp: Option<&NlpResult>, kg: Option<&KnowledgeGraph>) -> Vote {
        // drybell-lint: allow(no-panic) — documented contract of this convenience API; executors use try_vote
        self.try_vote(x, nlp, kg).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A labeling function was invoked without a feature space its kind
/// requires (§5.1: the template, not the vote function, wires feature
/// spaces to LFs — this error means the wiring was wrong).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LfError {
    /// An NLP LF ran without an NLP annotation for the example.
    MissingNlp(String),
    /// A graph LF ran without a knowledge graph.
    MissingGraph(String),
}

impl std::fmt::Display for LfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LfError::MissingNlp(name) => write!(f, "LF {name:?} needs an NLP annotation"),
            LfError::MissingGraph(name) => write!(f, "LF {name:?} needs a knowledge graph"),
        }
    }
}

impl std::error::Error for LfError {}

/// An ordered collection of labeling functions for one application.
#[derive(Debug)]
pub struct LfSet<X> {
    lfs: Vec<Lf<X>>,
    kg: Option<Arc<KnowledgeGraph>>,
}

impl<X> Default for LfSet<X> {
    fn default() -> LfSet<X> {
        LfSet::new()
    }
}

impl<X> LfSet<X> {
    /// An empty set.
    pub fn new() -> LfSet<X> {
        LfSet {
            lfs: Vec::new(),
            kg: None,
        }
    }

    /// Attach the knowledge graph that graph LFs will query.
    pub fn with_knowledge_graph(mut self, kg: Arc<KnowledgeGraph>) -> LfSet<X> {
        self.kg = Some(kg);
        self
    }

    /// Add a labeling function. Panics on duplicate names — LF names key
    /// the diagnostics reports.
    pub fn push(&mut self, lf: Lf<X>) {
        assert!(
            self.lfs.iter().all(|l| l.meta.name != lf.meta.name),
            "duplicate LF name {:?}",
            lf.meta.name
        );
        self.lfs.push(lf);
    }

    /// Builder-style [`LfSet::push`].
    pub fn with(mut self, lf: Lf<X>) -> LfSet<X> {
        self.push(lf);
        self
    }

    /// Number of labeling functions.
    pub fn len(&self) -> usize {
        self.lfs.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.lfs.is_empty()
    }

    /// The LFs in order.
    pub fn lfs(&self) -> &[Lf<X>] {
        &self.lfs
    }

    /// The attached knowledge graph, if any.
    pub fn knowledge_graph(&self) -> Option<&Arc<KnowledgeGraph>> {
        self.kg.as_ref()
    }

    /// LF names in column order.
    pub fn names(&self) -> Vec<String> {
        self.lfs.iter().map(|l| l.meta.name.clone()).collect()
    }

    /// Servability mask in column order (for the Table 3 ablation's
    /// `select_columns`).
    pub fn servable_mask(&self) -> Vec<bool> {
        self.lfs.iter().map(|l| l.meta.servable).collect()
    }

    /// `true` if any LF needs the per-worker NLP server.
    pub fn needs_nlp(&self) -> bool {
        self.lfs.iter().any(Lf::needs_nlp)
    }

    /// Figure 2: the distribution of LF categories, counted by number of
    /// labeling functions.
    pub fn category_distribution(&self) -> Vec<(LfCategory, usize)> {
        LfCategory::ALL
            .iter()
            .map(|&c| (c, self.lfs.iter().filter(|l| l.meta.category == c).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doc {
        text: String,
    }

    fn sample_set() -> LfSet<Doc> {
        let kg = {
            let mut g = KnowledgeGraph::new();
            let cat = g
                .add_entity("things", drybell_kg::NodeKind::Category)
                .unwrap();
            let id = g
                .add_entity("widget", drybell_kg::NodeKind::Product)
                .unwrap();
            g.add_edge(id, drybell_kg::EdgeKind::InCategory, cat);
            Arc::new(g)
        };
        LfSet::new()
            .with_knowledge_graph(kg)
            .with(Lf::plain(
                "kw_positive",
                LfCategory::ContentHeuristic,
                true,
                |d: &Doc| {
                    if d.text.contains("good") {
                        Vote::Positive
                    } else {
                        Vote::Abstain
                    }
                },
            ))
            .with(Lf::nlp("no_people_negative", |_d: &Doc, nlp| {
                if nlp.people().is_empty() {
                    Vote::Negative
                } else {
                    Vote::Abstain
                }
            }))
            .with(Lf::graph("kg_widget", false, |d: &Doc, kg| {
                if d.text.split_whitespace().any(|w| kg.lookup(w).is_some()) {
                    Vote::Positive
                } else {
                    Vote::Abstain
                }
            }))
    }

    #[test]
    fn metadata_and_masks() {
        let set = sample_set();
        assert_eq!(set.len(), 3);
        assert_eq!(
            set.names(),
            vec!["kw_positive", "no_people_negative", "kg_widget"]
        );
        assert_eq!(set.servable_mask(), vec![true, false, false]);
        assert!(set.needs_nlp());
        let dist = set.category_distribution();
        assert_eq!(
            dist,
            vec![
                (LfCategory::SourceHeuristic, 0),
                (LfCategory::ContentHeuristic, 1),
                (LfCategory::ModelBased, 1),
                (LfCategory::GraphBased, 1),
            ]
        );
    }

    #[test]
    fn votes_dispatch_by_kind() {
        let set = sample_set();
        let doc = Doc {
            text: "a good widget".into(),
        };
        let server = drybell_nlp::NlpServer::new();
        let nlp = server.annotate(&doc.text);
        let kg = set.knowledge_graph().unwrap().clone();
        let votes: Vec<Vote> = set
            .lfs()
            .iter()
            .map(|lf| lf.vote(&doc, Some(&nlp), Some(&kg)))
            .collect();
        assert_eq!(votes[0], Vote::Positive); // contains "good"
        assert_eq!(votes[1], Vote::Negative); // no people
        assert_eq!(votes[2], Vote::Positive); // "widget" in KG
    }

    #[test]
    #[should_panic(expected = "duplicate LF name")]
    fn duplicate_names_panic() {
        let mut set: LfSet<Doc> = LfSet::new();
        set.push(Lf::plain(
            "same",
            LfCategory::ContentHeuristic,
            true,
            |_| Vote::Abstain,
        ));
        set.push(Lf::plain(
            "same",
            LfCategory::ContentHeuristic,
            true,
            |_| Vote::Abstain,
        ));
    }

    #[test]
    #[should_panic(expected = "needs an NLP annotation")]
    fn nlp_lf_without_annotation_panics() {
        let lf: Lf<Doc> = Lf::nlp("needs_nlp", |_d, _n| Vote::Abstain);
        let doc = Doc {
            text: String::new(),
        };
        let _ = lf.vote(&doc, None, None);
    }

    #[test]
    fn feature_space_annotation() {
        let lf: Lf<Doc> = Lf::plain("kw", LfCategory::ContentHeuristic, true, |_| Vote::Abstain)
            .with_feature_spaces(&["hashed-unigrams"]);
        assert_eq!(lf.metadata().feature_spaces, vec!["hashed-unigrams"]);
        assert!(!lf.needs_nlp());
        assert!(!lf.needs_graph());
    }
}
