//! Executing labeling-function sets over corpora.
//!
//! Two execution paths, mirroring the deployment spectrum in §5:
//!
//! * [`execute_in_memory`] — worker threads over an in-memory slice, the
//!   fast path for experimentation and the default for the benchmark
//!   harness. Each worker gets its own NLP model server (warmed up once),
//!   the direct analog of "launch a model server on each compute node".
//! * [`execute_sharded`] — the faithful pipeline: examples stream from
//!   sharded record files through `drybell-dataflow`'s `par_map_shards`,
//!   vote rows stream out to shards keyed by example id, and the label
//!   matrix is assembled from the output dataset. This is the path the
//!   scaling experiment (§1's "6M+ data points with sub-30min execution")
//!   measures.

use crate::LfSet;
use drybell_core::{CoreError, LabelMatrix};
use drybell_dataflow::codec::{self, CodecError, Record};
use drybell_dataflow::{
    par_map_shards, par_map_vec, CounterHandle, DataflowError, JobConfig, JobStats, Service,
    ShardSpec,
};
use drybell_nlp::NlpServer;
use std::sync::Arc;
use std::time::Instant;

/// Per-example text extractor used to feed the NLP model server (the
/// paper's `GetText`, shared across the set's NLP LFs).
pub type TextExtractor<X> = Arc<dyn Fn(&X) -> String + Send + Sync>;

/// Wall-clock statistics from an in-memory execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionStats {
    /// Examples labeled.
    pub examples: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// NLP model-server calls issued (0 when no LF needed the server).
    pub nlp_calls: u64,
}

impl ExecutionStats {
    /// Examples labeled per second.
    pub fn throughput(&self) -> f64 {
        self.examples as f64 / self.seconds.max(1e-12)
    }
}

/// Run every LF over every example with `workers` threads, producing the
/// label matrix `Λ` with rows in example order.
///
/// Returns an error if an NLP LF is present but the set has no text
/// extractor, or if a worker fails.
pub fn execute_in_memory<X: Sync>(
    set: &LfSet<X>,
    text: Option<&TextExtractor<X>>,
    examples: &[X],
    workers: usize,
) -> Result<(LabelMatrix, ExecutionStats), DataflowError> {
    if set.needs_nlp() && text.is_none() {
        return Err(DataflowError::BadJob(
            "LF set contains NLP labeling functions but no text extractor was provided".into(),
        ));
    }
    let kg = set.knowledge_graph().cloned();
    let start = Instant::now();
    let nlp_calls = std::sync::atomic::AtomicU64::new(0);
    let rows: Vec<Vec<i8>> = par_map_vec(
        examples,
        workers,
        |_worker| {
            // One model server per worker, warmed up before any record.
            let mut server = NlpServer::new();
            if set.needs_nlp() {
                server.warm_up()?;
            }
            Ok(server)
        },
        |server: &mut NlpServer, x: &X| {
            let annotation = match (set.needs_nlp(), text) {
                (true, Some(t)) => {
                    nlp_calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Some(server.annotate(&t(x)))
                }
                _ => None,
            };
            let row: Vec<i8> = set
                .lfs()
                .iter()
                .map(|lf| lf.vote(x, annotation.as_ref(), kg.as_deref()).as_i8())
                .collect();
            Ok(row)
        },
    )?;
    let mut matrix = LabelMatrix::with_capacity(set.len(), rows.len());
    for row in &rows {
        matrix
            .push_raw_row(row)
            .map_err(|e: CoreError| DataflowError::user(e.to_string()))?;
    }
    let stats = ExecutionStats {
        examples: examples.len(),
        seconds: start.elapsed().as_secs_f64(),
        nlp_calls: nlp_calls.into_inner(),
    };
    Ok((matrix, stats))
}

/// One labeled example flowing out of the sharded pipeline: the example's
/// id and its vote row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteRow {
    /// Caller-assigned example id (used to restore global order).
    pub id: u64,
    /// One vote per LF, in LF-set column order.
    pub votes: Vec<i8>,
}

impl Record for VoteRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_varint(buf, self.id);
        codec::put_varint(buf, self.votes.len() as u64);
        // Bias i8 {-1,0,1} into u8 {0,1,2} for compact single bytes.
        buf.extend(self.votes.iter().map(|&v| (v + 1) as u8));
    }

    fn decode(buf: &mut &[u8]) -> Result<VoteRow, CodecError> {
        let id = codec::get_varint(buf)?;
        let len = codec::get_varint(buf)? as usize;
        if buf.len() < len {
            return Err(CodecError::UnexpectedEof);
        }
        let mut votes = Vec::with_capacity(len);
        for &b in &buf[..len] {
            if b > 2 {
                return Err(CodecError::InvalidTag(b));
            }
            votes.push(b as i8 - 1);
        }
        *buf = &buf[len..];
        Ok(VoteRow { id, votes })
    }
}

/// Run an LF set shard-to-shard over the dataflow engine.
///
/// `id_of` assigns each input record a unique id so the returned matrix's
/// rows can be ordered by id regardless of shard layout. The votes are
/// also durably written to `output` as [`VoteRow`] records — downstream
/// stages (the generative model, audits) read them from there, matching
/// the paper's file-based decoupling of pipeline stages.
pub fn execute_sharded<X>(
    set: &LfSet<X>,
    text: Option<&TextExtractor<X>>,
    input: &ShardSpec,
    output: &ShardSpec,
    cfg: &JobConfig,
    id_of: impl Fn(&X) -> u64 + Sync,
) -> Result<(LabelMatrix, JobStats), DataflowError>
where
    X: Record + Sync,
{
    if set.needs_nlp() && text.is_none() {
        return Err(DataflowError::BadJob(
            "LF set contains NLP labeling functions but no text extractor was provided".into(),
        ));
    }
    let kg = set.knowledge_graph().cloned();
    let stats = par_map_shards(
        input,
        output,
        cfg,
        |_ctx| {
            let mut server = NlpServer::new();
            if set.needs_nlp() {
                server.warm_up()?;
            }
            Ok(server)
        },
        |server: &mut NlpServer, x: X, emit, counters: &mut CounterHandle| {
            let annotation = match (set.needs_nlp(), text) {
                (true, Some(t)) => {
                    counters.inc("nlp_calls");
                    Some(server.annotate(&t(&x)))
                }
                _ => None,
            };
            let votes: Vec<i8> = set
                .lfs()
                .iter()
                .map(|lf| lf.vote(&x, annotation.as_ref(), kg.as_deref()).as_i8())
                .collect();
            for (lf, &v) in set.lfs().iter().zip(&votes) {
                if v != 0 {
                    counters.inc(&format!("votes/{}", lf.metadata().name));
                }
            }
            emit.emit(&VoteRow {
                id: id_of(&x),
                votes,
            })
        },
    )?;
    // Assemble the matrix in id order.
    let mut rows: Vec<VoteRow> = drybell_dataflow::read_all(output)?;
    rows.sort_by_key(|r| r.id);
    let mut matrix = LabelMatrix::with_capacity(set.len(), rows.len());
    for row in &rows {
        matrix
            .push_raw_row(&row.votes)
            .map_err(|e| DataflowError::user(e.to_string()))?;
    }
    Ok((matrix, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lf, LfCategory};
    use drybell_core::Vote;
    use drybell_dataflow::write_all;
    use proptest::prelude::*;

    type Doc = (u64, String);

    fn doc_set() -> LfSet<Doc> {
        LfSet::new()
            .with(Lf::plain(
                "has_good",
                LfCategory::ContentHeuristic,
                true,
                |d: &Doc| {
                    if d.1.contains("good") {
                        Vote::Positive
                    } else {
                        Vote::Abstain
                    }
                },
            ))
            .with(Lf::plain(
                "has_bad",
                LfCategory::ContentHeuristic,
                true,
                |d: &Doc| {
                    if d.1.contains("bad") {
                        Vote::Negative
                    } else {
                        Vote::Abstain
                    }
                },
            ))
            .with(Lf::nlp("mentions_person", |_d: &Doc, nlp| {
                if nlp.people().is_empty() {
                    Vote::Negative
                } else {
                    Vote::Positive
                }
            }))
    }

    fn extractor() -> TextExtractor<Doc> {
        Arc::new(|d: &Doc| d.1.clone())
    }

    fn docs() -> Vec<Doc> {
        vec![
            (0, "a good day with Alice Johnson".into()),
            (1, "a bad day".into()),
            (2, "nothing notable".into()),
            (3, "good and bad together".into()),
        ]
    }

    #[test]
    fn in_memory_matches_expected_votes() {
        let set = doc_set();
        let ext = extractor();
        let (matrix, stats) = execute_in_memory(&set, Some(&ext), &docs(), 3).unwrap();
        assert_eq!(matrix.num_examples(), 4);
        assert_eq!(matrix.num_lfs(), 3);
        assert_eq!(matrix.row(0), &[1, 0, 1]); // good + Alice Johnson
        assert_eq!(matrix.row(1), &[0, -1, -1]);
        assert_eq!(matrix.row(2), &[0, 0, -1]);
        assert_eq!(matrix.row(3), &[1, -1, -1]);
        assert_eq!(stats.examples, 4);
        assert_eq!(stats.nlp_calls, 4);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn in_memory_requires_extractor_for_nlp() {
        let set = doc_set();
        let err = execute_in_memory(&set, None, &docs(), 2);
        assert!(matches!(err, Err(DataflowError::BadJob(_))));
    }

    #[test]
    fn plain_only_set_skips_nlp() {
        let mut set: LfSet<Doc> = LfSet::new();
        set.push(Lf::plain("always_pos", LfCategory::SourceHeuristic, true, |_| {
            Vote::Positive
        }));
        let (matrix, stats) = execute_in_memory(&set, None, &docs(), 2).unwrap();
        assert_eq!(stats.nlp_calls, 0);
        assert!(matrix.rows().all(|r| r == [1]));
    }

    #[test]
    fn sharded_matches_in_memory() {
        let set = doc_set();
        let ext = extractor();
        let corpus = docs();
        let (mem_matrix, _) = execute_in_memory(&set, Some(&ext), &corpus, 2).unwrap();

        let dir = tempfile::tempdir().unwrap();
        let input = ShardSpec::new(dir.path(), "docs", 2);
        write_all(&input, &corpus).unwrap();
        let output = input.derive("votes");
        let cfg = JobConfig::new("lf-exec").with_workers(2);
        let (shard_matrix, stats) =
            execute_sharded(&set, Some(&ext), &input, &output, &cfg, |d| d.0).unwrap();
        assert_eq!(shard_matrix, mem_matrix);
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.counters.get("nlp_calls"), 4);
        assert_eq!(stats.counters.get("votes/has_good"), 2);
    }

    #[test]
    fn vote_row_record_roundtrip() {
        let row = VoteRow {
            id: 77,
            votes: vec![-1, 0, 1, 1, -1],
        };
        let buf = codec::encode_record(&row);
        let back: VoteRow = codec::decode_record(&buf).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn vote_row_rejects_bad_bytes() {
        let row = VoteRow {
            id: 1,
            votes: vec![0],
        };
        let mut buf = codec::encode_record(&row);
        let idx = buf.len() - 1;
        buf[idx] = 9; // invalid vote byte
        assert!(matches!(
            codec::decode_record::<VoteRow>(&buf),
            Err(CodecError::InvalidTag(9))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn prop_vote_row_roundtrip(id in any::<u64>(), votes in proptest::collection::vec(-1i8..=1, 0..40)) {
            let row = VoteRow { id, votes };
            let buf = codec::encode_record(&row);
            prop_assert_eq!(codec::decode_record::<VoteRow>(&buf).unwrap(), row);
        }

        #[test]
        fn prop_workers_do_not_change_results(workers in 1usize..8) {
            let set = doc_set();
            let ext = extractor();
            let (matrix, _) = execute_in_memory(&set, Some(&ext), &docs(), workers).unwrap();
            let (reference, _) = execute_in_memory(&set, Some(&ext), &docs(), 1).unwrap();
            prop_assert_eq!(matrix, reference);
        }
    }
}
