//! Executing labeling-function sets over corpora.
//!
//! Two execution paths, mirroring the deployment spectrum in §5:
//!
//! * [`execute_in_memory`] — worker threads over an in-memory slice, the
//!   fast path for experimentation and the default for the benchmark
//!   harness. Each worker gets its own NLP model server (warmed up once),
//!   the direct analog of "launch a model server on each compute node".
//! * [`execute_sharded`] — the faithful pipeline: examples stream from
//!   sharded record files through `drybell-dataflow`'s `par_map_shards`,
//!   vote rows stream out to shards keyed by example id, and the label
//!   matrix is assembled from the output dataset. This is the path the
//!   scaling experiment (§1's "6M+ data points with sub-30min execution")
//!   measures.

use crate::{Lf, LfSet};
use drybell_core::{CoreError, LabelMatrix};
use drybell_dataflow::codec::{self, CodecError, Record};
use drybell_dataflow::FaultPlan;
use drybell_dataflow::{
    par_map_shards, par_map_vec, CounterHandle, DataflowError, JobConfig, JobStats, Service,
    ShardSpec,
};
use drybell_kg::KnowledgeGraph;
use drybell_nlp::{CacheStats, CachedNlpServer, NlpError, NlpResult, NlpServer};
use drybell_obs::{CounterSlot, HistogramSlot, LocalShard, ShardLayout, Span, Telemetry, Tracer};
use std::sync::Arc;
use std::time::Instant;

/// Per-example text extractor used to feed the NLP model server (the
/// paper's `GetText`, shared across the set's NLP LFs).
pub type TextExtractor<X> = Arc<dyn Fn(&X) -> String + Send + Sync>;

/// Wall-clock statistics from an in-memory execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionStats {
    /// Examples labeled.
    pub examples: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// NLP annotation requests issued (0 when no LF needed the server).
    /// With a cache this counts requests, not underlying model runs —
    /// `cache` breaks the figure into hits and misses.
    pub nlp_calls: u64,
    /// Examples whose NLP annotation call failed: their NLP LFs degraded
    /// to abstain rather than aborting the run. Always 0 without an
    /// injected fault plan.
    pub nlp_degraded: u64,
    /// Memo-table statistics when the run used a cached NLP server.
    pub cache: Option<CacheStats>,
}

impl ExecutionStats {
    /// Examples labeled per second.
    pub fn throughput(&self) -> f64 {
        self.examples as f64 / self.seconds.max(1e-12)
    }

    /// Emit one `lf_execution` event to a run journal.
    pub fn emit_to(&self, journal: &drybell_obs::RunJournal) {
        let mut event = drybell_obs::Event::new("lf_execution")
            .field("examples", self.examples)
            .field("seconds", self.seconds)
            .field("throughput", self.throughput())
            .field("nlp_calls", self.nlp_calls)
            .field("nlp_degraded", self.nlp_degraded);
        if let Some(cache) = &self.cache {
            event = event
                .field("nlp_cache/hits", cache.hits)
                .field("nlp_cache/misses", cache.misses)
                .field("nlp_cache/evictions", cache.evictions)
                .field("nlp_cache/hit_rate", cache.hit_rate());
        }
        journal.emit(event);
    }
}

/// Knobs for the observed execution variants.
///
/// The default (`ExecOptions::default()`) reproduces the uninstrumented
/// fast path exactly: no memo table, no telemetry, no per-record timing.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Wrap the per-node NLP server in a [`CachedNlpServer`] with this
    /// memo-table capacity. The cache is shared by every worker thread
    /// (one cache per node, as a deployed memo table would be).
    pub nlp_cache: Option<usize>,
    /// Telemetry sink: per-LF `votes/<lf>` counters and
    /// `obs/lf/<lf>/eval_us` latency histograms, `nlp_calls`, the
    /// `obs/nlp/annotate_us` histogram, and an execution span.
    pub telemetry: Option<Telemetry>,
    /// Deterministic NLP fault injection (chaos tests): attached to every
    /// worker's model server, making annotation calls fail per the plan's
    /// NLP schedule. Affected examples degrade to abstain on NLP LFs.
    pub nlp_faults: Option<FaultPlan>,
}

impl ExecOptions {
    /// Options with every knob off (alias for `Default`).
    pub fn new() -> ExecOptions {
        ExecOptions::default()
    }

    /// Enable the shared NLP memo table with `capacity` entries.
    pub fn with_nlp_cache(mut self, capacity: usize) -> ExecOptions {
        self.nlp_cache = Some(capacity);
        self
    }

    /// Attach a telemetry sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ExecOptions {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attach a deterministic NLP fault-injection plan (chaos tests).
    pub fn with_nlp_faults(mut self, plan: FaultPlan) -> ExecOptions {
        self.nlp_faults = Some(plan);
        self
    }
}

/// Shard layout for the per-LF instruments, slots parallel to
/// `set.lfs()` column order. Built once per job (eagerly registering
/// every instrument, so zero-vote LFs still appear in snapshots); each
/// worker buffers its rows in a private [`LocalShard`] and the whole
/// batch folds into the shared registry when the worker retires — the
/// per-row cost is plain memory writes, no atomics or locks.
struct LfShards {
    layout: Arc<ShardLayout>,
    /// `votes/<lf>` — bumped when the LF does not abstain.
    votes: Vec<CounterSlot>,
    /// `obs/lf/<lf>/eval_us` — wall-clock latency of each evaluation.
    eval_us: Vec<HistogramSlot>,
    /// `lf/<lf>/degraded` — bumped when the LF abstained because its
    /// backing NLP service errored.
    degraded: Vec<CounterSlot>,
    /// Trace block names (`lf/<lf>`), interned for the trace exporter.
    trace_names: Vec<String>,
    telemetry: Telemetry,
}

impl LfShards {
    fn for_set<X>(set: &LfSet<X>, telemetry: &Telemetry) -> Arc<LfShards> {
        let metrics = telemetry.metrics();
        let mut layout = ShardLayout::new();
        let mut votes = Vec::with_capacity(set.len());
        let mut eval_us = Vec::with_capacity(set.len());
        let mut degraded = Vec::with_capacity(set.len());
        let mut trace_names = Vec::with_capacity(set.len());
        for lf in set.lfs() {
            let name = &lf.metadata().name;
            votes.push(layout.slot_counter(metrics.counter(&format!("votes/{name}"))));
            eval_us
                .push(layout.slot_histogram(metrics.histogram(&format!("obs/lf/{name}/eval_us"))));
            degraded.push(layout.slot_counter(metrics.counter(&format!("lf/{name}/degraded"))));
            trace_names.push(format!("lf/{name}"));
        }
        Arc::new(LfShards {
            layout: Arc::new(layout),
            votes,
            eval_us,
            degraded,
            trace_names,
            telemetry: telemetry.clone(),
        })
    }

    /// One worker's buffer. `exec_parent` is the executing span's trace
    /// id — the fallback parent for per-LF trace blocks on worker
    /// threads that carry no open attempt span of their own.
    fn worker(self: &Arc<LfShards>, exec_parent: Option<u64>) -> LfWorkerShard {
        LfWorkerShard {
            shard: self.layout.shard(),
            trace: self.telemetry.tracer().map(|tracer| LfTrace {
                tracer: tracer.clone(),
                elapsed: vec![0; self.trace_names.len()],
                parent: None,
                cursor: 0,
                fallback: exec_parent,
            }),
            shards: Arc::clone(self),
        }
    }
}

/// Per-attempt aggregation of LF evaluation time for the trace
/// exporter: one `lf/<name>` block per LF per shard attempt, laid
/// sequentially from the attempt's first row so the blocks nest inside
/// the attempt span without a per-row trace event.
struct LfTrace {
    tracer: Tracer,
    /// Accumulated evaluation microseconds per LF for the open attempt.
    elapsed: Vec<u64>,
    /// The attempt span the open blocks will parent under.
    parent: Option<u64>,
    /// Trace timestamp of the first row under `parent`.
    cursor: u64,
    /// Parent when the worker thread has no open attempt span (the
    /// in-memory path, whose workers run outside any traced span).
    fallback: Option<u64>,
}

impl LfTrace {
    /// Emit the open attempt's per-LF blocks and reset the accumulator.
    fn emit_blocks(&mut self, names: &[String]) {
        let mut ts = self.cursor;
        for (name, us) in names.iter().zip(self.elapsed.iter_mut()) {
            let dur = std::mem::take(us);
            if dur > 0 {
                self.tracer.record_interval_at(name, ts, dur, self.parent);
                ts += dur;
            }
        }
    }

    /// Called once per row: when the enclosing attempt span changed
    /// since the previous row, flush the finished attempt's blocks and
    /// restart the accumulator under the new one.
    fn begin_row(&mut self, names: &[String]) {
        let parent = self.tracer.current_parent().or(self.fallback);
        if parent != self.parent {
            self.emit_blocks(names);
            self.parent = parent;
            self.cursor = self.tracer.now_us();
        }
    }
}

/// One worker's view of the observed execution: the local telemetry
/// shard plus (when tracing) the per-attempt LF block accumulator.
/// Flushes everything on drop, i.e. when the worker retires.
struct LfWorkerShard {
    shards: Arc<LfShards>,
    shard: LocalShard,
    trace: Option<LfTrace>,
}

impl LfWorkerShard {
    fn begin_row(&mut self) {
        if let Some(trace) = &mut self.trace {
            trace.begin_row(&self.shards.trace_names);
        }
    }

    /// Record one LF evaluation: latency, a vote if it did not abstain,
    /// and trace-block time.
    fn eval(&mut self, i: usize, elapsed: std::time::Duration, voted: bool) {
        if let Some(&slot) = self.shards.eval_us.get(i) {
            self.shard.observe_duration(slot, elapsed);
        }
        if voted {
            if let Some(&slot) = self.shards.votes.get(i) {
                self.shard.bump(slot);
            }
        }
        if let Some(trace) = &mut self.trace {
            if let Some(us) = trace.elapsed.get_mut(i) {
                *us += elapsed.as_micros().min(u64::MAX as u128) as u64;
            }
        }
    }

    /// Record that LF `i` degraded to abstain (NLP outage).
    fn degraded(&mut self, i: usize) {
        if let Some(&slot) = self.shards.degraded.get(i) {
            self.shard.bump(slot);
        }
    }
}

impl Drop for LfWorkerShard {
    fn drop(&mut self) {
        if let Some(trace) = &mut self.trace {
            trace.emit_blocks(&self.shards.trace_names);
        }
        self.shard.flush_into(&self.shards.telemetry);
    }
}

/// Evaluate every LF on one example, optionally timing each evaluation.
/// A missing feature space (an NLP LF with no annotation, a graph LF
/// with no graph) is a wiring bug in the caller and surfaces as a
/// [`DataflowError::User`] rather than a panic inside a worker.
///
/// `degraded` marks an example whose NLP annotation call failed: its NLP
/// LFs abstain (vote 0, with the `lf/<name>/degraded` instrument bumped
/// when telemetry is attached) instead of erroring on the intentionally
/// absent annotation.
fn row_of<X>(
    lfs: &[Lf<X>],
    x: &X,
    annotation: Option<&NlpResult>,
    kg: Option<&KnowledgeGraph>,
    obs: Option<&mut LfWorkerShard>,
    degraded: bool,
) -> Result<Vec<i8>, DataflowError> {
    match obs {
        None => lfs
            .iter()
            .map(|lf| {
                if degraded && lf.needs_nlp() {
                    return Ok(0);
                }
                lf.try_vote(x, annotation, kg)
                    .map(|v| v.as_i8())
                    .map_err(|e| DataflowError::user(e.to_string()))
            })
            .collect(),
        Some(obs) => {
            obs.begin_row();
            let mut votes = Vec::with_capacity(lfs.len());
            for (i, lf) in lfs.iter().enumerate() {
                if degraded && lf.needs_nlp() {
                    obs.degraded(i);
                    votes.push(0);
                    continue;
                }
                let started = Instant::now();
                let v = lf
                    .try_vote(x, annotation, kg)
                    .map_err(|e| DataflowError::user(e.to_string()))?
                    .as_i8();
                obs.eval(i, started.elapsed(), v != 0);
                votes.push(v);
            }
            Ok(votes)
        }
    }
}

/// One worker's full state: its NLP service handle and, on observed
/// runs, its telemetry shard.
struct LfWorker {
    nlp: WorkerNlp,
    obs: Option<LfWorkerShard>,
}

/// The per-worker view of the NLP service: either a private plain server
/// (the status-quo "model server per compute node" path) or a handle to
/// the node-shared memo table.
enum WorkerNlp {
    Plain(Box<NlpServer>),
    Shared(Arc<CachedNlpServer>),
}

impl WorkerNlp {
    /// Annotate, surfacing service failures so the caller can degrade.
    /// The shared-cache path serves hits even during an outage.
    fn try_annotate(&self, text: &str) -> Result<NlpResult, NlpError> {
        match self {
            WorkerNlp::Plain(server) => server.try_annotate(text),
            WorkerNlp::Shared(cache) => cache.try_annotate(text),
        }
    }
}

/// Build the node-shared cached server when `opts.nlp_cache` is set.
fn build_shared_cache<X>(
    set: &LfSet<X>,
    opts: &ExecOptions,
) -> Result<Option<Arc<CachedNlpServer>>, DataflowError> {
    let Some(capacity) = opts.nlp_cache else {
        return Ok(None);
    };
    let mut server = NlpServer::new();
    if set.needs_nlp() {
        server.warm_up()?;
    }
    if let Some(t) = &opts.telemetry {
        // Instrument after warm-up so the warm-up call is not counted.
        server = server.with_metrics(t.metrics());
    }
    if let Some(plan) = &opts.nlp_faults {
        server = server.with_fault_plan(plan.clone());
    }
    Ok(Some(Arc::new(CachedNlpServer::new(server, capacity))))
}

/// Build one worker's NLP handle: a clone of the shared cache, or a
/// private warmed server.
fn worker_nlp<X>(
    set: &LfSet<X>,
    opts: &ExecOptions,
    shared: &Option<Arc<CachedNlpServer>>,
) -> Result<WorkerNlp, DataflowError> {
    if let Some(cache) = shared {
        return Ok(WorkerNlp::Shared(Arc::clone(cache)));
    }
    let mut server = NlpServer::new();
    if set.needs_nlp() {
        server.warm_up()?;
    }
    if let Some(t) = &opts.telemetry {
        server = server.with_metrics(t.metrics());
    }
    if let Some(plan) = &opts.nlp_faults {
        server = server.with_fault_plan(plan.clone());
    }
    Ok(WorkerNlp::Plain(Box::new(server)))
}

/// Run every LF over every example with `workers` threads, producing the
/// label matrix `Λ` with rows in example order.
///
/// Returns an error if an NLP LF is present but the set has no text
/// extractor, or if a worker fails. This is the uninstrumented fast path;
/// see [`execute_in_memory_observed`] for caching and telemetry.
pub fn execute_in_memory<X: Sync>(
    set: &LfSet<X>,
    text: Option<&TextExtractor<X>>,
    examples: &[X],
    workers: usize,
) -> Result<(LabelMatrix, ExecutionStats), DataflowError> {
    execute_in_memory_observed(set, text, examples, workers, &ExecOptions::default())
}

/// [`execute_in_memory`] with observability knobs: an optional node-shared
/// NLP memo table and an optional [`Telemetry`] sink.
pub fn execute_in_memory_observed<X: Sync>(
    set: &LfSet<X>,
    text: Option<&TextExtractor<X>>,
    examples: &[X],
    workers: usize,
    opts: &ExecOptions,
) -> Result<(LabelMatrix, ExecutionStats), DataflowError> {
    if set.needs_nlp() && text.is_none() {
        return Err(DataflowError::BadJob(
            "LF set contains NLP labeling functions but no text extractor was provided".into(),
        ));
    }
    let kg = set.knowledge_graph().cloned();
    let shards = opts.telemetry.as_ref().map(|t| LfShards::for_set(set, t));
    let shared_cache = build_shared_cache(set, opts)?;
    let _span = opts.telemetry.as_ref().map(|t| t.span("lf_exec/in_memory"));
    let exec_parent = _span.as_ref().and_then(Span::trace_id);
    let start = Instant::now();
    let nlp_calls = std::sync::atomic::AtomicU64::new(0);
    let nlp_degraded = std::sync::atomic::AtomicU64::new(0);
    let rows: Vec<Vec<i8>> = par_map_vec(
        examples,
        workers,
        // One model server per worker (or one shared memo table per
        // node), warmed up before any record, plus the worker's local
        // telemetry shard (flushed when the worker retires).
        |_worker| {
            Ok(LfWorker {
                nlp: worker_nlp(set, opts, &shared_cache)?,
                obs: shards.as_ref().map(|s| s.worker(exec_parent)),
            })
        },
        |worker: &mut LfWorker, x: &X| {
            let (annotation, degraded) = match (set.needs_nlp(), text) {
                (true, Some(t)) => {
                    nlp_calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match worker.nlp.try_annotate(&t(x)) {
                        Ok(r) => (Some(r), false),
                        Err(_) => {
                            // Service outage on this example: NLP LFs
                            // abstain instead of failing the run.
                            nlp_degraded.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            (None, true)
                        }
                    }
                }
                _ => (None, false),
            };
            row_of(
                set.lfs(),
                x,
                annotation.as_ref(),
                kg.as_deref(),
                worker.obs.as_mut(),
                degraded,
            )
        },
    )?;
    let mut matrix = LabelMatrix::with_capacity(set.len(), rows.len());
    for row in &rows {
        matrix
            .push_raw_row(row)
            .map_err(|e: CoreError| DataflowError::user(e.to_string()))?;
    }
    let cache = shared_cache.as_ref().map(|c| c.stats());
    if let (Some(t), Some(c)) = (&opts.telemetry, &shared_cache) {
        c.export_to(t.metrics());
    }
    let stats = ExecutionStats {
        examples: examples.len(),
        seconds: start.elapsed().as_secs_f64(),
        nlp_calls: nlp_calls.into_inner(),
        nlp_degraded: nlp_degraded.into_inner(),
        cache,
    };
    if let Some(journal) = opts.telemetry.as_ref().and_then(Telemetry::journal) {
        stats.emit_to(journal);
    }
    Ok((matrix, stats))
}

/// One labeled example flowing out of the sharded pipeline: the example's
/// id and its vote row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteRow {
    /// Caller-assigned example id (used to restore global order).
    pub id: u64,
    /// One vote per LF, in LF-set column order.
    pub votes: Vec<i8>,
}

impl Record for VoteRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_varint(buf, self.id);
        codec::put_varint(buf, self.votes.len() as u64);
        // Bias i8 {-1,0,1} into u8 {0,1,2} for compact single bytes.
        buf.extend(self.votes.iter().map(|&v| (v + 1) as u8));
    }

    fn decode(buf: &mut &[u8]) -> Result<VoteRow, CodecError> {
        let id = codec::get_varint(buf)?;
        let len = codec::get_varint(buf)? as usize;
        let (body, rest) = match (buf.get(..len), buf.get(len..)) {
            (Some(body), Some(rest)) => (body, rest),
            _ => return Err(CodecError::UnexpectedEof),
        };
        let mut votes = Vec::with_capacity(len);
        for &b in body {
            if b > 2 {
                return Err(CodecError::InvalidTag(b));
            }
            votes.push(b as i8 - 1);
        }
        *buf = rest;
        Ok(VoteRow { id, votes })
    }
}

/// Run an LF set shard-to-shard over the dataflow engine.
///
/// `id_of` assigns each input record a unique id so the returned matrix's
/// rows can be ordered by id regardless of shard layout. The votes are
/// also durably written to `output` as [`VoteRow`] records — downstream
/// stages (the generative model, audits) read them from there, matching
/// the paper's file-based decoupling of pipeline stages.
pub fn execute_sharded<X>(
    set: &LfSet<X>,
    text: Option<&TextExtractor<X>>,
    input: &ShardSpec,
    output: &ShardSpec,
    cfg: &JobConfig,
    id_of: impl Fn(&X) -> u64 + Sync,
) -> Result<(LabelMatrix, JobStats), DataflowError>
where
    X: Record + Sync,
{
    execute_sharded_observed(
        set,
        text,
        input,
        output,
        cfg,
        id_of,
        &ExecOptions::default(),
    )
}

/// [`execute_sharded`] with observability knobs (see [`ExecOptions`]).
///
/// With a cache enabled, its final [`CacheStats`] are surfaced as the job
/// counters `nlp_cache/hits`, `nlp_cache/misses`, and
/// `nlp_cache/evictions` alongside the existing `nlp_calls` and
/// `votes/<lf>` counters.
#[allow(clippy::too_many_arguments)]
pub fn execute_sharded_observed<X>(
    set: &LfSet<X>,
    text: Option<&TextExtractor<X>>,
    input: &ShardSpec,
    output: &ShardSpec,
    cfg: &JobConfig,
    id_of: impl Fn(&X) -> u64 + Sync,
    opts: &ExecOptions,
) -> Result<(LabelMatrix, JobStats), DataflowError>
where
    X: Record + Sync,
{
    if set.needs_nlp() && text.is_none() {
        return Err(DataflowError::BadJob(
            "LF set contains NLP labeling functions but no text extractor was provided".into(),
        ));
    }
    let kg = set.knowledge_graph().cloned();
    // Job-counter names interned once: the per-record loop below must not
    // allocate a `votes/<lf>` string per vote.
    let vote_names: Vec<String> = set
        .lfs()
        .iter()
        .map(|lf| format!("votes/{}", lf.metadata().name))
        .collect();
    // `lf/<name>/degraded` job-counter names for the NLP LFs, interned
    // for the same reason.
    let degraded_names: Vec<Option<String>> = set
        .lfs()
        .iter()
        .map(|lf| {
            lf.needs_nlp()
                .then(|| format!("lf/{}/degraded", lf.metadata().name))
        })
        .collect();
    let shards = opts.telemetry.as_ref().map(|t| LfShards::for_set(set, t));
    let shared_cache = build_shared_cache(set, opts)?;
    let _span = opts.telemetry.as_ref().map(|t| t.span("lf_exec/sharded"));
    let exec_parent = _span.as_ref().and_then(Span::trace_id);
    // The dataflow layer reads `JobConfig::telemetry` for its
    // `job/map`/`job/reduce` phase spans and per-attempt
    // `job/shard_attempt` spans; callers attach the sink via
    // `ExecOptions`, so mirror it onto the job config here — otherwise
    // the trace tree is missing its middle layer.
    let observed_cfg;
    let cfg = match (&cfg.telemetry, &opts.telemetry) {
        (None, Some(t)) => {
            observed_cfg = cfg.clone().with_telemetry(t.clone());
            &observed_cfg
        }
        _ => cfg,
    };
    let mut stats = par_map_shards(
        input,
        output,
        cfg,
        |_ctx| {
            Ok(LfWorker {
                nlp: worker_nlp(set, opts, &shared_cache)?,
                obs: shards.as_ref().map(|s| s.worker(exec_parent)),
            })
        },
        |worker: &mut LfWorker, x: X, emit, counters: &mut CounterHandle| {
            let (annotation, degraded) = match (set.needs_nlp(), text) {
                (true, Some(t)) => {
                    counters.inc("nlp_calls");
                    match worker.nlp.try_annotate(&t(&x)) {
                        Ok(r) => (Some(r), false),
                        Err(_) => (None, true),
                    }
                }
                _ => (None, false),
            };
            if degraded {
                for name in degraded_names.iter().flatten() {
                    counters.inc(name);
                }
            }
            let votes = row_of(
                set.lfs(),
                &x,
                annotation.as_ref(),
                kg.as_deref(),
                worker.obs.as_mut(),
                degraded,
            )?;
            for (name, &v) in vote_names.iter().zip(&votes) {
                if v != 0 {
                    counters.inc(name);
                }
            }
            emit.emit(&VoteRow {
                id: id_of(&x),
                votes,
            })
        },
    )?;
    if let Some(cache) = &shared_cache {
        let cs = cache.stats();
        stats.counters.add("nlp_cache/hits", cs.hits);
        stats.counters.add("nlp_cache/misses", cs.misses);
        stats.counters.add("nlp_cache/evictions", cs.evictions);
        if let Some(t) = &opts.telemetry {
            cache.export_to(t.metrics());
        }
    }
    if let Some(journal) = opts.telemetry.as_ref().and_then(Telemetry::journal) {
        stats.emit_to(journal);
    }
    // Assemble the matrix in id order.
    let mut rows: Vec<VoteRow> = drybell_dataflow::read_all(output)?;
    rows.sort_by_key(|r| r.id);
    let mut matrix = LabelMatrix::with_capacity(set.len(), rows.len());
    for row in &rows {
        matrix
            .push_raw_row(&row.votes)
            .map_err(|e| DataflowError::user(e.to_string()))?;
    }
    Ok((matrix, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lf, LfCategory};
    use drybell_core::Vote;
    use drybell_dataflow::write_all;
    use proptest::prelude::*;

    type Doc = (u64, String);

    fn doc_set() -> LfSet<Doc> {
        LfSet::new()
            .with(Lf::plain(
                "has_good",
                LfCategory::ContentHeuristic,
                true,
                |d: &Doc| {
                    if d.1.contains("good") {
                        Vote::Positive
                    } else {
                        Vote::Abstain
                    }
                },
            ))
            .with(Lf::plain(
                "has_bad",
                LfCategory::ContentHeuristic,
                true,
                |d: &Doc| {
                    if d.1.contains("bad") {
                        Vote::Negative
                    } else {
                        Vote::Abstain
                    }
                },
            ))
            .with(Lf::nlp("mentions_person", |_d: &Doc, nlp| {
                if nlp.people().is_empty() {
                    Vote::Negative
                } else {
                    Vote::Positive
                }
            }))
    }

    fn extractor() -> TextExtractor<Doc> {
        Arc::new(|d: &Doc| d.1.clone())
    }

    fn docs() -> Vec<Doc> {
        vec![
            (0, "a good day with Alice Johnson".into()),
            (1, "a bad day".into()),
            (2, "nothing notable".into()),
            (3, "good and bad together".into()),
        ]
    }

    #[test]
    fn in_memory_matches_expected_votes() {
        let set = doc_set();
        let ext = extractor();
        let (matrix, stats) = execute_in_memory(&set, Some(&ext), &docs(), 3).unwrap();
        assert_eq!(matrix.num_examples(), 4);
        assert_eq!(matrix.num_lfs(), 3);
        assert_eq!(matrix.row(0), &[1, 0, 1]); // good + Alice Johnson
        assert_eq!(matrix.row(1), &[0, -1, -1]);
        assert_eq!(matrix.row(2), &[0, 0, -1]);
        assert_eq!(matrix.row(3), &[1, -1, -1]);
        assert_eq!(stats.examples, 4);
        assert_eq!(stats.nlp_calls, 4);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn in_memory_requires_extractor_for_nlp() {
        let set = doc_set();
        let err = execute_in_memory(&set, None, &docs(), 2);
        assert!(matches!(err, Err(DataflowError::BadJob(_))));
    }

    #[test]
    fn plain_only_set_skips_nlp() {
        let mut set: LfSet<Doc> = LfSet::new();
        set.push(Lf::plain(
            "always_pos",
            LfCategory::SourceHeuristic,
            true,
            |_| Vote::Positive,
        ));
        let (matrix, stats) = execute_in_memory(&set, None, &docs(), 2).unwrap();
        assert_eq!(stats.nlp_calls, 0);
        assert!(matrix.rows().all(|r| r == [1]));
    }

    #[test]
    fn sharded_matches_in_memory() {
        let set = doc_set();
        let ext = extractor();
        let corpus = docs();
        let (mem_matrix, _) = execute_in_memory(&set, Some(&ext), &corpus, 2).unwrap();

        let dir = tempfile::tempdir().unwrap();
        let input = ShardSpec::new(dir.path(), "docs", 2);
        write_all(&input, &corpus).unwrap();
        let output = input.derive("votes");
        let cfg = JobConfig::new("lf-exec").with_workers(2);
        let (shard_matrix, stats) =
            execute_sharded(&set, Some(&ext), &input, &output, &cfg, |d| d.0).unwrap();
        assert_eq!(shard_matrix, mem_matrix);
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.counters.get("nlp_calls"), 4);
        assert_eq!(stats.counters.get("votes/has_good"), 2);
    }

    #[test]
    fn cached_in_memory_matches_uncached() {
        let set = doc_set();
        let ext = extractor();
        // Duplicate the corpus so the memo table can actually hit.
        let mut corpus = docs();
        corpus.extend(docs());
        let (plain, _) = execute_in_memory(&set, Some(&ext), &corpus, 3).unwrap();
        let opts = ExecOptions::new().with_nlp_cache(64);
        let (cached, stats) =
            execute_in_memory_observed(&set, Some(&ext), &corpus, 3, &opts).unwrap();
        assert_eq!(cached, plain);
        let cache = stats.cache.expect("cache stats present");
        assert_eq!(cache.hits + cache.misses, 8);
        assert!(cache.hits >= 4, "duplicated corpus must hit the memo table");
        assert_eq!(stats.nlp_calls, 8, "requests counted, not model runs");
    }

    #[test]
    fn telemetry_records_votes_latency_and_journal() {
        let set = doc_set();
        let ext = extractor();
        let (journal, buffer) = drybell_obs::RunJournal::in_memory();
        let telemetry = Telemetry::with_journal(journal);
        let opts = ExecOptions::new()
            .with_nlp_cache(16)
            .with_telemetry(telemetry.clone());
        let (_, stats) = execute_in_memory_observed(&set, Some(&ext), &docs(), 2, &opts).unwrap();
        let snap = telemetry.metrics().snapshot();
        // Per-LF vote counters match the known matrix from
        // `in_memory_matches_expected_votes`.
        assert_eq!(snap.counter("votes/has_good"), 2);
        assert_eq!(snap.counter("votes/has_bad"), 2);
        assert_eq!(snap.counter("votes/mentions_person"), 4);
        // Per-LF latency histograms saw one sample per example.
        for lf in ["has_good", "has_bad", "mentions_person"] {
            let hist = snap
                .histogram(&format!("obs/lf/{lf}/eval_us"))
                .unwrap_or_else(|| panic!("missing histogram for {lf}"));
            assert_eq!(hist.count(), 4);
        }
        // The model server ran once per distinct text (cache misses only).
        assert_eq!(snap.counter("nlp_calls"), stats.cache.unwrap().misses);
        // Cache gauges exported.
        assert_eq!(snap.gauge("nlp_cache/misses"), 4);
        // The span closed and the journal captured the run.
        assert!(telemetry
            .spans()
            .snapshot()
            .get("lf_exec/in_memory")
            .is_some());
        let events = buffer.parsed_lines().unwrap();
        let exec = events
            .iter()
            .find(|e| e.get("kind").and_then(|k| k.as_str()) == Some("lf_execution"))
            .expect("lf_execution event");
        assert_eq!(exec.get("examples").and_then(|v| v.as_i64()), Some(4));
    }

    #[test]
    fn sharded_cache_stats_become_job_counters() {
        let set = doc_set();
        let ext = extractor();
        let mut corpus = docs();
        corpus.extend(docs()); // ids repeat; votes identical so matrix rows dedupe-safe
        let corpus: Vec<Doc> = corpus
            .into_iter()
            .enumerate()
            .map(|(i, (_, text))| (i as u64, text))
            .collect();
        let dir = tempfile::tempdir().unwrap();
        let input = ShardSpec::new(dir.path(), "docs", 2);
        write_all(&input, &corpus).unwrap();
        let output = input.derive("votes");
        let cfg = JobConfig::new("lf-exec-cached").with_workers(2);
        let opts = ExecOptions::new().with_nlp_cache(64);
        let (matrix, stats) =
            execute_sharded_observed(&set, Some(&ext), &input, &output, &cfg, |d| d.0, &opts)
                .unwrap();
        assert_eq!(matrix.num_examples(), 8);
        assert_eq!(stats.counters.get("nlp_calls"), 8);
        let hits = stats.counters.get("nlp_cache/hits");
        let misses = stats.counters.get("nlp_cache/misses");
        assert_eq!(hits + misses, 8);
        assert!(hits >= 4);
        assert_eq!(stats.counters.get("votes/has_good"), 4);
    }

    #[test]
    fn in_memory_degrades_to_abstain_when_nlp_fails() {
        let set = doc_set();
        let ext = extractor();
        // Fail the NLP call for doc 0 only; plain LFs keep voting, the
        // NLP LF abstains instead of erroring on the missing annotation.
        let plan = FaultPlan::seeded(4).fail_nlp_text("a good day with Alice Johnson");
        let opts = ExecOptions::new().with_nlp_faults(plan);
        let (matrix, stats) =
            execute_in_memory_observed(&set, Some(&ext), &docs(), 2, &opts).unwrap();
        assert_eq!(
            matrix.row(0),
            &[1, 0, 0],
            "NLP LF must abstain, plain LFs vote"
        );
        assert_eq!(matrix.row(1), &[0, -1, -1], "healthy examples unchanged");
        assert_eq!(stats.nlp_degraded, 1);
        assert_eq!(stats.nlp_calls, 4, "the failed request still counts");
    }

    #[test]
    fn degraded_lf_counter_is_recorded() {
        let set = doc_set();
        let ext = extractor();
        let plan = FaultPlan::seeded(4).fail_nlp_text("a bad day");
        let telemetry = Telemetry::new();
        let opts = ExecOptions::new()
            .with_nlp_faults(plan)
            .with_telemetry(telemetry.clone());
        let (matrix, stats) =
            execute_in_memory_observed(&set, Some(&ext), &docs(), 2, &opts).unwrap();
        assert_eq!(matrix.row(1), &[0, -1, 0]);
        assert_eq!(stats.nlp_degraded, 1);
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("lf/mentions_person/degraded"), 1);
        // Only the NLP LF degrades; plain LFs never do.
        assert_eq!(snap.counter("lf/has_good/degraded"), 0);
        // The degraded example still contributes its plain votes.
        assert_eq!(snap.counter("votes/has_bad"), 2);
    }

    #[test]
    fn sharded_degrades_and_counts_per_lf() {
        let set = doc_set();
        let ext = extractor();
        let corpus = docs();
        let dir = tempfile::tempdir().unwrap();
        let input = ShardSpec::new(dir.path(), "docs", 2);
        write_all(&input, &corpus).unwrap();
        let output = input.derive("votes");
        let cfg = JobConfig::new("lf-exec-degraded").with_workers(2);
        let plan = FaultPlan::seeded(4).fail_nlp_text("a good day with Alice Johnson");
        let opts = ExecOptions::new().with_nlp_faults(plan);
        let (matrix, stats) =
            execute_sharded_observed(&set, Some(&ext), &input, &output, &cfg, |d| d.0, &opts)
                .unwrap();
        assert_eq!(matrix.row(0), &[1, 0, 0]);
        assert_eq!(matrix.row(3), &[1, -1, -1], "healthy rows unchanged");
        assert_eq!(stats.counters.get("lf/mentions_person/degraded"), 1);
        assert_eq!(stats.counters.get("lf/has_good/degraded"), 0);
        assert_eq!(stats.counters.get("nlp_calls"), 4);
    }

    #[test]
    fn degraded_examples_hit_the_cache_shield() {
        let set = doc_set();
        let ext = extractor();
        // Duplicate the corpus. Healthy texts are answered from the memo
        // table on their second pass; the poisoned text never enters the
        // cache (failures are not memoized), so both of its requests
        // degrade.
        let mut corpus = docs();
        corpus.extend(docs());
        let plan = FaultPlan::seeded(4).fail_nlp_text("nothing notable");
        let opts = ExecOptions::new().with_nlp_cache(64).with_nlp_faults(plan);
        let (matrix, stats) =
            execute_in_memory_observed(&set, Some(&ext), &corpus, 1, &opts).unwrap();
        assert_eq!(
            stats.nlp_degraded, 2,
            "failures are never cached; both degrade"
        );
        assert_eq!(matrix.row(2), &[0, 0, 0]);
        assert_eq!(matrix.row(6), &[0, 0, 0]);
        // Healthy duplicated texts hit the memo table.
        assert!(stats.cache.unwrap().hits >= 3);
    }

    #[test]
    fn vote_row_record_roundtrip() {
        let row = VoteRow {
            id: 77,
            votes: vec![-1, 0, 1, 1, -1],
        };
        let buf = codec::encode_record(&row);
        let back: VoteRow = codec::decode_record(&buf).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn vote_row_rejects_bad_bytes() {
        let row = VoteRow {
            id: 1,
            votes: vec![0],
        };
        let mut buf = codec::encode_record(&row);
        let idx = buf.len() - 1;
        buf[idx] = 9; // invalid vote byte
        assert!(matches!(
            codec::decode_record::<VoteRow>(&buf),
            Err(CodecError::InvalidTag(9))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn prop_vote_row_roundtrip(id in any::<u64>(), votes in proptest::collection::vec(-1i8..=1, 0..40)) {
            let row = VoteRow { id, votes };
            let buf = codec::encode_record(&row);
            prop_assert_eq!(codec::decode_record::<VoteRow>(&buf).unwrap(), row);
        }

        #[test]
        fn prop_workers_do_not_change_results(workers in 1usize..8) {
            let set = doc_set();
            let ext = extractor();
            let (matrix, _) = execute_in_memory(&set, Some(&ext), &docs(), workers).unwrap();
            let (reference, _) = execute_in_memory(&set, Some(&ext), &docs(), 1).unwrap();
            prop_assert_eq!(matrix, reference);
        }
    }
}
