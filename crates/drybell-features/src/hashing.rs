//! Feature hashing.
//!
//! Production click-through models at the scale the paper targets use the
//! hashing trick (McMahan et al., KDD 2013): a feature string like
//! `"token=camera"` is mapped to `fnv1a64(s) % dims`. This keeps the
//! servable feature transform stateless and cheap — exactly what makes
//! these features servable while the NLP-model features are not.

use crate::sparse::SparseVector;

/// FNV-1a 64-bit hash.
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Maps named features into a fixed-dimension hashed space.
///
/// ```
/// use drybell_features::FeatureHasher;
/// let hasher = FeatureHasher::new(1 << 16);
/// let v = hasher.bag_of_words(&["camera", "lens", "camera"]);
/// assert_eq!(v.get(hasher.index("camera")), 2.0);
/// assert_eq!(v.get(hasher.index("lens")), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureHasher {
    dims: u32,
}

impl FeatureHasher {
    /// Create a hasher with `dims` output dimensions (must be ≥ 1).
    pub fn new(dims: u32) -> FeatureHasher {
        assert!(dims >= 1, "need at least one dimension");
        FeatureHasher { dims }
    }

    /// Output dimensionality.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Index of a named feature.
    #[inline]
    pub fn index(&self, name: &str) -> u32 {
        (fnv1a64(name.as_bytes()) % u64::from(self.dims)) as u32
    }

    /// Hash a bag of tokens into counts: each token contributes `1.0` at
    /// its hashed index (collisions sum, as in the classic hashing trick).
    pub fn bag_of_words<S: AsRef<str>>(&self, tokens: &[S]) -> SparseVector {
        SparseVector::from_pairs(
            tokens
                .iter()
                .map(|t| (self.index(t.as_ref()), 1.0))
                .collect(),
        )
    }

    /// Hash named `(feature, value)` pairs.
    pub fn weighted<S: AsRef<str>>(&self, feats: &[(S, f64)]) -> SparseVector {
        SparseVector::from_pairs(
            feats
                .iter()
                .map(|(n, v)| (self.index(n.as_ref()), *v))
                .collect(),
        )
    }

    /// Hash a bag of tokens with a namespace prefix (`"title"` and
    /// `"body"` tokens shouldn't collide by construction — the prefix
    /// separates their hash streams).
    pub fn namespaced_bag<S: AsRef<str>>(&self, namespace: &str, tokens: &[S]) -> SparseVector {
        SparseVector::from_pairs(
            tokens
                .iter()
                .map(|t| {
                    let name = format!("{namespace}={}", t.as_ref());
                    (self.index(&name), 1.0)
                })
                .collect(),
        )
    }
}

/// Merge several sparse vectors into one (entries summed).
pub fn concat(vectors: &[SparseVector]) -> SparseVector {
    let mut pairs = Vec::with_capacity(vectors.iter().map(|v| v.nnz()).sum());
    for v in vectors {
        pairs.extend_from_slice(v.entries());
    }
    SparseVector::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference FNV-1a values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hashing_is_deterministic_and_bounded() {
        let h = FeatureHasher::new(1000);
        let i1 = h.index("token=camera");
        let i2 = h.index("token=camera");
        assert_eq!(i1, i2);
        assert!(i1 < 1000);
    }

    #[test]
    fn bag_of_words_counts_repeats() {
        let h = FeatureHasher::new(1 << 16);
        let v = h.bag_of_words(&["a", "b", "a"]);
        assert_eq!(v.get(h.index("a")), 2.0);
        assert_eq!(v.get(h.index("b")), 1.0);
    }

    #[test]
    fn namespaces_separate_streams() {
        let h = FeatureHasher::new(1 << 20);
        let title = h.namespaced_bag("title", &["camera"]);
        let body = h.namespaced_bag("body", &["camera"]);
        // With 2^20 dims these must land on different indices.
        assert_ne!(title.entries()[0].0, body.entries()[0].0);
    }

    #[test]
    fn weighted_features() {
        let h = FeatureHasher::new(1 << 10);
        let v = h.weighted(&[("clicks", 3.5), ("dwell", 0.25)]);
        assert_eq!(v.get(h.index("clicks")), 3.5);
    }

    #[test]
    fn concat_sums_overlaps() {
        let h = FeatureHasher::new(1 << 10);
        let a = h.bag_of_words(&["x"]);
        let b = h.bag_of_words(&["x", "y"]);
        let c = concat(&[a, b]);
        assert_eq!(c.get(h.index("x")), 2.0);
        assert_eq!(c.get(h.index("y")), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_panics() {
        let _ = FeatureHasher::new(0);
    }

    proptest! {
        #[test]
        fn prop_indices_in_range(name in ".{0,40}", dims in 1u32..100_000) {
            let h = FeatureHasher::new(dims);
            prop_assert!(h.index(&name) < dims);
        }

        #[test]
        fn prop_bag_nnz_bounded_by_tokens(tokens in proptest::collection::vec("[a-z]{1,6}", 0..50)) {
            let h = FeatureHasher::new(1 << 18);
            let v = h.bag_of_words(&tokens);
            prop_assert!(v.nnz() <= tokens.len());
            let total: f64 = v.entries().iter().map(|&(_, c)| c).sum();
            prop_assert!((total - tokens.len() as f64).abs() < 1e-9);
        }
    }
}
