//! # drybell-features
//!
//! Feature representations shared by the discriminative models and the
//! serving layer:
//!
//! * [`sparse`] — immutable sorted sparse vectors with the algebra the
//!   linear models need (dot products, scaled accumulation).
//! * [`hashing`] — FNV-1a feature hashing, turning token streams into
//!   fixed-dimension sparse vectors (the "servable features similar to
//!   those used in production" of §6.1 — cheap to compute at serving time).
//! * [`space`] — the feature-space registry that makes *servability* a
//!   first-class, machine-checkable property. §4's cross-feature serving
//!   story hinges on this: labeling functions may read expensive
//!   non-servable spaces (aggregate statistics, NLP model outputs), but a
//!   model staged for production may only read spaces whose declared cost
//!   fits the latency budget.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod hashing;
pub mod space;
pub mod sparse;

pub use hashing::{fnv1a64, FeatureHasher};
pub use space::{FeatureSpace, FeatureSpaceId, SpaceRegistry};
pub use sparse::SparseVector;
