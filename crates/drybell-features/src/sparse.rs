//! Sorted sparse feature vectors.
//!
//! The representation backing the logistic-regression models: a sorted list
//! of `(index, value)` pairs with duplicate indices merged at construction.
//! Sortedness makes dot products and merges linear-time and keeps equality
//! canonical.

use serde::{Deserialize, Serialize};

/// An immutable sparse vector of `f64` features over `u32` indices.
///
/// ```
/// use drybell_features::SparseVector;
/// let a = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
/// assert_eq!(a.entries(), &[(1, 2.0), (3, 1.5)]); // sorted, merged
/// let b = SparseVector::from_pairs(vec![(1, 4.0)]);
/// assert_eq!(a.dot(&b), 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVector {
    /// Sorted by index; no duplicate indices; no explicit zeros unless the
    /// caller inserted them.
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// The empty vector.
    pub fn empty() -> SparseVector {
        SparseVector::default()
    }

    /// Build from arbitrary `(index, value)` pairs: duplicates are summed,
    /// the result is sorted.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> SparseVector {
        pairs.sort_by_key(|&(i, _)| i);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match entries.last_mut() {
                Some((last_i, last_v)) if *last_i == i => *last_v += v,
                _ => entries.push((i, v)),
            }
        }
        SparseVector { entries }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored `(index, value)` pairs, sorted by index.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Value at `index` (zero if absent). Binary search, `O(log nnz)`.
    pub fn get(&self, index: u32) -> f64 {
        self.entries
            .binary_search_by_key(&index, |&(i, _)| i)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }

    /// Dot product with another sparse vector (linear merge).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut sum = 0.0;
        while a < self.entries.len() && b < other.entries.len() {
            let (ia, va) = self.entries[a];
            let (ib, vb) = other.entries[b];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    sum += va * vb;
                    a += 1;
                    b += 1;
                }
            }
        }
        sum
    }

    /// Dot product against a dense weight slice; indices past the end of
    /// `weights` contribute zero.
    pub fn dot_dense(&self, weights: &[f64]) -> f64 {
        self.entries
            .iter()
            .filter_map(|&(i, v)| weights.get(i as usize).map(|w| w * v))
            .sum()
    }

    /// Accumulate `scale * self` into a dense buffer (grows `buf` as
    /// needed).
    pub fn add_scaled_into(&self, scale: f64, buf: &mut Vec<f64>) {
        if let Some(&(max_i, _)) = self.entries.last() {
            if buf.len() <= max_i as usize {
                buf.resize(max_i as usize + 1, 0.0);
            }
        }
        for &(i, v) in &self.entries {
            buf[i as usize] += scale * v;
        }
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }

    /// A copy scaled so the L2 norm is 1 (no-op for the zero vector).
    pub fn l2_normalized(&self) -> SparseVector {
        let norm = self.norm_sq().sqrt();
        if norm == 0.0 {
            return self.clone();
        }
        SparseVector {
            entries: self.entries.iter().map(|&(i, v)| (i, v / norm)).collect(),
        }
    }

    /// Largest stored index plus one (0 for the empty vector).
    pub fn dim_bound(&self) -> usize {
        self.entries
            .last()
            .map(|&(i, _)| i as usize + 1)
            .unwrap_or(0)
    }
}

impl FromIterator<(u32, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> SparseVector {
        SparseVector::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVector::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (0, 1.0)]);
        assert_eq!(v.entries(), &[(0, 1.0), (2, 2.0), (5, 4.0)]);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.get(5), 4.0);
        assert_eq!(v.get(1), 0.0);
        assert_eq!(v.dim_bound(), 6);
    }

    #[test]
    fn dot_products() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = SparseVector::from_pairs(vec![(2, 5.0), (3, 7.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
        assert_eq!(b.dot(&a), a.dot(&b));
        assert_eq!(a.dot(&SparseVector::empty()), 0.0);
        let w = vec![1.0, 0.0, 0.5, 0.0, 2.0];
        assert_eq!(a.dot_dense(&w), 1.0 + 1.0 + 6.0);
        // Weights shorter than the max index: missing dims contribute 0.
        assert_eq!(a.dot_dense(&[1.0]), 1.0);
    }

    #[test]
    fn add_scaled_grows_buffer() {
        let a = SparseVector::from_pairs(vec![(1, 2.0), (3, -1.0)]);
        let mut buf = vec![0.0; 2];
        a.add_scaled_into(0.5, &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 0.0, -0.5]);
    }

    #[test]
    fn normalization() {
        let a = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        let n = a.l2_normalized();
        assert!((n.norm_sq() - 1.0).abs() < 1e-12);
        assert!((n.get(0) - 0.6).abs() < 1e-12);
        let z = SparseVector::empty().l2_normalized();
        assert!(z.is_empty());
    }

    proptest! {
        #[test]
        fn prop_from_pairs_is_canonical(pairs in proptest::collection::vec((0u32..100, -10.0..10.0f64), 0..60)) {
            let v = SparseVector::from_pairs(pairs.clone());
            // Sorted, unique indices.
            for w in v.entries().windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            // Values equal the sum per index.
            for &(i, val) in v.entries() {
                let want: f64 = pairs.iter().filter(|&&(j, _)| j == i).map(|&(_, x)| x).sum();
                prop_assert!((val - want).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_dot_commutes_and_matches_dense(
            a in proptest::collection::vec((0u32..50, -5.0..5.0f64), 0..30),
            b in proptest::collection::vec((0u32..50, -5.0..5.0f64), 0..30),
        ) {
            let va = SparseVector::from_pairs(a);
            let vb = SparseVector::from_pairs(b);
            prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
            let mut dense = Vec::new();
            vb.add_scaled_into(1.0, &mut dense);
            prop_assert!((va.dot(&vb) - va.dot_dense(&dense)).abs() < 1e-9);
        }

        #[test]
        fn prop_norm_nonnegative(pairs in proptest::collection::vec((0u32..50, -5.0..5.0f64), 0..30)) {
            let v = SparseVector::from_pairs(pairs);
            prop_assert!(v.norm_sq() >= 0.0);
            let n = v.l2_normalized();
            if v.norm_sq() > 1e-12 {
                prop_assert!((n.norm_sq() - 1.0).abs() < 1e-9);
            }
        }
    }
}
