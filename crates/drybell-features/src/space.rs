//! Feature-space registry: servability as a checkable property.
//!
//! §4 of the paper distinguishes *non-servable* feature sets ("too slow,
//! expensive, or private to use in production" — aggregate statistics,
//! expensive model inference, web-crawl results) from *servable* ones
//! (real-time event-level signals, cheap hashed text features). Labeling
//! functions may read anything; production models may not. This module
//! gives each feature set a declaration — name, servability, per-example
//! cost, privacy flag — so `drybell-serving` can *enforce* the distinction
//! instead of trusting engineers to remember it.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a registered feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeatureSpaceId(pub u32);

/// Declaration of one feature space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpace {
    /// Unique name, e.g. `"hashed-unigrams"` or `"nlp-entities"`.
    pub name: String,
    /// Whether production serving may read this space.
    pub servable: bool,
    /// Declared cost of computing the features for one example, in
    /// microseconds. Serving checks the *sum* over a model's spaces
    /// against the latency budget.
    pub cost_us: u64,
    /// Private data (aggregate user statistics etc.) must never leave the
    /// offline environment regardless of cost.
    pub private: bool,
}

impl FeatureSpace {
    /// A servable space with the given per-example cost.
    pub fn servable(name: &str, cost_us: u64) -> FeatureSpace {
        FeatureSpace {
            name: name.to_owned(),
            servable: true,
            cost_us,
            private: false,
        }
    }

    /// A non-servable space (too slow/expensive for production).
    pub fn non_servable(name: &str, cost_us: u64) -> FeatureSpace {
        FeatureSpace {
            name: name.to_owned(),
            servable: false,
            cost_us,
            private: false,
        }
    }

    /// A private space (never servable, independent of cost).
    pub fn private(name: &str, cost_us: u64) -> FeatureSpace {
        FeatureSpace {
            name: name.to_owned(),
            servable: false,
            cost_us,
            private: true,
        }
    }
}

/// Registry of feature spaces for one application.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpaceRegistry {
    spaces: Vec<FeatureSpace>,
    by_name: HashMap<String, FeatureSpaceId>,
}

impl SpaceRegistry {
    /// An empty registry.
    pub fn new() -> SpaceRegistry {
        SpaceRegistry::default()
    }

    /// Register a space; returns its id, or `None` if the name is taken.
    pub fn register(&mut self, space: FeatureSpace) -> Option<FeatureSpaceId> {
        if self.by_name.contains_key(&space.name) {
            return None;
        }
        let id = FeatureSpaceId(self.spaces.len() as u32);
        self.by_name.insert(space.name.clone(), id);
        self.spaces.push(space);
        Some(id)
    }

    /// Space declaration by id.
    pub fn get(&self, id: FeatureSpaceId) -> &FeatureSpace {
        &self.spaces[id.0 as usize]
    }

    /// Space id by name.
    pub fn lookup(&self, name: &str) -> Option<FeatureSpaceId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered spaces.
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }

    /// Are *all* the given spaces servable (and none private)?
    pub fn all_servable(&self, ids: &[FeatureSpaceId]) -> bool {
        ids.iter().all(|&id| {
            let s = self.get(id);
            s.servable && !s.private
        })
    }

    /// Total declared per-example cost of the given spaces.
    pub fn total_cost_us(&self, ids: &[FeatureSpaceId]) -> u64 {
        ids.iter().map(|&id| self.get(id).cost_us).sum()
    }

    /// The spaces (by name) that block serving: non-servable or private.
    pub fn blocking_spaces(&self, ids: &[FeatureSpaceId]) -> Vec<&str> {
        ids.iter()
            .filter_map(|&id| {
                let s = self.get(id);
                (!s.servable || s.private).then_some(s.name.as_str())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> (
        SpaceRegistry,
        FeatureSpaceId,
        FeatureSpaceId,
        FeatureSpaceId,
    ) {
        let mut r = SpaceRegistry::new();
        let text = r
            .register(FeatureSpace::servable("hashed-unigrams", 40))
            .unwrap();
        let nlp = r
            .register(FeatureSpace::non_servable("nlp-entities", 50_000))
            .unwrap();
        let agg = r
            .register(FeatureSpace::private("aggregate-stats", 5))
            .unwrap();
        (r, text, nlp, agg)
    }

    #[test]
    fn register_and_lookup() {
        let (r, text, nlp, _) = registry();
        assert_eq!(r.lookup("hashed-unigrams"), Some(text));
        assert_eq!(r.lookup("nlp-entities"), Some(nlp));
        assert_eq!(r.lookup("missing"), None);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(text).cost_us, 40);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut r, _, _, _) = registry();
        assert!(r
            .register(FeatureSpace::servable("hashed-unigrams", 1))
            .is_none());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn servability_checks() {
        let (r, text, nlp, agg) = registry();
        assert!(r.all_servable(&[text]));
        assert!(!r.all_servable(&[text, nlp]));
        // Private spaces block serving even though cost is tiny.
        assert!(!r.all_servable(&[text, agg]));
        assert_eq!(
            r.blocking_spaces(&[text, nlp, agg]),
            vec!["nlp-entities", "aggregate-stats"]
        );
        assert!(r.blocking_spaces(&[text]).is_empty());
    }

    #[test]
    fn cost_accumulates() {
        let (r, text, nlp, agg) = registry();
        assert_eq!(r.total_cost_us(&[text, nlp, agg]), 50_045);
        assert_eq!(r.total_cost_us(&[]), 0);
    }
}
