//! Model check for the serving front-end's epoch-pointer hot swap
//! (`drybell-serving::EpochCell` / `PinnedSpec::refresh`).
//!
//! The protocol: `promote` republishes by swapping the slot and bumping
//! the epoch inside ONE critical section; a scoring worker's steady
//! state is a single unlocked epoch load, and only on a changed epoch
//! does it take the slot lock and re-read **both** the slot and the
//! epoch under that lock. The model mirrors each critical section as
//! one atomic step and explores every interleaving, proving every
//! response can be attributed to exactly one published (epoch, version)
//! pair — never a torn pairing.
//!
//! The `broken` variants pin the bug the under-lock re-read prevents:
//! pairing the *pre-lock* epoch with the *locked* slot read tears when
//! a second publish lands between the load and the lock.

use drybell_modelcheck::{explore, ModelThread};

/// Mirror of one `EpochCell` plus per-reader refresh progress.
#[derive(Clone)]
struct SwapModel {
    /// The cell's epoch counter (starts at 1, like `EpochCell::new`).
    epoch: u64,
    /// Version of the spec currently in the slot.
    slot: u32,
    /// Every (epoch, version) pairing a publish made legal.
    published: Vec<(u64, u32)>,
    /// Per-reader: the unlocked epoch load, between steps A and B.
    observed: Vec<Option<u64>>,
    /// Per-reader pinned (epoch, version) — what scoring attributes
    /// responses to.
    pinned: Vec<(u64, u32)>,
}

impl SwapModel {
    fn new(readers: usize) -> SwapModel {
        SwapModel {
            epoch: 1,
            slot: 1,
            published: vec![(1, 1)],
            observed: vec![None; readers],
            pinned: vec![(1, 1); readers],
        }
    }

    /// `EpochCell::publish`: one critical section — swap the slot and
    /// bump the epoch while holding the slot lock.
    fn publish(&mut self, version: u32) {
        self.slot = version;
        self.epoch += 1;
        self.published.push((self.epoch, version));
    }

    /// Reader step A (`PinnedSpec::refresh`, before the lock): one
    /// Acquire epoch load, no lock taken.
    fn reader_load(&mut self, r: usize) {
        let epoch = self.epoch;
        if let Some(slot) = self.observed.get_mut(r) {
            *slot = Some(epoch);
        }
    }

    /// Reader step B as shipped: on a changed epoch, take the slot lock
    /// and re-read BOTH the slot and the epoch under it.
    fn reader_refresh_fixed(&mut self, r: usize) {
        let Some(observed) = self.observed.get_mut(r).and_then(Option::take) else {
            return;
        };
        if observed == self.pinned[r].0 {
            return; // steady state: no lock, keep the pinned snapshot
        }
        // -- slot lock held: both reads see one consistent publish.
        let (slot, epoch) = (self.slot, self.epoch);
        self.pinned[r] = (epoch, slot);
    }

    /// Reader step B with the tear: reuse the pre-lock epoch load as
    /// the pinned epoch while reading the slot under the lock.
    fn reader_refresh_broken(&mut self, r: usize) {
        let Some(observed) = self.observed.get_mut(r).and_then(Option::take) else {
            return;
        };
        if observed == self.pinned[r].0 {
            return;
        }
        let slot = self.slot;
        self.pinned[r] = (observed, slot);
    }

    /// The attribution invariant: every pinned pair must be one a
    /// publish actually made current.
    fn no_torn_pins(&self) -> Option<String> {
        for (r, pin) in self.pinned.iter().enumerate() {
            if !self.published.contains(pin) {
                return Some(format!(
                    "reader {r} pinned unpublished pair (epoch {}, v{})",
                    pin.0, pin.1
                ));
            }
        }
        None
    }
}

fn publisher(name: &'static str, version: u32) -> ModelThread<SwapModel> {
    ModelThread::new(
        name,
        vec![Box::new(move |s: &mut SwapModel| s.publish(version))],
    )
}

fn reader(name: &'static str, r: usize, fixed: bool) -> ModelThread<SwapModel> {
    let refresh = move |s: &mut SwapModel| {
        if fixed {
            s.reader_refresh_fixed(r);
        } else {
            s.reader_refresh_broken(r);
        }
    };
    ModelThread::new(
        name,
        vec![
            Box::new(move |s: &mut SwapModel| s.reader_load(r)),
            Box::new(refresh),
        ],
    )
}

#[test]
fn hot_swap_refresh_is_race_free_under_all_interleavings() {
    // Two promotions racing one refreshing scorer: wherever the refresh
    // lands, the pinned (epoch, version) is one some publish created.
    let threads = vec![
        publisher("publish_v2", 2),
        publisher("publish_v3", 3),
        reader("reader", 0, true),
    ];
    let stats = explore(&SwapModel::new(1), &threads, &|s| s.no_torn_pins(), &|_| {
        None
    })
    .unwrap_or_else(|v| panic!("hot swap violated: {v}"));
    // 4 steps over 3 threads, exhaustively scheduled.
    assert_eq!(stats.interleavings, 12); // 4! / (1!·1!·2!)
}

#[test]
fn hot_swap_holds_with_concurrent_readers() {
    // Two scorers refreshing independently against the same promotion
    // race: attribution stays exact for both, on every schedule.
    let threads = vec![
        publisher("publish_v2", 2),
        publisher("publish_v3", 3),
        reader("r0", 0, true),
        reader("r1", 1, true),
    ];
    let stats = explore(&SwapModel::new(2), &threads, &|s| s.no_torn_pins(), &|s| {
        // Epochs are still monotone and dense at quiescence.
        (s.epoch != 3).then(|| format!("expected final epoch 3, got {}", s.epoch))
    })
    .unwrap_or_else(|v| panic!("hot swap violated: {v}"));
    assert_eq!(stats.interleavings, 180); // 6! / (1!·1!·2!·2!)
}

#[test]
fn reusing_the_prelock_epoch_tears_under_a_racing_promote() {
    // The bug the under-lock re-read exists to prevent: the reader
    // observes epoch 2 (after publish_v2), publish_v3 lands before the
    // reader takes the slot lock, and the broken refresh pins
    // (epoch 2, v3) — a pairing no publish ever made current.
    let threads = vec![
        publisher("publish_v2", 2),
        publisher("publish_v3", 3),
        reader("reader", 0, false),
    ];
    let violation = explore(&SwapModel::new(1), &threads, &|s| s.no_torn_pins(), &|_| {
        None
    })
    .expect_err("the torn schedule must be found");
    assert!(
        violation.message.contains("unpublished pair (epoch 2, v3)"),
        "unexpected violation: {violation}"
    );
    assert_eq!(
        violation.schedule,
        ["publish_v2", "reader", "publish_v3", "reader"]
    );
}
