//! Model checks for the workspace's two lock-composition protocols:
//! the dataflow counter merge and the cached NLP server's two-phase
//! annotate. Each model mirrors its implementation step-for-step, one
//! model step per critical section (or thread-local action), and is
//! checked over **every** interleaving.

use drybell_modelcheck::{explore, explore_final, ModelThread};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Counters: local tallies merged under one lock (drybell-dataflow)
// ---------------------------------------------------------------------------

/// Mirror of `Counters` + per-worker `CounterHandle`s: workers tally
/// into thread-local maps (no lock), then `flush` merges the whole
/// tally in one critical section.
#[derive(Clone, Default)]
struct CountersModel {
    global: BTreeMap<&'static str, u64>,
    locals: Vec<BTreeMap<&'static str, u64>>,
}

impl CountersModel {
    fn with_workers(n: usize) -> CountersModel {
        CountersModel {
            global: BTreeMap::new(),
            locals: vec![BTreeMap::new(); n],
        }
    }

    fn local_inc(&mut self, worker: usize, name: &'static str) {
        if let Some(local) = self.locals.get_mut(worker) {
            *local.entry(name).or_insert(0) += 1;
        }
    }

    /// One critical section: merge and clear the worker's tally
    /// (`Counters::merge` called from `CounterHandle::flush`).
    fn flush(&mut self, worker: usize) {
        if let Some(local) = self.locals.get_mut(worker) {
            let drained = std::mem::take(local);
            for (name, n) in drained {
                *self.global.entry(name).or_insert(0) += n;
            }
        }
    }
}

#[test]
fn counter_merge_is_exact_under_all_interleavings() {
    // Three workers, overlapping counter names, interleaved flushes —
    // including a mid-stream flush (worker 2 flushes between tallies,
    // like a long-lived handle would on an explicit flush() call).
    let threads: Vec<ModelThread<CountersModel>> = vec![
        ModelThread::new(
            "w0",
            vec![
                Box::new(|s: &mut CountersModel| s.local_inc(0, "nlp_calls")),
                Box::new(|s: &mut CountersModel| s.local_inc(0, "votes/kw")),
                Box::new(|s: &mut CountersModel| s.flush(0)),
            ],
        ),
        ModelThread::new(
            "w1",
            vec![
                Box::new(|s: &mut CountersModel| s.local_inc(1, "nlp_calls")),
                Box::new(|s: &mut CountersModel| s.local_inc(1, "nlp_calls")),
                Box::new(|s: &mut CountersModel| s.flush(1)),
            ],
        ),
        ModelThread::new(
            "w2",
            vec![
                Box::new(|s: &mut CountersModel| s.local_inc(2, "votes/kw")),
                Box::new(|s: &mut CountersModel| s.flush(2)),
                Box::new(|s: &mut CountersModel| s.local_inc(2, "votes/kw")),
                Box::new(|s: &mut CountersModel| s.flush(2)),
            ],
        ),
    ];
    let stats = explore_final(&CountersModel::with_workers(3), &threads, &|s| {
        let nlp = s.global.get("nlp_calls").copied().unwrap_or(0);
        let votes = s.global.get("votes/kw").copied().unwrap_or(0);
        if nlp != 3 || votes != 3 {
            return Some(format!("expected 3/3, got nlp={nlp} votes={votes}"));
        }
        if s.locals.iter().any(|l| !l.is_empty()) {
            return Some("unflushed local tally".to_string());
        }
        None
    })
    .unwrap_or_else(|v| panic!("counter merge violated: {v}"));
    // 10 steps over 3 threads: the search is genuinely exhaustive.
    assert_eq!(stats.interleavings, 4200); // 10! / (3!·3!·4!)
}

// ---------------------------------------------------------------------------
// Cached NLP server: lookup / compute / insert-or-evict (drybell-nlp)
// ---------------------------------------------------------------------------

/// Mirror of `CachedNlpServer`'s `CacheState` plus per-thread
/// annotate-call progress. The value type is irrelevant to the
/// protocol, so entries are just keys.
#[derive(Clone)]
struct CacheModel {
    capacity: usize,
    map: BTreeMap<u64, ()>,
    ring: Vec<u64>,
    cursor: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Per-thread: `Some(key)` between a missed lookup and its insert.
    pending: Vec<Option<u64>>,
    finished: u64,
}

impl CacheModel {
    fn new(capacity: usize, threads: usize) -> CacheModel {
        CacheModel {
            capacity,
            map: BTreeMap::new(),
            ring: Vec::new(),
            cursor: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            pending: vec![None; threads],
            finished: 0,
        }
    }

    /// Critical section 1 of `annotate`: hit → done, miss → compute.
    fn lookup(&mut self, thread: usize, key: u64) {
        if self.map.contains_key(&key) {
            self.hits += 1;
            self.finished += 1;
        } else {
            self.misses += 1;
            if let Some(p) = self.pending.get_mut(thread) {
                *p = Some(key);
            }
        }
    }

    /// Critical section 2, as shipped before the double-miss fix: no
    /// re-check, so a concurrent inserter of the same key leads to a
    /// duplicate ring entry.
    fn insert_without_recheck(&mut self, thread: usize) {
        let Some(key) = self.pending.get_mut(thread).and_then(Option::take) else {
            return;
        };
        self.insert_body(key);
        self.finished += 1;
    }

    /// Critical section 2 as shipped: re-check the map first, because
    /// another worker may have missed on the same key concurrently and
    /// inserted while this one was computing.
    fn insert_with_recheck(&mut self, thread: usize) {
        let Some(key) = self.pending.get_mut(thread).and_then(Option::take) else {
            return;
        };
        if !self.map.contains_key(&key) {
            self.insert_body(key);
        }
        self.finished += 1;
    }

    fn insert_body(&mut self, key: u64) {
        if self.map.len() >= self.capacity {
            if let Some(slot) = self.ring.get_mut(self.cursor) {
                self.map.remove(&*slot);
                *slot = key;
            }
            self.cursor = (self.cursor + 1) % self.capacity;
            self.evictions += 1;
        } else {
            self.ring.push(key);
        }
        self.map.insert(key, ());
    }

    /// The structural invariants `CachedNlpServer` relies on: the ring
    /// is exactly the map's key set (so eviction always frees a real
    /// entry) and the table never exceeds capacity.
    fn structural_invariant(&self) -> Option<String> {
        if self.map.len() > self.capacity {
            return Some(format!(
                "capacity exceeded: {} > {}",
                self.map.len(),
                self.capacity
            ));
        }
        if self.ring.len() != self.map.len() {
            return Some(format!(
                "ring/map divergence: ring {} vs map {}",
                self.ring.len(),
                self.map.len()
            ));
        }
        if self.ring.iter().any(|k| !self.map.contains_key(k)) {
            return Some("stale ring slot (key not in map)".to_string());
        }
        None
    }
}

fn annotate_thread(
    name: &'static str,
    thread: usize,
    key: u64,
    recheck: bool,
) -> ModelThread<CacheModel> {
    let insert = move |s: &mut CacheModel| {
        if recheck {
            s.insert_with_recheck(thread);
        } else {
            s.insert_without_recheck(thread);
        }
    };
    ModelThread::new(
        name,
        vec![
            Box::new(move |s: &mut CacheModel| s.lookup(thread, key)),
            Box::new(insert),
        ],
    )
}

#[test]
fn cache_double_miss_without_recheck_breaks_the_ring() {
    // Two threads annotate the same text concurrently; both miss and
    // both insert. Without the re-check the second insert duplicates
    // the ring entry — the explorer reports the exact schedule.
    let threads = vec![
        annotate_thread("t0", 0, 7, false),
        annotate_thread("t1", 1, 7, false),
    ];
    let violation = explore(
        &CacheModel::new(2, 2),
        &threads,
        &|s| s.structural_invariant(),
        &|_| None,
    )
    .expect_err("the double-miss schedule must be found");
    assert!(
        violation.message.contains("ring/map divergence"),
        "unexpected violation: {violation}"
    );
    assert_eq!(violation.schedule, ["t0", "t1", "t0", "t1"]);
}

#[test]
fn cache_annotate_with_recheck_holds_invariants_everywhere() {
    // Same-key contention plus a third thread forcing eviction at
    // capacity 1: every interleaving keeps the structure legal and
    // every call completes with hits + misses == calls.
    let threads = vec![
        annotate_thread("t0", 0, 7, true),
        annotate_thread("t1", 1, 7, true),
        annotate_thread("t2", 2, 9, true),
    ];
    let stats = explore(
        &CacheModel::new(1, 3),
        &threads,
        &|s| s.structural_invariant(),
        &|s| {
            if s.finished != 3 {
                return Some(format!("{} of 3 calls completed", s.finished));
            }
            if s.hits + s.misses != 3 {
                return Some(format!("stats drift: {} + {} != 3", s.hits, s.misses));
            }
            None
        },
    )
    .unwrap_or_else(|v| panic!("cache protocol violated: {v}"));
    assert_eq!(stats.interleavings, 90); // 6! / (2!·2!·2!)
}

#[test]
fn cache_eviction_cycles_hold_at_larger_capacity() {
    // Distinct keys rolling through a capacity-2 table: eviction takes
    // over after the table fills, and the bound holds on every path.
    let threads = vec![
        annotate_thread("a", 0, 1, true),
        annotate_thread("b", 1, 2, true),
        annotate_thread("c", 2, 3, true),
    ];
    let stats = explore(
        &CacheModel::new(2, 3),
        &threads,
        &|s| s.structural_invariant(),
        &|s| (s.map.len() != 2).then(|| format!("expected a full table, got {}", s.map.len())),
    )
    .unwrap_or_else(|v| panic!("eviction model violated: {v}"));
    assert_eq!(stats.interleavings, 90);
}
