//! Model checks for the telemetry hot path's two protocols
//! (`drybell-obs`): the journal's sequence-number/write composition
//! and the thread-local shard flush/merge.
//!
//! The journal model exists in two versions. The *two-phase* one
//! mirrors the original implementation — seq allocation and line
//! write were separate critical sections (an atomic counter, then a
//! writer mutex) — and the explorer must **find** the interleaving
//! where a later seq lands in the file first. The *single-section*
//! one mirrors the current implementation (one `Mutex<JournalState>`
//! assigns the seq and appends the line together, `emit_batch` doing
//! so for a whole slice) and must hold over every schedule. The shard
//! model proves flush/merge loses no updates and that the
//! ordinal-keyed `ShardGroup` fold is schedule-independent.

use drybell_modelcheck::{explore, ModelThread};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Journal: seq allocation vs line write
// ---------------------------------------------------------------------------

/// Shared journal state: a seq counter, the written lines (in file
/// order), and per-thread scratch for the two-phase variant's
/// "allocated but not yet written" seq.
#[derive(Clone, Default)]
struct JournalModel {
    next_seq: u64,
    lines: Vec<u64>,
    pending: Vec<Option<u64>>,
}

impl JournalModel {
    fn with_threads(n: usize) -> JournalModel {
        JournalModel {
            next_seq: 0,
            lines: Vec::new(),
            pending: vec![None; n],
        }
    }

    /// Two-phase emit, step 1: allocate a seq (the old atomic
    /// `fetch_add`) without writing.
    fn alloc(&mut self, thread: usize) {
        if let Some(slot) = self.pending.get_mut(thread) {
            *slot = Some(self.next_seq);
            self.next_seq += 1;
        }
    }

    /// Two-phase emit, step 2: take the writer lock and append.
    fn write_pending(&mut self, thread: usize) {
        if let Some(seq) = self.pending.get_mut(thread).and_then(Option::take) {
            self.lines.push(seq);
        }
    }

    /// Current protocol: one critical section does both.
    fn emit(&mut self, _thread: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lines.push(seq);
    }

    /// `emit_batch`: one critical section assigns `n` consecutive
    /// seqs and appends all `n` lines.
    fn emit_batch(&mut self, _thread: usize, n: u64) {
        for _ in 0..n {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.lines.push(seq);
        }
    }

    /// Written seqs must appear in the file in increasing order.
    fn in_order(&self) -> Option<String> {
        self.lines
            .windows(2)
            .find(|w| w[0] > w[1])
            .map(|w| format!("seq {} written after seq {}", w[1], w[0]))
    }
}

#[test]
fn two_phase_emit_reorders_lines() {
    let threads: Vec<ModelThread<JournalModel>> = vec![
        ModelThread::new(
            "a",
            vec![
                Box::new(|s: &mut JournalModel| s.alloc(0)),
                Box::new(|s: &mut JournalModel| s.write_pending(0)),
            ],
        ),
        ModelThread::new(
            "b",
            vec![
                Box::new(|s: &mut JournalModel| s.alloc(1)),
                Box::new(|s: &mut JournalModel| s.write_pending(1)),
            ],
        ),
    ];
    let violation = explore(
        &JournalModel::with_threads(2),
        &threads,
        &|s| s.in_order(),
        &|_| None,
    )
    .expect_err("the two-phase protocol must admit an out-of-order write");
    assert!(violation.message.contains("written after"));
}

#[test]
fn single_critical_section_emit_keeps_seq_order() {
    let threads: Vec<ModelThread<JournalModel>> = vec![
        ModelThread::new(
            "a",
            vec![
                Box::new(|s: &mut JournalModel| s.emit(0)),
                Box::new(|s: &mut JournalModel| s.emit(0)),
            ],
        ),
        ModelThread::new(
            "b",
            vec![Box::new(|s: &mut JournalModel| s.emit_batch(1, 3))],
        ),
        ModelThread::new(
            "c",
            vec![Box::new(|s: &mut JournalModel| s.emit_batch(2, 2))],
        ),
    ];
    let stats = explore(
        &JournalModel::with_threads(3),
        &threads,
        &|s| s.in_order(),
        &|s| {
            if s.lines.len() == 7 {
                None
            } else {
                Some(format!("expected 7 lines, journal has {}", s.lines.len()))
            }
        },
    )
    .expect("single-critical-section emit is order-safe");
    assert!(stats.interleavings > 1);
}

// ---------------------------------------------------------------------------
// Shards: thread-local tallies, flushed at a boundary
// ---------------------------------------------------------------------------

/// Mirror of `LocalShard` + `Telemetry`: per-worker counter tallies
/// and histogram sample buffers (thread-local, no lock), flushed as
/// two critical sections — the counter merge (one atomic add per
/// instrument) and the histogram merge (one lock per instrument).
#[derive(Clone, Default)]
struct ShardModel {
    counter: u64,
    samples: Vec<u64>,
    local_counts: Vec<u64>,
    local_samples: Vec<Vec<u64>>,
}

impl ShardModel {
    fn with_workers(n: usize) -> ShardModel {
        ShardModel {
            counter: 0,
            samples: Vec::new(),
            local_counts: vec![0; n],
            local_samples: vec![Vec::new(); n],
        }
    }

    /// Thread-local: `LocalShard::tally` + `LocalShard::observe`.
    fn observe_row(&mut self, worker: usize, sample: u64) {
        if let Some(c) = self.local_counts.get_mut(worker) {
            *c += 1;
        }
        if let Some(s) = self.local_samples.get_mut(worker) {
            s.push(sample);
        }
    }

    /// Critical section 1 of `flush_into`: counter `fetch_add`.
    fn flush_counter(&mut self, worker: usize) {
        if let Some(c) = self.local_counts.get_mut(worker) {
            self.counter += std::mem::take(c);
        }
    }

    /// Critical section 2 of `flush_into`: histogram `merge_local`.
    fn flush_samples(&mut self, worker: usize) {
        if let Some(s) = self.local_samples.get_mut(worker) {
            self.samples.append(&mut std::mem::take(s));
        }
    }

    /// Nothing is ever double-counted, under any schedule.
    fn never_overshoots(&self, max: u64) -> Option<String> {
        (self.counter > max).then(|| format!("counter {} exceeds total work {max}", self.counter))
    }
}

#[test]
fn shard_flush_merge_loses_no_updates() {
    // Two workers, three rows each; worker 0 flushes mid-stream and
    // again at the end (a shard is reusable), worker 1 once at drop.
    let threads: Vec<ModelThread<ShardModel>> = vec![
        ModelThread::new(
            "w0",
            vec![
                Box::new(|s: &mut ShardModel| s.observe_row(0, 10)),
                Box::new(|s: &mut ShardModel| s.flush_counter(0)),
                Box::new(|s: &mut ShardModel| s.flush_samples(0)),
                Box::new(|s: &mut ShardModel| s.observe_row(0, 11)),
                Box::new(|s: &mut ShardModel| s.observe_row(0, 12)),
                Box::new(|s: &mut ShardModel| s.flush_counter(0)),
                Box::new(|s: &mut ShardModel| s.flush_samples(0)),
            ],
        ),
        ModelThread::new(
            "w1",
            vec![
                Box::new(|s: &mut ShardModel| s.observe_row(1, 20)),
                Box::new(|s: &mut ShardModel| s.observe_row(1, 21)),
                Box::new(|s: &mut ShardModel| s.observe_row(1, 22)),
                Box::new(|s: &mut ShardModel| s.flush_counter(1)),
                Box::new(|s: &mut ShardModel| s.flush_samples(1)),
            ],
        ),
    ];
    let stats = explore(
        &ShardModel::with_workers(2),
        &threads,
        &|s| s.never_overshoots(6),
        &|s| {
            if s.counter != 6 {
                return Some(format!("lost updates: counter {} != 6", s.counter));
            }
            let mut sorted = s.samples.clone();
            sorted.sort_unstable();
            if sorted != [10, 11, 12, 20, 21, 22] {
                return Some(format!("histogram content drifted: {sorted:?}"));
            }
            None
        },
    )
    .expect("flush/merge is exact under all interleavings");
    assert!(stats.interleavings > 100);
}

// ---------------------------------------------------------------------------
// ShardGroup: ordinal-keyed commit, deterministic fold
// ---------------------------------------------------------------------------

/// Mirror of `ShardGroup`: workers commit their buffered journal
/// events under the group's lock keyed by shard ordinal; the fold
/// walks ordinals in order, so the folded journal is independent of
/// commit timing.
#[derive(Clone, Default)]
struct GroupModel {
    committed: BTreeMap<usize, Vec<&'static str>>,
}

impl GroupModel {
    /// One critical section: `ShardGroup::commit(ordinal, shard)`.
    fn commit(&mut self, ordinal: usize, events: &[&'static str]) {
        self.committed.entry(ordinal).or_default().extend(events);
    }

    /// `fold_into`: concatenate in ordinal order.
    fn fold(&self) -> Vec<&'static str> {
        self.committed.values().flatten().copied().collect()
    }
}

#[test]
fn shard_group_fold_is_commit_order_independent() {
    let threads: Vec<ModelThread<GroupModel>> = vec![
        ModelThread::new(
            "w0",
            vec![Box::new(|s: &mut GroupModel| s.commit(0, &["a0", "a1"]))],
        ),
        ModelThread::new(
            "w1",
            vec![Box::new(|s: &mut GroupModel| s.commit(1, &["b0"]))],
        ),
        ModelThread::new(
            "w2",
            vec![Box::new(|s: &mut GroupModel| s.commit(2, &["c0", "c1"]))],
        ),
    ];
    let stats = explore(&GroupModel::default(), &threads, &|_| None, &|s| {
        let folded = s.fold();
        if folded == ["a0", "a1", "b0", "c0", "c1"] {
            None
        } else {
            Some(format!("fold order depends on schedule: {folded:?}"))
        }
    })
    .expect("ordinal-keyed fold is schedule-independent");
    assert_eq!(stats.interleavings, 6, "3! commit orders");
}
