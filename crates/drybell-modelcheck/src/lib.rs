//! Exhaustive-interleaving model checking for DryBell's small
//! concurrent cores.
//!
//! The concurrency in this workspace is deliberately coarse: shared
//! state sits behind a mutex, and every lock-protected region is short.
//! What can still go wrong is the *composition* of critical sections —
//! [`drybell_nlp`]'s cached NLP server takes its lock twice per
//! annotate call (lookup, then insert/evict), and the dataflow
//! counters batch locally before merging. Those protocols have
//! interleaving-dependent behavior that unit tests exercise only on
//! the schedules the OS happens to produce.
//!
//! This crate checks such protocols the loom way, without the
//! dependency: model each thread as a sequence of *atomic steps*
//! (one step = one critical section, or one thread-local action) over
//! a cloneable model state, then run **every** interleaving of those
//! steps, checking invariants after each step and acceptance at the
//! end. For the handful of steps our protocols have, the schedule
//! space is tiny (tens to thousands of interleavings) and the check is
//! exact: a reported violation comes with the exact schedule that
//! produced it, and a pass is a proof over all schedules — not a
//! lucky run.
//!
//! The models live in this crate's tests, so `cargo test` (tier 1)
//! proves the protocols on every commit; the `ThreadSanitizer` CI job
//! covers the complementary question (data races in the real
//! implementations) that a model cannot.

/// One atomic step of a model thread: a mutation of the shared model
/// state that the schedule cannot interrupt.
pub type Step<S> = Box<dyn Fn(&mut S)>;

/// One model thread: a name for diagnostics plus an ordered list of
/// atomic steps. Each step mutates the shared model state; atomicity
/// is the modeling assumption that the corresponding real-code region
/// holds a lock (or touches only thread-local data).
pub struct ModelThread<S> {
    /// Thread name used in violation schedules.
    pub name: &'static str,
    /// The steps, executed in order within the thread.
    pub steps: Vec<Step<S>>,
}

impl<S> ModelThread<S> {
    /// Build a thread from a name and step list.
    pub fn new(name: &'static str, steps: Vec<Step<S>>) -> ModelThread<S> {
        ModelThread { name, steps }
    }
}

/// A property violation, with the exact schedule that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Thread names in the order their steps ran, up to the failure.
    pub schedule: Vec<&'static str>,
    /// What failed.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} under schedule [{}]",
            self.message,
            self.schedule.join(", ")
        )
    }
}

/// Exploration statistics from a passing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete interleavings executed.
    pub interleavings: u64,
    /// Total steps executed across all interleavings.
    pub steps: u64,
}

/// Run every interleaving of `threads` from `initial`.
///
/// `invariant` runs after **every** step; `accept` runs once per
/// complete interleaving on the final state. Both return a description
/// of what broke, or `None`. The first violation aborts the search and
/// is returned with its schedule.
pub fn explore<S: Clone>(
    initial: &S,
    threads: &[ModelThread<S>],
    invariant: &dyn Fn(&S) -> Option<String>,
    accept: &dyn Fn(&S) -> Option<String>,
) -> Result<ExploreStats, Violation> {
    let mut stats = ExploreStats::default();
    let mut pcs = vec![0usize; threads.len()];
    let mut schedule: Vec<&'static str> = Vec::new();
    dfs(
        initial,
        threads,
        invariant,
        accept,
        &mut pcs,
        &mut schedule,
        &mut stats,
    )?;
    Ok(stats)
}

fn dfs<S: Clone>(
    state: &S,
    threads: &[ModelThread<S>],
    invariant: &dyn Fn(&S) -> Option<String>,
    accept: &dyn Fn(&S) -> Option<String>,
    pcs: &mut Vec<usize>,
    schedule: &mut Vec<&'static str>,
    stats: &mut ExploreStats,
) -> Result<(), Violation> {
    let mut any_runnable = false;
    for (t, thread) in threads.iter().enumerate() {
        let pc = pcs.get(t).copied().unwrap_or(usize::MAX);
        let Some(step) = thread.steps.get(pc) else {
            continue;
        };
        any_runnable = true;
        let mut next = state.clone();
        step(&mut next);
        stats.steps += 1;
        schedule.push(thread.name);
        if let Some(msg) = invariant(&next) {
            return Err(Violation {
                schedule: schedule.clone(),
                message: msg,
            });
        }
        if let Some(pc) = pcs.get_mut(t) {
            *pc += 1;
        }
        let result = dfs(&next, threads, invariant, accept, pcs, schedule, stats);
        if let Some(pc) = pcs.get_mut(t) {
            *pc -= 1;
        }
        schedule.pop();
        result?;
    }
    if !any_runnable {
        stats.interleavings += 1;
        if let Some(msg) = accept(state) {
            return Err(Violation {
                schedule: schedule.clone(),
                message: format!("final state rejected: {msg}"),
            });
        }
    }
    Ok(())
}

/// Convenience: no per-step invariant.
pub fn explore_final<S: Clone>(
    initial: &S,
    threads: &[ModelThread<S>],
    accept: &dyn Fn(&S) -> Option<String>,
) -> Result<ExploreStats, Violation> {
    explore(initial, threads, &|_| None, accept)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads twice incrementing a counter atomically: all 6
    /// interleavings end at 4.
    #[test]
    fn atomic_increments_always_sum() {
        let threads: Vec<ModelThread<u64>> = vec![
            ModelThread::new("a", vec![Box::new(|s| *s += 1), Box::new(|s| *s += 1)]),
            ModelThread::new("b", vec![Box::new(|s| *s += 1), Box::new(|s| *s += 1)]),
        ];
        let stats = explore_final(&0u64, &threads, &|s| {
            (*s != 4).then(|| format!("expected 4, got {s}"))
        })
        .expect("no violation");
        assert_eq!(stats.interleavings, 6); // C(4,2)
    }

    /// The classic lost update: read and write split into two steps
    /// (i.e. no lock held across them). The explorer must find it.
    #[test]
    fn split_read_modify_write_loses_updates() {
        #[derive(Clone, Default)]
        struct S {
            shared: u64,
            reg_a: u64,
            reg_b: u64,
        }
        let threads: Vec<ModelThread<S>> = vec![
            ModelThread::new(
                "a",
                vec![
                    Box::new(|s: &mut S| s.reg_a = s.shared),
                    Box::new(|s: &mut S| s.shared = s.reg_a + 1),
                ],
            ),
            ModelThread::new(
                "b",
                vec![
                    Box::new(|s: &mut S| s.reg_b = s.shared),
                    Box::new(|s: &mut S| s.shared = s.reg_b + 1),
                ],
            ),
        ];
        let violation = explore_final(&S::default(), &threads, &|s| {
            (s.shared != 2).then(|| format!("lost update: {}", s.shared))
        })
        .expect_err("the race must be found");
        assert!(violation.message.contains("lost update"));
        // The losing schedule interleaves the two read steps.
        assert_eq!(violation.schedule.first().copied(), Some("a"));
    }

    /// Schedules are reported in execution order and the search is
    /// exhaustive: 3 threads with one step each → 3! interleavings.
    #[test]
    fn counts_all_interleavings() {
        let threads: Vec<ModelThread<u64>> = vec![
            ModelThread::new("x", vec![Box::new(|s| *s += 1)]),
            ModelThread::new("y", vec![Box::new(|s| *s += 1)]),
            ModelThread::new("z", vec![Box::new(|s| *s += 1)]),
        ];
        let stats = explore_final(&0u64, &threads, &|_| None).expect("no violation");
        assert_eq!(stats.interleavings, 6);
        assert_eq!(stats.steps, 6 + 6 + 3); // nodes of the schedule tree at depths 1..=3
    }

    /// Per-step invariants catch transient states that final-state
    /// acceptance would miss.
    #[test]
    fn per_step_invariant_sees_transients() {
        // One thread dips the value negative then restores it.
        let threads: Vec<ModelThread<i64>> = vec![ModelThread::new(
            "dipper",
            vec![Box::new(|s| *s -= 1), Box::new(|s| *s += 2)],
        )];
        assert!(explore_final(&0i64, &threads, &|s| {
            (*s != 1).then(|| format!("bad final {s}"))
        })
        .is_ok());
        let violation = explore(
            &0i64,
            &threads,
            &|s| (*s < 0).then(|| format!("negative transient {s}")),
            &|_| None,
        )
        .expect_err("transient must be caught");
        assert_eq!(violation.schedule, ["dipper"]);
    }
}
