//! Typed errors for the discriminative-model crate.
//!
//! PR 2 swept the workspace's production paths to a no-panic posture;
//! `LogisticRegression::fit` was the straggler, aborting on an empty
//! dataset via `assert!`. Training now degrades with a typed error the
//! caller can route (skip the model, surface a diagnostic) instead of
//! taking the process down.

use std::fmt;

/// Errors raised while training or evaluating discriminative models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlError {
    /// A trainer was handed zero examples.
    EmptyDataset,
    /// An input vector's width does not match the model.
    DimensionMismatch {
        /// The model's input dimension.
        expected: usize,
        /// The offending input's length.
        got: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "input has {got} features, model expects {expected}")
            }
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MlError::EmptyDataset.to_string().contains("empty"));
    }
}
