//! Evaluation metrics.
//!
//! The paper optimizes and reports F1 (§6.1, Table 2) and, "due to the
//! sensitive nature of these applications", reports every content-task
//! number *relative to a baseline* — precision, recall, and F1 normalized
//! by the dev-set-trained classifier's scores, with "lift" the relative F1
//! difference. [`RelativeMetrics`] reproduces that exact presentation, and
//! [`score_histogram`] backs Figure 6's score-distribution comparison.

/// Confusion-matrix-based binary metrics at a fixed threshold.
///
/// ```
/// use drybell_ml::metrics::BinaryMetrics;
/// let m = BinaryMetrics::at_threshold(&[0.9, 0.2, 0.7], &[true, false, false], 0.5);
/// assert_eq!(m.recall(), 1.0);
/// assert_eq!(m.precision(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryMetrics {
    /// Compute from scores and boolean gold labels at `threshold`
    /// (prediction positive iff `score >= threshold`; the paper uses 0.5).
    ///
    /// Panics if the slices differ in length.
    pub fn at_threshold(scores: &[f64], gold: &[bool], threshold: f64) -> BinaryMetrics {
        assert_eq!(scores.len(), gold.len(), "scores vs gold length mismatch");
        let mut m = BinaryMetrics {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&s, &y) in scores.iter().zip(gold) {
            match (s >= threshold, y) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all examples.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Count of predicted positives (the §6.4 "events identified" count).
    pub fn predicted_positives(&self) -> u64 {
        self.tp + self.fp
    }
}

/// Metrics normalized to a baseline, as every content-classification table
/// in the paper reports them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeMetrics {
    /// Precision relative to the baseline's precision (1.0 = parity).
    pub precision: f64,
    /// Recall relative to the baseline's recall.
    pub recall: f64,
    /// F1 relative to the baseline's F1.
    pub f1: f64,
}

impl RelativeMetrics {
    /// Normalize `ours` by `baseline`.
    pub fn versus(ours: &BinaryMetrics, baseline: &BinaryMetrics) -> RelativeMetrics {
        let ratio = |a: f64, b: f64| if b == 0.0 { 0.0 } else { a / b };
        RelativeMetrics {
            precision: ratio(ours.precision(), baseline.precision()),
            recall: ratio(ours.recall(), baseline.recall()),
            f1: ratio(ours.f1(), baseline.f1()),
        }
    }

    /// "Lift" as the paper reports it: relative F1 minus 100%.
    pub fn lift(&self) -> f64 {
        self.f1 - 1.0
    }

    /// Render as the paper's percentage row, e.g. `100.6% 132.1% 117.5%`.
    pub fn row(&self) -> String {
        format!(
            "{:>7.1}% {:>7.1}% {:>7.1}%",
            self.precision * 100.0,
            self.recall * 100.0,
            self.f1 * 100.0
        )
    }
}

/// Histogram of scores over `[0, 1]` with `bins` equal-width buckets
/// (scores of exactly 1.0 fall in the last bucket) — the data behind
/// Figure 6.
pub fn score_histogram(scores: &[f64], bins: usize) -> Vec<u64> {
    assert!(bins > 0, "need at least one bin");
    let mut hist = vec![0u64; bins];
    for &s in scores {
        let b = ((s * bins as f64) as usize).min(bins - 1);
        hist[b] += 1;
    }
    hist
}

/// Render a histogram as a fixed-width ASCII bar chart (for the bench
/// binaries' Figure 6 output).
pub fn render_histogram(hist: &[u64], width: usize) -> String {
    let max = hist.iter().copied().max().unwrap_or(0).max(1);
    let bins = hist.len();
    let mut out = String::new();
    for (i, &count) in hist.iter().enumerate() {
        let lo = i as f64 / bins as f64;
        let hi = (i + 1) as f64 / bins as f64;
        let bar_len = ((count as f64 / max as f64) * width as f64).round() as usize;
        out.push_str(&format!(
            "[{lo:.2},{hi:.2}) {:>8} {}\n",
            count,
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Shannon entropy (nats) of a histogram's normalized distribution —
/// a scalar summary of Figure 6's "smoother distribution" claim (higher
/// entropy = less mass piled at the extremes).
pub fn histogram_entropy(hist: &[u64]) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    hist.iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_classifier() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let gold = [true, true, false, false];
        let m = BinaryMetrics::at_threshold(&scores, &gold, 0.5);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.predicted_positives(), 2);
    }

    #[test]
    fn known_confusion_matrix() {
        // 3 TP, 1 FP, 4 TN, 2 FN.
        let scores = [0.9, 0.9, 0.9, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        let gold = [
            true, true, true, false, true, true, false, false, false, false,
        ];
        let m = BinaryMetrics::at_threshold(&scores, &gold, 0.5);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (3, 1, 4, 2));
        assert!((m.precision() - 0.75).abs() < 1e-12);
        assert!((m.recall() - 0.6).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * 0.6 / 1.35;
        assert!((m.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = BinaryMetrics::at_threshold(&[0.1, 0.2], &[false, false], 0.5);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        let m = BinaryMetrics::at_threshold(&[], &[], 0.5);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn relative_metrics_reproduce_paper_presentation() {
        let baseline = BinaryMetrics {
            tp: 50,
            fp: 50,
            tn: 100,
            fn_: 50,
        };
        let ours = BinaryMetrics {
            tp: 60,
            fp: 40,
            tn: 110,
            fn_: 40,
        };
        let rel = RelativeMetrics::versus(&ours, &baseline);
        assert!((rel.precision - ours.precision() / baseline.precision()).abs() < 1e-12);
        assert!((rel.lift() - (rel.f1 - 1.0)).abs() < 1e-12);
        let row = rel.row();
        assert!(row.contains('%'));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let scores = [0.0, 0.05, 0.5, 0.99, 1.0];
        let hist = score_histogram(&scores, 10);
        assert_eq!(hist.iter().sum::<u64>(), 5);
        assert_eq!(hist[0], 2); // 0.0 and 0.05
        assert_eq!(hist[5], 1); // 0.5
        assert_eq!(hist[9], 2); // 0.99 and the edge case 1.0
    }

    #[test]
    fn entropy_orders_peaked_vs_smooth() {
        let peaked = [1000u64, 0, 0, 0, 0, 0, 0, 0, 0, 1000];
        let smooth = [200u64; 10];
        assert!(histogram_entropy(&smooth) > histogram_entropy(&peaked));
        assert_eq!(histogram_entropy(&[0; 4]), 0.0);
    }

    #[test]
    fn render_has_one_line_per_bin() {
        let hist = [3u64, 0, 7];
        let s = render_histogram(&hist, 20);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("#"));
    }

    proptest! {
        #[test]
        fn prop_metrics_in_unit_interval(
            data in proptest::collection::vec((0.0..1.0f64, any::<bool>()), 0..200),
            threshold in 0.0..1.0f64,
        ) {
            let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
            let gold: Vec<bool> = data.iter().map(|&(_, y)| y).collect();
            let m = BinaryMetrics::at_threshold(&scores, &gold, threshold);
            for v in [m.precision(), m.recall(), m.f1(), m.accuracy()] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            prop_assert_eq!(m.tp + m.fp + m.tn + m.fn_, scores.len() as u64);
        }

        #[test]
        fn prop_histogram_preserves_mass(
            scores in proptest::collection::vec(0.0..=1.0f64, 0..300),
            bins in 1usize..30,
        ) {
            let hist = score_histogram(&scores, bins);
            prop_assert_eq!(hist.len(), bins);
            prop_assert_eq!(hist.iter().sum::<u64>(), scores.len() as u64);
        }

        #[test]
        fn prop_f1_between_precision_and_recall(
            data in proptest::collection::vec((0.0..1.0f64, any::<bool>()), 1..200),
        ) {
            let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
            let gold: Vec<bool> = data.iter().map(|&(_, y)| y).collect();
            let m = BinaryMetrics::at_threshold(&scores, &gold, 0.5);
            let (p, r, f1) = (m.precision(), m.recall(), m.f1());
            if p > 0.0 && r > 0.0 {
                prop_assert!(f1 <= p.max(r) + 1e-12);
                prop_assert!(f1 >= p.min(r) - 1e-12);
            }
        }
    }
}
